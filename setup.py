"""Legacy shim so `pip install -e .` works offline (no `wheel` package:
PEP 660 editable builds need it; `setup.py develop` does not)."""

from setuptools import setup

setup()
