#!/usr/bin/env python3
"""Warehouse sweep: the paper's Table V deployment, end to end.

Places 100 readers (3 m range) and a few thousand SGTIN-96 tags on a
100 m × 100 m floor, colors the reader interference graph so no two
interfering readers interrogate at once (the paper's "no reader-reader
collision" assumption, made constructive), and sweeps the floor with both
detection schemes, comparing the makespan.

Also demonstrates what reproducing Table V literally reveals: a 10 × 10
grid of 3 m readers covers only ~28 % of the floor, so the sweep reports
coverage explicitly.

Run:  python examples/warehouse_inventory.py [n_tags] [reader_range_m]
"""

from __future__ import annotations

import sys

from repro import CRCCDDetector, FramedSlottedAloha, QCDDetector, Reader
from repro.core.timing import TimingModel
from repro.bits.rng import make_rng
from repro.sim.deployment import Deployment
from repro.sim.multireader import run_multireader_inventory
from repro.sim.scheduling import color_schedule, interference_graph
from repro.experiments.report import render_table


def sweep(n_tags: int, reader_range: float, detector_factory, seed: int = 7):
    deployment = Deployment.table5(
        n_tags, make_rng(seed), reader_range=reader_range
    )
    timing = TimingModel(id_bits=96)  # SGTIN-96 EPCs on the air
    result = run_multireader_inventory(
        deployment,
        reader_factory=lambda rid: Reader(detector_factory(), timing),
        protocol_factory=lambda rid: FramedSlottedAloha(16),
    )
    return deployment, result


def main() -> int:
    n_tags = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    reader_range = float(sys.argv[2]) if len(sys.argv) > 2 else 3.0

    dep, qcd = sweep(n_tags, reader_range, lambda: QCDDetector(8))
    graph = interference_graph(dep)
    rounds = color_schedule(dep)
    print(
        f"Deployment: {len(dep.readers)} readers (range {reader_range} m), "
        f"{n_tags} tags on 100 m x 100 m"
    )
    print(
        f"Interference graph: {graph.number_of_edges()} edges -> "
        f"{len(rounds)} activation round(s)"
    )
    print(f"Coverage: {dep.coverage_fraction():.1%} of tags in range\n")

    _, crc = sweep(n_tags, reader_range, lambda: CRCCDDetector(id_bits=96))

    rows = [
        {
            "scheme": name,
            "identified": f"{res.identified}/{res.covered} covered",
            "slots": str(res.total_slots),
            "makespan (µs)": f"{res.makespan:,.0f}",
        }
        for name, res in (("QCD-8", qcd), ("CRC-CD", crc))
    ]
    print(render_table(rows, title="Multi-reader sweep"))
    speedup = crc.makespan / qcd.makespan
    print(f"\nQCD sweeps the floor {speedup:.2f}x faster.")

    if dep.overlap_pairs():
        # Show what the schedule is for: fire all readers at once and
        # watch the overlap tags get jammed (reader-reader collisions).
        dep2, _ = sweep(n_tags, reader_range, lambda: QCDDetector(8))
        for tag in dep2.population:
            tag.reset_protocol_state()
        unsched = run_multireader_inventory(
            dep2,
            reader_factory=lambda rid: Reader(
                QCDDetector(8), TimingModel(id_bits=96)
            ),
            protocol_factory=lambda rid: FramedSlottedAloha(16),
            scheduled=False,
        )
        print(
            f"Without the activation schedule: {unsched.jammed} of "
            f"{unsched.covered} covered tags are jammed by reader-reader "
            f"collisions and never read."
        )
    if dep.coverage_fraction() < 0.99:
        print(
            "Note: with the paper's literal Table V geometry the reader "
            "disks cover only part of the floor; pass a larger range "
            "(e.g. 8) for full coverage -- the schedule then needs "
            "multiple rounds."
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
