#!/usr/bin/env python3
"""Manifest verification: which tags are missing? (no IDs transferred)

A pallet leaves the warehouse with a known manifest.  At the dock door
the reader must answer one question -- is anything missing? -- and it
should not need to re-read 2000 IDs to do it.  Hash-scheduled presence
slots classify every expected tag as present/missing from pure
energy/no-energy observations; QCD framing makes each presence reply a
16-bit preamble instead of a 96-bit ID+CRC.

Run:  python examples/manifest_verification.py [manifest_size] [n_missing]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import CRCCDDetector, QCDDetector, TimingModel
from repro.apps.missing_tags import detect_missing_tags, expected_rounds
from repro.experiments.report import render_table
from repro.sim.fast import fsa_fast


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 25

    rng = np.random.default_rng(13)
    manifest = list(range(n))
    missing = set(rng.choice(n, size=k, replace=False).tolist())
    present = [i for i in manifest if i not in missing]

    print(f"Manifest of {n} tags, {k} secretly removed; predicted "
          f"~{expected_rounds(n):.0f} verification rounds\n")

    rows = []
    results = {}
    for name, det in (
        ("QCD-8", QCDDetector(8)),
        ("CRC-CD", CRCCDDetector(id_bits=64)),
    ):
        result = detect_missing_tags(
            manifest, present, det, TimingModel(), np.random.default_rng(17)
        )
        assert result.missing_ids == frozenset(missing), "verification failed"
        results[name] = result
        rows.append(
            {
                "framing": name,
                "rounds": str(result.rounds),
                "slots": f"{result.slots:,}",
                "airtime (µs)": f"{result.airtime:,.0f}",
                "found": f"{result.missing_count}/{k} missing",
            }
        )
    print(render_table(rows, title="Verification sweep"))

    inventory = fsa_fast(
        n, (n * 3) // 5, QCDDetector(8), TimingModel(), np.random.default_rng(19)
    )
    ver = results["QCD-8"]
    print(
        f"\nFor comparison, *reading* the same pallet with QCD-8 costs "
        f"{inventory.total_time:,.0f} µs -- verification is "
        f"{inventory.total_time / ver.airtime:.1f}x cheaper, and every one "
        f"of the {k} missing tags was pinpointed by ID."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
