#!/usr/bin/env python3
"""Quickstart: inventory one tag population with QCD vs CRC-CD.

Builds a 200-tag population, runs a framed-slotted-ALOHA inventory under
both collision-detection schemes, and prints the paper's core comparison:
slot mix, airtime, throughput, utilization, and the efficiency improvement.

Run:  python examples/quickstart.py [n_tags] [frame_size]
"""

from __future__ import annotations

import sys

from repro import (
    CRCCDDetector,
    FramedSlottedAloha,
    QCDDetector,
    Reader,
    TagPopulation,
    TimingModel,
    make_rng,
)
from repro.analysis.ei import measured_ei
from repro.experiments.report import render_table


def run_inventory(detector, n_tags: int, frame_size: int, seed: int = 42):
    pop = TagPopulation(n_tags, id_bits=64, rng=make_rng(seed))
    reader = Reader(detector, TimingModel(tau=1.0, id_bits=64, crc_bits=32))
    result = reader.run_inventory(pop.tags, FramedSlottedAloha(frame_size))
    assert result.complete, "every tag must be identified"
    return result.stats


def main() -> int:
    n_tags = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    frame_size = int(sys.argv[2]) if len(sys.argv) > 2 else max(1, (n_tags * 3) // 5)

    print(f"Inventorying {n_tags} tags, frame size {frame_size} "
          f"(the paper's ℱ ≈ 0.6·n operating point)\n")

    crc = run_inventory(CRCCDDetector(id_bits=64), n_tags, frame_size)
    qcd = run_inventory(QCDDetector(strength=8), n_tags, frame_size)

    rows = []
    for name, stats in (("CRC-CD", crc), ("QCD-8", qcd)):
        counts = stats.true_counts
        rows.append(
            {
                "scheme": name,
                "slots": str(counts.total),
                "idle/single/collided": f"{counts.idle}/{counts.single}/{counts.collided}",
                "throughput": f"{stats.throughput:.3f}",
                "airtime (µs)": f"{stats.total_time:,.0f}",
                "utilization": f"{stats.utilization:.1%}",
                "avg delay (µs)": f"{stats.delay.mean:,.0f}",
            }
        )
    print(render_table(rows, title="FSA inventory, CRC-CD vs QCD"))

    ei = measured_ei(crc.total_time, qcd.total_time)
    print(f"\nEfficiency improvement of QCD over CRC-CD: {ei:.1%}")
    print("(paper Table II lower bound at 8-bit strength: 58.64%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
