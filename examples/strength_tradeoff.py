#!/usr/bin/env python3
"""The strength trade-off: picking l (paper Sections IV-B, VI-B, VI-C).

A small l makes preambles cheap but lets same-draw collisions slip
through; a large l is near-exact but wastes airtime.  This example sweeps
l, reporting detection accuracy, utilization rate, total airtime, and
what misses actually *cost* under the three misdetection policies --
backing the paper's "adopt l = 8" recommendation with numbers.

Run:  python examples/strength_tradeoff.py [n_tags]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import FramedSlottedAloha, QCDDetector, Reader, TagPopulation
from repro.analysis.accuracy import expected_accuracy_fsa, required_strength
from repro.bits.rng import make_rng
from repro.core.timing import TimingModel
from repro.experiments.report import render_table
from repro.sim.fast import fsa_fast


def sweep_strengths(n_tags: int, frame: int, rounds: int = 20):
    rows = []
    for strength in (1, 2, 4, 8, 12, 16):
        det = QCDDetector(strength)
        timing = TimingModel()
        stats = [
            fsa_fast(n_tags, frame, det, timing, np.random.default_rng(s))
            for s in range(rounds)
        ]
        acc = sum(s.accuracy for s in stats) / rounds
        ur = sum(s.utilization for s in stats) / rounds
        t = sum(s.total_time for s in stats) / rounds
        rows.append(
            {
                "strength": f"{strength}-bit",
                "accuracy (sim)": f"{acc:.4f}",
                "accuracy (model)": f"{expected_accuracy_fsa(n_tags, frame, strength):.4f}",
                "UR": f"{ur:.1%}",
                "airtime (µs)": f"{t:,.0f}",
            }
        )
    return rows


def lost_tags_at_low_strength(n_tags: int, frame: int) -> dict[int, int]:
    """Under the 'lost' policy, how many tags vanish per strength?"""
    out = {}
    for strength in (1, 2, 4, 8):
        lost = 0
        for seed in range(5):
            pop = TagPopulation(n_tags, id_bits=64, rng=make_rng(seed))
            reader = Reader(QCDDetector(strength), TimingModel(), policy="lost")
            res = reader.run_inventory(pop.tags, FramedSlottedAloha(frame))
            lost += len(res.lost_ids)
        out[strength] = lost
    return out


def main() -> int:
    n_tags = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    frame = max(1, (n_tags * 3) // 5)

    print(f"QCD strength sweep: {n_tags} tags, frame {frame}\n")
    print(render_table(sweep_strengths(n_tags, frame), title="Accuracy vs overhead"))

    print("\nTags silently lost if the reader trusts a missed collision "
          "('lost' policy, 5 seeds pooled):")
    lost = lost_tags_at_low_strength(min(n_tags, 200), min(frame, 120))
    print(render_table(
        [{"strength": f"{k}-bit", "lost tags": str(v)} for k, v in lost.items()]
    ))

    l99 = required_strength(0.99, n_tags, frame)
    l9999 = required_strength(0.9999, n_tags, frame)
    print(f"\nSmallest strength for 99% expected accuracy:    l = {l99}")
    print(f"Smallest strength for 99.99% expected accuracy: l = {l9999}")
    print("The paper recommends l = 8: ~100% accuracy while keeping the "
          "preamble at 16 bits (1/6 of a CRC-CD slot).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
