#!/usr/bin/env python3
"""QCD beyond RFID: neighbor discovery in a sensor clique (paper §VII).

The paper's future work: "this design can be easily extended to other
wireless fields, for example the neighbor discovery ... of sensor
networks".  Here n battery-powered nodes run the slotted birthday
protocol (transmit with p = 1/n, listen otherwise).  Latency is fixed by
the contention process -- but a listener framed with a QCD preamble
classifies each slot after 2l bits and sleeps through garbage, while a
CRC-framed listener demodulates the full 96-bit announcement window every
slot.  Radio-on time is the sensor's energy budget.

Run:  python examples/neighbor_discovery.py [n_nodes]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import CRCCDDetector, QCDDetector, TimingModel
from repro.experiments.report import render_table
from repro.wireless.neighbor import (
    expected_discovery_slots,
    optimal_tx_probability,
    run_discovery,
)


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    p = optimal_tx_probability(n)
    print(
        f"{n} nodes, slotted birthday protocol, p = 1/{n}; "
        f"coupon-collector prediction: "
        f"{expected_discovery_slots(n):,.0f} slots to full discovery\n"
    )

    rows = []
    for name, det in (
        ("CRC-CD framing", CRCCDDetector(id_bits=64)),
        ("QCD-8 framing", QCDDetector(8)),
        ("QCD-4 framing", QCDDetector(4)),
    ):
        slots, energy, garbage = [], [], []
        for seed in range(5):
            res = run_discovery(
                n, det, TimingModel(), np.random.default_rng(seed)
            )
            assert res.complete
            slots.append(res.slots)
            energy.append(res.listen_time_per_node)
            garbage.append(res.garbage_receptions)
        rows.append(
            {
                "framing": name,
                "slots (avg)": f"{sum(slots)/5:,.0f}",
                "listen µs/node": f"{sum(energy)/5:,.0f}",
                "garbage receptions": f"{sum(garbage)/5:.1f}",
            }
        )

    print(render_table(rows, title="Full-discovery cost by framing"))
    print(
        "\nSame latency, ~60% less listener energy with the 16-bit QCD "
        "preamble; at 4-bit strength misses start costing garbage "
        "receptions -- the same accuracy/overhead knee as in the RFID "
        "setting."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
