#!/usr/bin/env python3
"""Mobile tags: why fast identification matters (paper Section VI-D).

Tags arrive at a dock door as a Poisson stream and dwell only briefly in
the reader's field.  A tag that is not identified before it leaves is
*lost* -- the concrete failure mode the identification-delay metric is a
proxy for.  This example runs the same arrival process under CRC-CD and
QCD and reports escape rates and sojourn delays.

Run:  python examples/mobile_tags.py [n_tags] [dwell_mean_us]
"""

from __future__ import annotations

import sys

from repro import CRCCDDetector, QCDDetector, Reader, TagPopulation
from repro.bits.rng import make_rng
from repro.core.timing import TimingModel
from repro.protocols.bt import BinaryTree
from repro.sim.engine import MobileInventoryEngine
from repro.tags.mobility import poisson_arrivals
from repro.experiments.report import render_table


def run(detector, n_tags: int, dwell_mean: float, seed: int):
    pop = TagPopulation(n_tags, id_bits=64, rng=make_rng(seed))
    schedule = poisson_arrivals(
        pop.tags,
        rate=1 / 40.0,  # one tag every 40 µs on average
        dwell_mean=dwell_mean,
        rng=make_rng(seed + 1),
    )
    engine = MobileInventoryEngine(Reader(detector, TimingModel()))
    return engine.run(BinaryTree(), schedule)


def main() -> int:
    n_tags = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    dwell = float(sys.argv[2]) if len(sys.argv) > 2 else 2500.0

    print(
        f"{n_tags} tags arriving Poisson (1 per 40 µs), mean dwell "
        f"{dwell:.0f} µs, binary-tree inventory\n"
    )

    rows = []
    results = {}
    for name, det in (("CRC-CD", CRCCDDetector(id_bits=64)), ("QCD-8", QCDDetector(8))):
        agg_id = agg_esc = 0
        delays = []
        for seed in (11, 22, 33):
            res = run(det, n_tags, dwell, seed)
            agg_id += len(res.identified_ids)
            agg_esc += len(res.escaped_ids)
            if res.sojourn_delays.count:
                delays.append(res.sojourn_delays.mean)
        results[name] = (agg_id, agg_esc)
        rows.append(
            {
                "scheme": name,
                "identified": str(agg_id),
                "escaped": str(agg_esc),
                "escape rate": f"{agg_esc / (agg_id + agg_esc):.1%}",
                "avg sojourn->read (µs)": f"{sum(delays)/len(delays):,.0f}",
            }
        )

    print(render_table(rows, title="Mobile-tag inventory (3 seeds pooled)"))
    crc_esc = results["CRC-CD"][1]
    qcd_esc = results["QCD-8"][1]
    print(
        f"\nQCD loses {qcd_esc} tags where CRC-CD loses {crc_esc}: the "
        "shorter idle/collided slots convert directly into tags read "
        "before they walk away."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
