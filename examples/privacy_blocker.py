#!/usr/bin/env python3
"""Privacy on the Boolean-sum channel (paper Section II, refs [5][6][20]).

Three demonstrations built on the same signal model as QCD:

1. a *malicious tag* that answers every Query-Tree probe, starving the
   reader and forging ghost reads;
2. a *blocker tag* shielding a privacy zone (company prefix) while the
   rest of the ID space stays readable;
3. *backward-channel protection*: pseudo-ID mixing and randomized bit
   encoding, scored with the entropy leakage metric.

Run:  python examples/privacy_blocker.py
"""

from __future__ import annotations

import sys

from repro import QCDDetector, Reader, TagPopulation
from repro.bits.bitvec import BitVector
from repro.bits.rng import make_rng
from repro.protocols.qt import QueryTree
from repro.security.backward import PseudoIdMixer, RandomizedBitEncoder
from repro.security.blocker import BlockerTag, MaliciousTag
from repro.security.entropy import bit_leakage, eavesdropper_entropy
from repro.experiments.report import render_table


def demo_malicious() -> None:
    pop = TagPopulation(20, id_bits=12, rng=make_rng(1))
    jammer = MaliciousTag(tag_id=0, id_bits=12, rng=make_rng(2))
    proto = QueryTree(max_slots=20000)
    result = Reader(QCDDetector(8)).run_inventory(
        list(pop.tags) + [jammer], proto
    )
    genuine = sum(1 for t in pop if t.identified)
    print("1. Malicious tag vs Query Tree")
    print(f"   probes spent: {len(result.trace)}, genuine tags identified: "
          f"{genuine}/20, ghost reads: {len(result.identified_ids)}")
    print("   -> the reader is both starved and deceived.\n")


def demo_blocker() -> None:
    pop = TagPopulation(40, id_bits=12, rng=make_rng(3))
    zone = BitVector.from_bitstring("1")
    blocker = BlockerTag(
        tag_id=0, id_bits=12, rng=make_rng(4), privacy_prefix=zone
    )
    Reader(QCDDetector(8)).run_inventory(
        list(pop.tags) + [blocker], QueryTree(max_slots=20000)
    )
    inside = [t for t in pop if t.id_vector.bit(0) == 1]
    outside = [t for t in pop if t.id_vector.bit(0) == 0]
    print("2. Blocker tag shielding the '1...' zone")
    print(f"   zone tags identified:     {sum(t.identified for t in inside)}"
          f"/{len(inside)}  (protected)")
    print(f"   non-zone tags identified: {sum(t.identified for t in outside)}"
          f"/{len(outside)}  (unaffected)\n")


def demo_backward() -> None:
    rng = make_rng(5)
    tag_id = BitVector.random(32, rng.generator)

    mixer = PseudoIdMixer(rng.child())
    pseudo = mixer.draw_pseudo(32)
    mixed = mixer.mix(tag_id, pseudo)
    reader_known = mixer.recover_known(mixed, pseudo)
    eaves_known = mixer.eavesdrop(mixed)
    recovered, rounds = mixer.recover_id(tag_id)
    assert recovered == tag_id

    encoder = RandomizedBitEncoder(expansion=4, rng=rng.child())
    encoded_a = encoder.encode(tag_id)
    encoded_b = encoder.encode(tag_id)
    assert encoder.decode(encoded_a) == encoder.decode(encoded_b) == tag_id

    rows = [
        {
            "party": "reader (knows pseudo-ID)",
            "bits resolved": f"{bit_leakage(32, reader_known):.0%} after 1 mix"
                             f" (full ID after {rounds} mixes)",
            "residual entropy": f"{eavesdropper_entropy(tag_id, reader_known):.1f} bits",
        },
        {
            "party": "eavesdropper",
            "bits resolved": f"{bit_leakage(32, eaves_known):.0%}",
            "residual entropy": f"{eavesdropper_entropy(tag_id, eaves_known, p_mask_one=0.5):.1f} bits",
        },
    ]
    print("3. Backward-channel protection (32-bit ID)")
    print(render_table(rows, title="   Pseudo-ID mixing: who learns what"))
    print(f"   Randomized bit encoding: two replies for the same tag differ "
          f"({encoded_a.to_int() != encoded_b.to_int()}), both decode "
          f"correctly -- replies are unlinkable.\n")


def main() -> int:
    demo_malicious()
    demo_blocker()
    demo_backward()
    return 0


if __name__ == "__main__":
    sys.exit(main())
