#!/usr/bin/env python3
"""Continuous monitoring of a churning shelf (asset-management scenario).

A retail shelf holds ~100 tagged items; every monitoring round a few items
are taken and restocked.  Memoryless protocols (BT) pay ~2.9 slots per tag
every round; adaptive protocols (ABS/AQS) replay last round's schedule and
pay ~1 slot per tag plus a little splitting where the shelf changed.  QCD
composes on top, making whatever overhead slots remain 6x cheaper.

Run:  python examples/continuous_monitoring.py [n_items] [churn_per_round]
"""

from __future__ import annotations

import sys

from repro import (
    AdaptiveBinarySplitting,
    AdaptiveQuerySplitting,
    BinaryTree,
    CRCCDDetector,
    QCDDetector,
    QueryTree,
    Reader,
    TagPopulation,
)
from repro.bits.rng import make_rng
from repro.sim.monitoring import ContinuousMonitor
from repro.experiments.report import render_table

ROUNDS = 8


def run(protocol_factory, detector, n, churn, seed=77):
    monitor = ContinuousMonitor(
        Reader(detector), protocol_factory(), rng=make_rng(seed)
    )
    pop = TagPopulation(n, id_bits=64, rng=make_rng(seed + 1))
    return monitor.run(pop, rounds=ROUNDS, churn=churn)


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    churn = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    print(
        f"{n} items, {ROUNDS} monitoring rounds, {churn} items exchanged "
        f"between rounds\n"
    )

    rows = []
    for name, factory in (
        ("Binary Tree", BinaryTree),
        ("ABS (adaptive)", AdaptiveBinarySplitting),
        ("Query Tree", QueryTree),
        ("AQS (adaptive)", AdaptiveQuerySplitting),
    ):
        result = run(factory, QCDDetector(8), n, churn)
        steady = result.steady_state()
        rows.append(
            {
                "protocol": name,
                "round-1 slots": str(result.rounds[0].slots),
                "steady slots/round": f"{sum(r.slots for r in steady)/len(steady):.0f}",
                "steady collisions/round": f"{sum(r.collided for r in steady)/len(steady):.0f}",
                "steady µs/round": f"{sum(r.time for r in steady)/len(steady):,.0f}",
            }
        )
    print(render_table(rows, title="Monitoring cost by protocol (QCD-8)"))

    abs_qcd = run(AdaptiveBinarySplitting, QCDDetector(8), n, churn)
    abs_crc = run(AdaptiveBinarySplitting, CRCCDDetector(id_bits=64), n, churn)
    print(
        f"\nABS total airtime over {ROUNDS} rounds: "
        f"{abs_qcd.total_time:,.0f} µs with QCD vs "
        f"{abs_crc.total_time:,.0f} µs with CRC-CD "
        f"({1 - abs_qcd.total_time / abs_crc.total_time:.0%} saved)."
    )
    print(
        "Adaptive scheduling removes the collisions; QCD removes the "
        "airtime of classifying what remains."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
