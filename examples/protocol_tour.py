#!/usr/bin/env python3
"""A tour of the anti-collision protocol zoo under QCD.

Runs all seven protocols over the same population and reports slots,
frames, throughput, and airtime.  Also demonstrates the adaptive rounds
of ABS/AQS: a second, *readable* inventory of the same tags completes
collision-free.

Run:  python examples/protocol_tour.py [n_tags]
"""

from __future__ import annotations

import sys

from repro import (
    AdaptiveBinarySplitting,
    AdaptiveQuerySplitting,
    BinaryTree,
    DynamicFSA,
    FramedSlottedAloha,
    QAdaptive,
    QCDDetector,
    QueryTree,
    Reader,
    TagPopulation,
    TimingModel,
)
from repro.bits.rng import make_rng
from repro.experiments.report import render_table


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    protocols = {
        "FSA (fixed frame)": lambda: FramedSlottedAloha(max(1, (n * 3) // 5)),
        "DFSA (Schoute)": lambda: DynamicFSA(32),
        "Q-Adaptive (Gen2)": lambda: QAdaptive(initial_q=4.0),
        "Binary Tree": BinaryTree,
        "Query Tree": QueryTree,
        "ABS": AdaptiveBinarySplitting,
        "AQS": AdaptiveQuerySplitting,
    }

    rows = []
    for name, factory in protocols.items():
        pop = TagPopulation(n, id_bits=64, rng=make_rng(99))
        reader = Reader(QCDDetector(8), TimingModel())
        result = reader.run_inventory(pop.tags, factory())
        assert result.complete
        stats = result.stats
        rows.append(
            {
                "protocol": name,
                "slots": str(stats.true_counts.total),
                "frames": str(stats.frames),
                "throughput": f"{stats.throughput:.3f}",
                "airtime (µs)": f"{stats.total_time:,.0f}",
            }
        )
    print(render_table(rows, title=f"All protocols, {n} tags, QCD-8"))

    # Adaptive protocols remember their schedule: re-inventory is free of
    # collisions (the 'readable round' of Myung & Lee).
    print("\nReadable rounds (same tags, second inventory):")
    for name, factory in (("ABS", AdaptiveBinarySplitting), ("AQS", AdaptiveQuerySplitting)):
        pop = TagPopulation(n, id_bits=64, rng=make_rng(99))
        reader = Reader(QCDDetector(8), TimingModel())
        proto = factory()
        first = reader.run_inventory(pop.tags, proto)
        for tag in pop:
            tag.identified = False
            tag.identified_at = None
        second = reader.run_inventory_continue(pop.tags, proto)
        print(
            f"  {name}: round 1 = {len(first.trace)} slots "
            f"({first.stats.true_counts.collided} collisions), "
            f"round 2 = {len(second.trace)} slots "
            f"({second.stats.true_counts.collided} collisions)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
