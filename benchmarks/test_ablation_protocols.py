"""Ablation -- QCD across the whole protocol zoo.

The paper claims QCD 'can be seamlessly adopted by current anti-collision
algorithms'.  This bench runs every protocol in the library under both
detectors and reports slots, time, and EI -- FSA/DFSA/Q-adaptive/BT/QT/
ABS/AQS all benefit, with tree protocols gaining most (more overhead
slots per tag).
"""

from __future__ import annotations

import pytest

from bench_util import show
from repro.analysis.ei import measured_ei
from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.abs_protocol import AdaptiveBinarySplitting
from repro.protocols.aqs import AdaptiveQuerySplitting
from repro.protocols.bt import BinaryTree
from repro.protocols.dfsa import DynamicFSA
from repro.protocols.fsa import FramedSlottedAloha
from repro.protocols.qadaptive import QAdaptive
from repro.protocols.qt import QueryTree
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation

N = 200
PROTOCOLS = {
    "FSA": lambda: FramedSlottedAloha(120),
    "DFSA": lambda: DynamicFSA(32),
    "Q-Adaptive": lambda: QAdaptive(initial_q=5.0),
    "BT": BinaryTree,
    "QT": QueryTree,
    "ABS": AdaptiveBinarySplitting,
    "AQS": AdaptiveQuerySplitting,
}


def run_protocol(name, detector, seed=5, rounds=4):
    times = []
    slots = []
    for r in range(rounds):
        pop = TagPopulation(N, id_bits=64, rng=make_rng(seed + r))
        reader = Reader(detector, TimingModel())
        result = reader.run_inventory(pop.tags, PROTOCOLS[name]())
        assert result.stats.true_counts.single == N
        times.append(result.stats.total_time)
        slots.append(len(result.trace))
    return sum(times) / rounds, sum(slots) / rounds


@pytest.mark.benchmark(group="protocol-zoo")
def test_qcd_benefits_every_protocol(benchmark):
    def sweep():
        rows = []
        for name in PROTOCOLS:
            t_crc, s_crc = run_protocol(name, CRCCDDetector(id_bits=64))
            t_qcd, s_qcd = run_protocol(name, QCDDetector(8))
            rows.append(
                {
                    "protocol": name,
                    "slots": f"{s_qcd:.0f}",
                    "CRC-CD (µs)": f"{t_crc:,.0f}",
                    "QCD (µs)": f"{t_qcd:,.0f}",
                    "EI": f"{measured_ei(t_crc, t_qcd):.3f}",
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(f"Protocol zoo under QCD-8 vs CRC-CD (n={N})", rows)
    for row in rows:
        assert float(row["EI"]) > 0.40, row["protocol"]


@pytest.mark.benchmark(group="protocol-zoo")
def test_tree_protocols_gain_more_than_fsa_family(benchmark):
    def compute():
        eis = {}
        for name in ("FSA", "BT"):
            t_crc, _ = run_protocol(name, CRCCDDetector(id_bits=64), seed=50)
            t_qcd, _ = run_protocol(name, QCDDetector(8), seed=50)
            eis[name] = measured_ei(t_crc, t_qcd)
        return eis

    eis = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Table III > Table II at every strength; the simulation agrees
    # directionally for the well-sized-FSA operating point.
    assert eis["BT"] > 0.55
    assert eis["FSA"] > 0.55
