"""Ablation -- the full space of detection approaches.

The paper frames two ways to detect collisions (Section I): special
hardware sensing (dismissed as costly) and CRC checking (the baseline it
attacks).  Real Gen2 adds a third: a blind RN16 contention word whose
collisions only surface at the failed EPC CRC.  With all four corners
implemented, the comparison the paper argues verbally can be measured:

* **RN16 (Gen2)** -- 16 blind bits; every collision rides through the
  full ACK'd ID phase before failing its CRC;
* **CRC-CD** -- software check, 96-bit slots everywhere;
* **FM0 violation** -- PHY sensing, near-exact, preamble-free, but every
  slot (idle/collided included) spans the 64-bit ID window;
* **QCD** -- 16 *checked* bits: overhead slots end at the preamble.

QCD wins on overhead-heavy mixes (any anti-collision protocol, per
Lemmas 1-2); FM0 sensing wins on single slots; their crossover is a
function of the slot mix.
"""

from __future__ import annotations

import statistics

import pytest

from bench_util import show
from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.phy import FM0ViolationDetector
from repro.core.qcd import QCDDetector
from repro.core.rn16 import RN16Detector
from repro.core.timing import TimingModel
from repro.protocols.bt import BinaryTree
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation

N = 150

#: name -> (detector factory, reader policy).  RN16 needs the guard CRC
#: (that is how real Gen2 discovers collisions); others use the paper's
#: accounting.
DETECTORS = {
    "RN16 (Gen2)": (lambda: RN16Detector(), "crc_guard"),
    "CRC-CD": (lambda: CRCCDDetector(id_bits=64), "paper"),
    "FM0-violation": (lambda: FM0ViolationDetector(id_bits=64), "paper"),
    "QCD-8": (lambda: QCDDetector(8), "paper"),
}


def run(detector_factory, policy, protocol_factory, seeds=(3, 7, 11)):
    times = []
    for seed in seeds:
        pop = TagPopulation(N, id_bits=64, rng=make_rng(seed))
        timing = TimingModel(guard_id_phase=(policy == "crc_guard"))
        result = Reader(
            detector_factory(), timing, policy=policy
        ).run_inventory(pop.tags, protocol_factory())
        assert result.stats.true_counts.single == N
        times.append(result.stats.total_time)
    return statistics.mean(times)


@pytest.mark.benchmark(group="detection-triangle")
def test_detection_approaches(benchmark):
    def compute():
        out = {}
        for proto_name, proto in (
            ("FSA", lambda: FramedSlottedAloha(90)),
            ("BT", BinaryTree),
        ):
            for det_name, (det, policy) in DETECTORS.items():
                out[(proto_name, det_name)] = run(det, policy, proto)
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for proto in ("FSA", "BT"):
        row = {"protocol": proto}
        for det in DETECTORS:
            row[f"{det} (µs)"] = f"{results[(proto, det)]:,.0f}"
        rows.append(row)
    show(f"Detection approaches, n={N}", rows)
    for proto in ("FSA", "BT"):
        rn16 = results[(proto, "RN16 (Gen2)")]
        crc = results[(proto, "CRC-CD")]
        fm0 = results[(proto, "FM0-violation")]
        qcd = results[(proto, "QCD-8")]
        # PHY sensing beats CRC (no CRC bits, ever)...
        assert fm0 < crc
        # ...but the anti-collision slot mix is overhead-dominated, so
        # QCD's short preambles beat even free PHY sensing...
        assert qcd < fm0
        # ...and blind RN16 contention pays the full ID phase per
        # collision -- the very cost QCD's 16 bits of structure remove.
        assert qcd < rn16


@pytest.mark.benchmark(group="detection-triangle")
def test_crossover_on_single_heavy_mix(benchmark):
    """Where FM0 sensing wins: a schedule with almost no overhead slots
    (ABS readable rounds are pure singles) favors the preamble-free
    scheme."""
    from repro.core.detector import SlotType

    def compute():
        timing = TimingModel()
        fm0 = FM0ViolationDetector(id_bits=64)
        qcd = QCDDetector(8)
        # Per-slot cost on a pure-single schedule:
        return (
            timing.slot_duration(fm0, SlotType.SINGLE),
            timing.slot_duration(qcd, SlotType.SINGLE),
        )

    fm0_single, qcd_single = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(
        "Single-slot cost (pure-single schedules, e.g. ABS steady state)",
        [
            {"scheme": "FM0-violation", "single slot (µs)": f"{fm0_single:.0f}"},
            {"scheme": "QCD-8", "single slot (µs)": f"{qcd_single:.0f}"},
        ],
    )
    assert fm0_single < qcd_single  # 64 < 80: the crossover exists
