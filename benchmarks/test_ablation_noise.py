"""Ablation -- robustness to channel bit errors (beyond the paper).

Sweeps the bit-error rate and compares the schemes' noise-induced retry
overhead.  The mechanism: any flip in a clean single's payload makes the
check fail (a *false collision*, costing a retry), and the per-slot flip
probability is ``1 − (1 − ber)^bits`` -- so CRC-CD's 96 exposed bits eat
~6x more corruption than QCD's 16-bit preamble.  QCD additionally has an
O(ber²) blind spot (symmetric flips in r and c), negligible at realistic
rates.
"""

from __future__ import annotations

import pytest

from bench_util import show
from repro.bits.channel import Channel
from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation

N, F = 200, 120
BERS = (0.0, 1e-3, 5e-3, 2e-2)


def run(detector_factory, ber, seeds=(61, 67, 71)):
    slots = times = falses = 0
    for seed in seeds:
        pop = TagPopulation(N, id_bits=64, rng=make_rng(seed))
        channel = (
            Channel(bit_error_rate=ber, rng=make_rng(seed + 1))
            if ber
            else Channel()
        )
        result = Reader(detector_factory(), channel=channel).run_inventory(
            pop.tags, FramedSlottedAloha(F)
        )
        slots += result.stats.true_counts.total
        times += result.stats.total_time
        falses += result.stats.false_collisions
    k = len(seeds)
    return slots / k, times / k, falses / k


@pytest.mark.benchmark(group="noise")
def test_ber_sweep(benchmark):
    def compute():
        rows = []
        for ber in BERS:
            q_slots, q_time, q_false = run(lambda: QCDDetector(8), ber)
            c_slots, c_time, c_false = run(
                lambda: CRCCDDetector(id_bits=64), ber
            )
            rows.append(
                {
                    "BER": f"{ber:g}",
                    "QCD false-coll": f"{q_false:.1f}",
                    "CRC false-coll": f"{c_false:.1f}",
                    "QCD time (µs)": f"{q_time:,.0f}",
                    "CRC time (µs)": f"{c_time:,.0f}",
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    show("Noise robustness sweep (FSA, 200 tags)", rows)
    # At every noisy operating point CRC-CD suffers more false collisions.
    for row in rows[1:]:
        assert float(row["CRC false-coll"]) >= float(row["QCD false-coll"])
    # And QCD stays faster throughout.
    for row in rows:
        assert float(row["QCD time (µs)"].replace(",", "")) < float(
            row["CRC time (µs)"].replace(",", "")
        )


@pytest.mark.benchmark(group="noise")
def test_exposure_model(benchmark):
    """The measured false-collision ratio tracks the exposed-bits model
    ``(1 − (1−ber)^96) / (1 − (1−ber)^16) ≈ 6`` at small ber."""

    def compute():
        ber = 5e-3
        _, _, q_false = run(lambda: QCDDetector(8), ber, seeds=range(80, 92))
        _, _, c_false = run(
            lambda: CRCCDDetector(id_bits=64), ber, seeds=range(80, 92)
        )
        return q_false, c_false, ber

    q_false, c_false, ber = benchmark.pedantic(compute, rounds=1, iterations=1)
    predicted = (1 - (1 - ber) ** 96) / (1 - (1 - ber) ** 16)
    measured = c_false / max(q_false, 1e-9)
    show(
        "False-collision ratio vs exposure model",
        [
            {
                "quantity": "CRC/QCD false-collision ratio",
                "measured": f"{measured:.2f}",
                "model": f"{predicted:.2f}",
            }
        ],
    )
    assert measured == pytest.approx(predicted, rel=0.5)
