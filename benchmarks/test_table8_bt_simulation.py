"""Table VIII -- BT slot distribution and throughput, cases I-IV.

Paper (100-round averages; the "# of frame" column is the slot total):

  case   slots    idle   single  collided  throughput
  50       137      19      50       68       0.36
  500     1426     214     500      712       0.35
  5000   14374    2187    5000     7187       0.34
  50000 143998   21999   50000    71999       0.34
"""

from __future__ import annotations

import pytest

from bench_util import show
from repro.experiments.config import CASES, PAPER_TABLE8
from repro.experiments.tables import table8


@pytest.fixture(scope="module")
def rows(suite):
    return table8(suite)


def test_table8_regenerate(benchmark, suite, rows):
    benchmark.pedantic(
        lambda: suite.run("II", "bt", "qcd-8"), rounds=1, iterations=1
    )
    show("Table VIII: BT simulation (ours vs paper)", rows)
    assert len(rows) == 4


@pytest.mark.parametrize("case", list(CASES))
def test_table8_counts_match_paper(benchmark, suite, case):
    agg = benchmark.pedantic(
        lambda: suite.run(case, "bt", "qcd-8"), rounds=1, iterations=1
    )
    paper = PAPER_TABLE8[case]
    assert agg.single == paper["single"]
    assert agg.total_slots == pytest.approx(paper["frames"], rel=0.05)
    # Idle is the smallest, noisiest count; at n=50 the exact recursion
    # gives 22.1 while the paper printed 19, so allow a wider band.
    assert agg.idle == pytest.approx(paper["idle"], rel=0.25)
    assert agg.collided == pytest.approx(paper["collided"], rel=0.06)
    assert agg.throughput == pytest.approx(paper["throughput"], abs=0.015)


def test_table8_lemma2_constants(benchmark, suite):
    """The big case pins the Lemma 2 asymptotics: 2.885n total, 1.443n
    collided, 0.442n idle."""
    agg = benchmark.pedantic(
        lambda: suite.run("IV", "bt", "qcd-8"), rounds=1, iterations=1
    )
    n = agg.n_tags
    assert agg.total_slots / n == pytest.approx(2.885, abs=0.05)
    assert agg.collided / n == pytest.approx(1.443, abs=0.03)
    assert agg.idle / n == pytest.approx(0.442, abs=0.03)
