"""Extension bench -- sensor-field coverage verification (paper §VII).

Multi-hop counterpart of the neighbor-discovery bench: a random sensor
field verifies its connectivity by local discovery.  QCD framing halves
the listener energy at identical latency; stopping at *connectivity*
(instead of exhaustive link discovery) saves most of the slots.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import show
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.wireless.coverage import SensorField, run_field_discovery


def field(seed=0):
    return SensorField.random(40, 50.0, 50.0, 15.0, np.random.default_rng(seed))


@pytest.mark.benchmark(group="coverage")
def test_field_energy_comparison(benchmark):
    def compute():
        f = field(5)
        out = {}
        for name, det in (
            ("CRC-CD", CRCCDDetector(id_bits=64)),
            ("QCD-8", QCDDetector(8)),
        ):
            res = run_field_discovery(
                f, det, TimingModel(), np.random.default_rng(9)
            )
            out[name] = res
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        {
            "framing": name,
            "slots": str(r.slots),
            "links found": f"{r.discovered_fraction:.0%}",
            "listen time (µs)": f"{r.listen_time:,.0f}",
        }
        for name, r in results.items()
    ]
    show("Sensor-field discovery (40 nodes, 15 m range)", rows)
    assert results["QCD-8"].slots == results["CRC-CD"].slots
    assert (
        results["QCD-8"].listen_time < 0.6 * results["CRC-CD"].listen_time
    )


@pytest.mark.benchmark(group="coverage")
def test_connectivity_stop_saves_slots(benchmark):
    def compute():
        f = field(7)
        full = run_field_discovery(
            f, QCDDetector(8), TimingModel(), np.random.default_rng(11)
        )
        early = run_field_discovery(
            f,
            QCDDetector(8),
            TimingModel(),
            np.random.default_rng(11),
            until="connected",
        )
        return f, full, early

    f, full, early = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(
        "Stop criterion: connectivity vs exhaustive discovery",
        [
            {"criterion": "all links", "slots": str(full.slots)},
            {"criterion": "connected", "slots": str(early.slots)},
        ],
    )
    if f.is_connected():
        assert early.connectivity_verified()
        assert early.slots < full.slots
