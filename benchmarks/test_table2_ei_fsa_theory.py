"""Table II -- theoretical minimum EI of QCD over CRC-CD on FSA.

Paper values: EI >= 0.6698 / 0.5864 / 0.4198 for strengths 4 / 8 / 16.
Our closed form reproduces them digit-for-digit.
"""

from __future__ import annotations

import pytest

from bench_util import show
from repro.analysis.ei import fsa_ei_lower_bound
from repro.experiments.config import PAPER_TABLE2
from repro.experiments.tables import table2


def test_table2_matches_paper(benchmark):
    rows = benchmark(table2)
    show("Table II: minimum EI on FSA (theory)", rows)
    for strength, expected in PAPER_TABLE2.items():
        assert fsa_ei_lower_bound(strength) == pytest.approx(expected, abs=5e-4)


def test_table2_headline_over_40_percent(benchmark):
    ei = benchmark(fsa_ei_lower_bound, 8)
    assert ei > 0.40  # the abstract's claim at the recommended strength
