"""Table IX -- utilization rate of QCD by strength, cases I-IV (FSA).

Paper:

  case    4-bit    8-bit    16-bit
  50      66.78%   50.13%   33.44%
  500     63.80%   46.84%   30.58%
  5000    62.33%   45.27%   29.26%
  50000   61.15%   44.03%   28.24%

UR falls with strength (longer preambles are overhead) and mildly with
scale (bigger cases accumulate relatively more overhead slots).
"""

from __future__ import annotations

import pytest

from bench_util import show
from repro.experiments.config import CASES, PAPER_TABLE9, STRENGTHS
from repro.experiments.tables import table9


def test_table9_regenerate(benchmark, suite):
    rows = benchmark.pedantic(lambda: table9(suite), rounds=1, iterations=1)
    show("Table IX: QCD utilization rate (ours vs paper)", rows)
    assert len(rows) == 4


@pytest.mark.parametrize("case", list(CASES))
def test_table9_values_match_paper(benchmark, suite, case):
    def compute():
        return {
            s: suite.run(case, "fsa", f"qcd-{s}").utilization
            for s in STRENGTHS
        }

    urs = benchmark.pedantic(compute, rounds=1, iterations=1)
    for strength in STRENGTHS:
        assert urs[strength] == pytest.approx(
            PAPER_TABLE9[case][strength], abs=0.05
        )


def test_table9_monotone_in_strength(benchmark, suite):
    urs = benchmark.pedantic(
        lambda: [suite.run("II", "fsa", f"qcd-{s}").utilization for s in STRENGTHS],
        rounds=1,
        iterations=1,
    )
    assert urs[0] > urs[1] > urs[2]


def test_table9_16bit_below_50_percent(benchmark, suite):
    """Section VI-C: 'if we employ 16-bit as the strength, the UR of QCD
    dramatically drops to below 50% in all cases'."""
    urs = benchmark.pedantic(
        lambda: [suite.run(c, "fsa", "qcd-16").utilization for c in CASES],
        rounds=1,
        iterations=1,
    )
    assert all(ur < 0.50 for ur in urs)
