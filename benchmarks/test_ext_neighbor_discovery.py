"""Extension bench -- QCD in wireless neighbor discovery (paper §VII).

The paper's future work names neighbor discovery as a field QCD extends
to.  This bench runs the birthday protocol over a clique and shows the
transfer: identical discovery latency (the contention process does not
change), drastically lower listener radio-on time (the energy that
matters for sensor nodes), with the coupon-collector model predicting the
latency.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import show
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.wireless.neighbor import expected_discovery_slots, run_discovery


def run(n, detector, seed):
    return run_discovery(
        n, detector, TimingModel(), np.random.default_rng(seed)
    )


@pytest.mark.benchmark(group="neighbor-discovery")
def test_energy_and_latency(benchmark):
    n = 40

    def compute():
        out = {}
        for name, det in (
            ("CRC-CD", CRCCDDetector(id_bits=64)),
            ("QCD-8", QCDDetector(8)),
        ):
            slots = []
            energy = []
            for seed in range(5):
                res = run(n, det, seed)
                assert res.complete
                slots.append(res.slots)
                energy.append(res.listen_time_per_node)
            out[name] = (sum(slots) / 5, sum(energy) / 5)
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        {
            "framing": name,
            "slots to full discovery": f"{s:.0f}",
            "listen time / node (µs)": f"{e:,.0f}",
        }
        for name, (s, e) in results.items()
    ]
    show(f"Neighbor discovery, n={n} clique", rows)
    crc_slots, crc_energy = results["CRC-CD"]
    qcd_slots, qcd_energy = results["QCD-8"]
    assert qcd_slots == pytest.approx(crc_slots, rel=0.01)  # same latency
    assert qcd_energy < 0.45 * crc_energy  # much less energy


@pytest.mark.benchmark(group="neighbor-discovery")
def test_coupon_collector_prediction(benchmark):
    n = 25

    def compute():
        sims = [run(n, QCDDetector(8), seed).mean_discovery_slot for seed in range(10)]
        return sum(sims) / len(sims)

    measured = benchmark.pedantic(compute, rounds=1, iterations=1)
    predicted = expected_discovery_slots(n)
    show(
        "Coupon-collector model vs simulation",
        [
            {
                "n": str(n),
                "predicted mean completion (slots)": f"{predicted:,.0f}",
                "measured": f"{measured:,.0f}",
            }
        ],
    )
    assert measured == pytest.approx(predicted, rel=0.35)


@pytest.mark.benchmark(group="neighbor-discovery")
def test_energy_gap_grows_with_density(benchmark):
    def compute():
        ratios = []
        for n in (10, 30, 60):
            crc = run(n, CRCCDDetector(id_bits=64), seed=3)
            qcd = run(n, QCDDetector(8), seed=3)
            ratios.append(qcd.listen_time / crc.listen_time)
        return ratios

    ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Denser cliques collide more, and collided slots are where QCD saves.
    assert ratios[-1] <= ratios[0] + 0.02
    assert all(r < 0.5 for r in ratios)
