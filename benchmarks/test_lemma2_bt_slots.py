"""Lemma 2 -- BT resolves n tags in 2.885n slots on average
(1.443n collided + 0.442n idle + n singles), throughput 0.35.

Checks the exact recursion, the asymptotic constants, and the simulation
against each other.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import show
from repro.analysis.bt_theory import (
    bt_average_throughput,
    expected_bt_collided,
    expected_bt_idle,
    expected_bt_slots,
)
from repro.core.ideal import IdealDetector
from repro.core.timing import TimingModel
from repro.sim.fast import bt_fast


def test_lemma2_recursion_vs_simulation(benchmark):
    n = 200

    def run():
        sims = [
            bt_fast(n, IdealDetector(64), TimingModel(), np.random.default_rng(s))
            for s in range(25)
        ]
        return {
            "total": sum(s.true_counts.total for s in sims) / len(sims),
            "collided": sum(s.true_counts.collided for s in sims) / len(sims),
            "idle": sum(s.true_counts.idle for s in sims) / len(sims),
        }

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "quantity": "total slots",
            "simulated": f"{sim['total']:.1f}",
            "recursion": f"{expected_bt_slots(n):.1f}",
            "Lemma 2": f"{2.885 * n:.1f}",
        },
        {
            "quantity": "collided",
            "simulated": f"{sim['collided']:.1f}",
            "recursion": f"{expected_bt_collided(n):.1f}",
            "Lemma 2": f"{1.443 * n:.1f}",
        },
        {
            "quantity": "idle",
            "simulated": f"{sim['idle']:.1f}",
            "recursion": f"{expected_bt_idle(n):.1f}",
            "Lemma 2": f"{0.442 * n:.1f}",
        },
    ]
    show(f"Lemma 2: BT slot counts at n={n}", rows)
    assert sim["total"] == pytest.approx(expected_bt_slots(n), rel=0.05)
    assert sim["collided"] == pytest.approx(expected_bt_collided(n), rel=0.06)
    assert sim["idle"] == pytest.approx(expected_bt_idle(n), rel=0.10)


def test_lemma2_throughput(benchmark):
    thr = benchmark.pedantic(
        lambda: bt_average_throughput(300), rounds=1, iterations=1
    )
    assert thr == pytest.approx(0.35, abs=0.01)


def test_lemma2_constants_asymptotic(benchmark):
    n = 400
    vals = benchmark.pedantic(
        lambda: (
            expected_bt_slots(n) / n,
            expected_bt_collided(n) / n,
            expected_bt_idle(n) / n,
        ),
        rounds=1,
        iterations=1,
    )
    assert vals[0] == pytest.approx(2.885, abs=0.02)
    assert vals[1] == pytest.approx(1.443, abs=0.01)
    assert vals[2] == pytest.approx(0.442, abs=0.01)
