"""Figure 6 -- average identification delay, CRC-CD vs QCD (FSA).

Paper: QCD reduces the average delay by more than 80% in all four cases,
and its delays concentrate more tightly around the mean.
"""

from __future__ import annotations

import pytest

from bench_util import show
from repro.experiments.config import CASES
from repro.experiments.figures import fig6


def test_fig6_regenerate(benchmark, suite):
    rows = benchmark.pedantic(lambda: fig6(suite), rounds=1, iterations=1)
    show("Figure 6: identification delay, CRC-CD vs QCD-8 (FSA)", rows)
    assert len(rows) == 4


@pytest.mark.parametrize("case", list(CASES))
def test_fig6_delay_reduction(benchmark, suite, case):
    """QCD cuts the mean delay by a large factor.

    The paper reports >80%; with the paper's own airtime model (Section V)
    applied consistently to the waiting time, the reduction is ~61%: an
    identified tag's delay necessarily includes the 80-bit single slots of
    every earlier identification, not just the 16-bit overhead slots.  A
    >80% reduction follows only if the delay clock stops at the preamble
    ACK and excludes ID phases -- see EXPERIMENTS.md.  We assert the
    consistent-accounting band; the direction and magnitude class
    (QCD several-fold faster) hold regardless."""

    def compute():
        crc = suite.run(case, "fsa", "crc")
        qcd = suite.run(case, "fsa", "qcd-8")
        return 1.0 - qcd.delay_mean / crc.delay_mean

    reduction = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert reduction > (0.55 if case == "I" else 0.60)


def test_fig6_qcd_more_concentrated(benchmark, suite):
    """'the D_avg of QCD more sharply concentrate around the mean' --
    compare coefficients of variation."""

    def compute():
        crc = suite.run("II", "fsa", "crc")
        qcd = suite.run("II", "fsa", "qcd-8")
        return (qcd.delay_std / qcd.delay_mean, crc.delay_std / crc.delay_mean)

    qcd_cv, crc_cv = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert qcd_cv <= crc_cv * 1.05


def test_fig6_absolute_spread_smaller(benchmark, suite):
    def compute():
        crc = suite.run("III", "fsa", "crc")
        qcd = suite.run("III", "fsa", "qcd-8")
        return qcd.delay_std, crc.delay_std

    qcd_std, crc_std = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert qcd_std < crc_std
