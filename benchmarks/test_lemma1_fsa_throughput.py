"""Lemma 1 -- FSA throughput peaks at 1/e ≈ 0.37 when ℱ = n.

Sweeps the frame size around the optimum and verifies both the location
and the height of the peak against simulation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from bench_util import show
from repro.analysis.fsa_theory import expected_throughput, max_throughput
from repro.core.ideal import IdealDetector
from repro.core.timing import TimingModel
from repro.sim.fast import fsa_fast


def first_frame_throughput(n, frame, seeds=range(12)):
    """Simulated single-slot fraction of the first frame."""
    vals = []
    for s in seeds:
        rng = np.random.default_rng(1000 + s)
        occ = np.bincount(rng.integers(0, frame, n), minlength=frame)
        vals.append(float((occ == 1).sum()) / frame)
    return sum(vals) / len(vals)


def test_lemma1_peak_location(benchmark):
    n = 400
    ratios = [0.25, 0.5, 1.0, 2.0, 4.0]

    def sweep():
        return {r: first_frame_throughput(n, int(n * r)) for r in ratios}

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        {
            "F/n": f"{r}",
            "throughput (sim)": f"{curve[r]:.4f}",
            "throughput (theory)": f"{expected_throughput(n, int(n * r)):.4f}",
        }
        for r in ratios
    ]
    show("Lemma 1: FSA throughput vs frame size", rows)
    assert max(curve, key=curve.get) == 1.0  # peak at F = n


def test_lemma1_peak_height(benchmark):
    thr = benchmark.pedantic(
        lambda: first_frame_throughput(1000, 1000, seeds=range(20)),
        rounds=1,
        iterations=1,
    )
    assert thr == pytest.approx(1 / math.e, abs=0.02)
    assert max_throughput() == pytest.approx(0.37, abs=0.005)


def test_lemma1_full_inventory_bound(benchmark):
    """No fixed-frame full inventory beats 1/e throughput."""

    def run():
        out = []
        for frame in (200, 400, 800):
            stats = fsa_fast(
                400,
                frame,
                IdealDetector(64),
                TimingModel(),
                np.random.default_rng(7),
                confirm_frame=False,
            )
            out.append(stats.true_counts.throughput)
        return out

    thrs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(t <= 1 / math.e + 0.02 for t in thrs)
