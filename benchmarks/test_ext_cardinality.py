"""Extension bench -- cardinality estimation under QCD probing.

Estimating *how many* tags are present (paper refs [14]-[16]) transfers
no IDs, so every probing slot is an overhead slot -- the slots QCD
shrinks 6x.  This bench measures estimate quality and airtime for both
framings, and the accuracy/airtime frontier as probing frames accumulate.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import show
from repro.analysis.cardinality import estimate_cardinality
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel

N_TRUE = 800
FRAME = 512


@pytest.mark.benchmark(group="cardinality")
def test_estimation_airtime_comparison(benchmark):
    def compute():
        out = {}
        for name, det in (
            ("CRC-CD", CRCCDDetector(id_bits=64)),
            ("QCD-8", QCDDetector(8)),
        ):
            est = estimate_cardinality(
                N_TRUE, FRAME, 20, det, TimingModel(), np.random.default_rng(3)
            )
            out[name] = est
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        {
            "framing": name,
            "estimate": f"{e.n_hat:,.0f} (true {N_TRUE})",
            "±95%": f"{e.relative_error_bound:.1%}",
            "airtime (µs)": f"{e.airtime:,.0f}",
        }
        for name, e in results.items()
    ]
    show("Cardinality estimation, 20 probing frames", rows)
    crc, qcd = results["CRC-CD"], results["QCD-8"]
    assert qcd.n_hat == crc.n_hat  # same statistics
    assert crc.airtime / qcd.airtime == pytest.approx(6.0, rel=0.01)
    assert qcd.n_hat == pytest.approx(N_TRUE, rel=0.1)


@pytest.mark.benchmark(group="cardinality")
def test_estimation_cheaper_than_identification(benchmark):
    """Counting should cost a small fraction of reading: compare probing
    airtime for a ±5% estimate with the full QCD inventory time."""
    from repro.sim.fast import fsa_fast

    def compute():
        det = QCDDetector(8)
        timing = TimingModel()
        frames = 1
        est = estimate_cardinality(
            N_TRUE, FRAME, frames, det, timing, np.random.default_rng(7)
        )
        while est.relative_error_bound > 0.05 and frames < 200:
            frames += 1
            est = estimate_cardinality(
                N_TRUE, FRAME, frames, det, timing, np.random.default_rng(7)
            )
        inv = fsa_fast(
            N_TRUE,
            int(N_TRUE * 0.6),
            det,
            timing,
            np.random.default_rng(8),
        )
        return est, inv

    est, inv = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(
        "Counting vs reading (QCD-8)",
        [
            {
                "task": f"±5% estimate ({est.frames} frames)",
                "airtime (µs)": f"{est.airtime:,.0f}",
            },
            {
                "task": "full identification",
                "airtime (µs)": f"{inv.total_time:,.0f}",
            },
        ],
    )
    assert est.airtime < 0.5 * inv.total_time
