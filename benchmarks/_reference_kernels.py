"""Frozen pre-batching inventory kernels (ablation baseline).

This is the per-round kernel implementation as it stood *before* the
round-batched engine (:mod:`repro.sim.batch`) landed -- dense per-frame
``np.where`` duration chains, per-frame ``isinstance`` detector dispatch,
the scalar depth-first ``bt_fast`` walk, and Python-loop delay statistics.
``benchmarks/test_ablation_batch.py`` and ``repro-bench`` measure the
batched kernels against this snapshot so the speedup baseline stays fixed
as the live streamed kernels keep improving; it is not part of the
library and must not be imported from ``src/``.

Except for this docstring the file is byte-for-byte the pre-batching
``src/repro/sim/fast.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.crc_cd import CRCCDDetector
from repro.core.detector import CollisionDetector
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.obs.instruments import record_kernel_stats
from repro.obs.profiling import profiled
from repro.obs.state import STATE as _OBS
from repro.sim.metrics import DelayStats, InventoryStats, SlotCounts

__all__ = ["fsa_fast", "bt_fast", "dfsa_fast"]


def _durations(detector: CollisionDetector, timing: TimingModel):
    from repro.core.detector import SlotType

    return (
        timing.slot_duration(detector, SlotType.IDLE),
        timing.slot_duration(detector, SlotType.SINGLE),
        timing.slot_duration(detector, SlotType.COLLIDED),
    )


def _miss_probs(detector: CollisionDetector, m: np.ndarray) -> np.ndarray:
    """Vectorized P(collision of size m read as single)."""
    if isinstance(detector, QCDDetector):
        base = float((1 << detector.strength) - 1)
        return base ** (-(m.astype(np.float64) - 1.0))
    if isinstance(detector, CRCCDDetector):
        return np.full(m.shape, 2.0 ** (-detector.crc_bits))
    if isinstance(detector, IdealDetector):
        return np.zeros(m.shape)
    return np.array([detector.miss_probability(int(x)) for x in m])


def _miss_prob_scalar(detector: CollisionDetector):
    """Scalar miss-probability closure (hot path of the BT kernel)."""
    if isinstance(detector, QCDDetector):
        base = float((1 << detector.strength) - 1)
        return lambda m: base ** (-(m - 1))
    if isinstance(detector, CRCCDDetector):
        const = 2.0 ** (-detector.crc_bits)
        return lambda m: const
    if isinstance(detector, IdealDetector):
        return lambda m: 0.0
    return detector.miss_probability


@profiled("fast.fsa_fast")
def fsa_fast(
    n_tags: int,
    frame_size: int,
    detector: CollisionDetector,
    timing: TimingModel,
    rng: np.random.Generator,
    collect_delays: bool = True,
    confirm_frame: bool = True,
) -> InventoryStats:
    """Fixed-frame FSA inventory, vectorized.

    Matches :class:`repro.protocols.fsa.FramedSlottedAloha` under the exact
    reader with the default ``"confirm"`` termination: constant frame size,
    collided tags re-contend next frame, every frame runs to completion,
    and the inventory ends with one all-idle confirmation frame (the reader
    cannot observe an empty backlog -- the paper's Table VII accounting).
    Pass ``confirm_frame=False`` for the known-n ``"frame"`` termination.
    """
    if n_tags < 0 or frame_size < 1:
        raise ValueError("need n_tags >= 0 and frame_size >= 1")
    dur_idle, dur_single, dur_coll = _durations(detector, timing)
    remaining = n_tags
    frames = 0
    t = 0.0
    n0 = n1 = nc = 0
    missed_total = 0
    delays: list[np.ndarray] = []
    while remaining > 0:
        frames += 1
        occ = np.bincount(
            rng.integers(0, frame_size, remaining), minlength=frame_size
        )
        coll = occ >= 2
        single = occ == 1
        idle = occ == 0
        m_vals = occ[coll]
        miss = np.zeros(m_vals.shape, dtype=bool)
        if m_vals.size:
            miss = rng.random(m_vals.size) < _miss_probs(detector, m_vals)
        dur = np.where(idle, dur_idle, np.where(single, dur_single, dur_coll))
        if miss.any():
            # A missed collision runs the ID phase: single-slot airtime.
            coll_idx = np.nonzero(coll)[0]
            dur[coll_idx[miss]] = dur_single
        end_times = t + np.cumsum(dur)
        if collect_delays and single.any():
            delays.append(end_times[single])
        t = float(end_times[-1]) if dur.size else t
        n0 += int(idle.sum())
        n1 += int(single.sum())
        nc += int(coll.sum())
        missed_total += int(miss.sum())
        remaining = int(m_vals.sum())
    if confirm_frame:
        # The knowledge-free reader issues one final frame and reads it
        # all-idle before concluding the inventory is complete.
        frames += 1
        n0 += frame_size
        t += frame_size * dur_idle
    true_counts = SlotCounts(n0, n1, nc)
    detected_counts = SlotCounts(n0, n1 + missed_total, nc - missed_total)
    all_delays = (
        np.concatenate(delays) if delays else np.empty(0, dtype=np.float64)
    )
    stats = InventoryStats(
        n_tags=n_tags,
        frames=frames,
        true_counts=true_counts,
        detected_counts=detected_counts,
        total_time=t,
        accuracy=1.0 if nc == 0 else (nc - missed_total) / nc,
        delay=DelayStats.from_delays(all_delays.tolist()),
        utilization=(n1 * timing.id_bits * timing.tau / t) if t else 0.0,
        missed_collisions=missed_total,
        false_collisions=0,
        lost_tags=0,
    )
    if _OBS.enabled:
        record_kernel_stats("fast_fsa", stats)
    return stats


@profiled("fast.bt_fast")
def bt_fast(
    n_tags: int,
    detector: CollisionDetector,
    timing: TimingModel,
    rng: np.random.Generator,
    collect_delays: bool = True,
) -> InventoryStats:
    """Binary-tree inventory, group-size formulation.

    Matches :class:`repro.protocols.bt.BinaryTree` under the exact reader:
    the counter automaton is exactly a depth-first traversal where each
    collided group of size m splits into (Binomial(m, 1/2), rest), the
    drew-0 subset going first.
    """
    if n_tags < 0:
        raise ValueError("n_tags must be >= 0")
    dur_idle, dur_single, dur_coll = _durations(detector, timing)
    miss_prob = _miss_prob_scalar(detector)
    t = 0.0
    n0 = n1 = nc = 0
    missed_total = 0
    delays: list[float] = []
    stack: list[int] = [n_tags] if n_tags else []
    while stack:
        m = stack.pop()
        if m == 0:
            n0 += 1
            t += dur_idle
        elif m == 1:
            n1 += 1
            t += dur_single
            if collect_delays:
                delays.append(t)
        else:
            nc += 1
            missed = bool(rng.random() < miss_prob(m))
            missed_total += missed
            t += dur_single if missed else dur_coll
            left = int(rng.binomial(m, 0.5))
            # LIFO: the drew-1 subset waits; the drew-0 subset goes next.
            stack.append(m - left)
            stack.append(left)
    true_counts = SlotCounts(n0, n1, nc)
    detected_counts = SlotCounts(n0, n1 + missed_total, nc - missed_total)
    stats = InventoryStats(
        n_tags=n_tags,
        frames=1,  # tree protocols run one continuous logical frame
        true_counts=true_counts,
        detected_counts=detected_counts,
        total_time=t,
        accuracy=1.0 if nc == 0 else (nc - missed_total) / nc,
        utilization=(n1 * timing.id_bits * timing.tau / t) if t else 0.0,
        delay=DelayStats.from_delays(delays),
        missed_collisions=missed_total,
        false_collisions=0,
        lost_tags=0,
    )
    if _OBS.enabled:
        record_kernel_stats("fast_bt", stats)
    return stats


@profiled("fast.dfsa_fast")
def dfsa_fast(
    n_tags: int,
    initial_frame_size: int,
    estimator,
    detector: CollisionDetector,
    timing: TimingModel,
    rng: np.random.Generator,
    min_frame_size: int = 1,
    max_frame_size: int = 1 << 15,
    collect_delays: bool = True,
    max_frames: int = 100_000,
) -> InventoryStats:
    """Dynamic FSA inventory, vectorized.

    Matches :class:`repro.protocols.dfsa.DynamicFSA` under the exact
    reader: after each (complete) frame, the pluggable estimator sizes the
    next frame from the observed (N0, N1, Nc); the inventory ends with the
    frame in which the backlog empties.  The primary consumer is the
    estimator-quality ablation at populations the exact reader cannot
    reach (``benchmarks/test_ablation_estimators.py``).
    """
    from repro.protocols.estimators import FrameObservation

    if n_tags < 0 or initial_frame_size < 1:
        raise ValueError("need n_tags >= 0 and initial_frame_size >= 1")
    if not 1 <= min_frame_size <= max_frame_size:
        raise ValueError("need 1 <= min_frame_size <= max_frame_size")
    dur_idle, dur_single, dur_coll = _durations(detector, timing)
    remaining = n_tags
    frame_size = initial_frame_size
    frames = 0
    t = 0.0
    n0 = n1 = nc = 0
    missed_total = 0
    delays: list[np.ndarray] = []
    while remaining > 0:
        if frames >= max_frames:
            raise RuntimeError(f"dfsa_fast exceeded max_frames={max_frames}")
        frames += 1
        occ = np.bincount(
            rng.integers(0, frame_size, remaining), minlength=frame_size
        )
        coll = occ >= 2
        single = occ == 1
        idle = occ == 0
        m_vals = occ[coll]
        miss = np.zeros(m_vals.shape, dtype=bool)
        if m_vals.size:
            miss = rng.random(m_vals.size) < _miss_probs(detector, m_vals)
        dur = np.where(idle, dur_idle, np.where(single, dur_single, dur_coll))
        if miss.any():
            coll_idx = np.nonzero(coll)[0]
            dur[coll_idx[miss]] = dur_single
        end_times = t + np.cumsum(dur)
        if collect_delays and single.any():
            delays.append(end_times[single])
        t = float(end_times[-1]) if dur.size else t
        f0, f1, fc = int(idle.sum()), int(single.sum()), int(coll.sum())
        n0 += f0
        n1 += f1
        nc += fc
        missed_total += int(miss.sum())
        remaining = int(m_vals.sum())
        if remaining > 0:
            obs = FrameObservation(
                frame_size=frame_size, idle=f0, single=f1, collided=fc
            )
            backlog = estimator.backlog(obs)
            frame_size = max(
                min_frame_size, min(max_frame_size, max(1, backlog))
            )
    true_counts = SlotCounts(n0, n1, nc)
    detected_counts = SlotCounts(n0, n1 + missed_total, nc - missed_total)
    all_delays = (
        np.concatenate(delays) if delays else np.empty(0, dtype=np.float64)
    )
    stats = InventoryStats(
        n_tags=n_tags,
        frames=frames,
        true_counts=true_counts,
        detected_counts=detected_counts,
        total_time=t,
        accuracy=1.0 if nc == 0 else (nc - missed_total) / nc,
        delay=DelayStats.from_delays(all_delays.tolist()),
        utilization=(n1 * timing.id_bits * timing.tau / t) if t else 0.0,
        missed_collisions=missed_total,
        false_collisions=0,
        lost_tags=0,
    )
    if _OBS.enabled:
        record_kernel_stats("fast_dfsa", stats)
    return stats
