"""Table III -- average EI of QCD over CRC-CD on BT.

Paper values: EI ≈ 0.6856 / 0.6023 / 0.4356 for strengths 4 / 8 / 16.
"""

from __future__ import annotations

import pytest

from bench_util import show
from repro.analysis.ei import bt_ei_average
from repro.experiments.config import PAPER_TABLE3
from repro.experiments.tables import table3


def test_table3_matches_paper(benchmark):
    rows = benchmark(table3)
    show("Table III: average EI on BT (theory)", rows)
    for strength, expected in PAPER_TABLE3.items():
        assert bt_ei_average(strength) == pytest.approx(expected, abs=5e-4)


def test_table3_bt_gains_exceed_fsa(benchmark):
    from repro.analysis.ei import fsa_ei_lower_bound

    ei = benchmark(bt_ei_average, 8)
    assert ei > fsa_ei_lower_bound(8)
