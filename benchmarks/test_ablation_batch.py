"""Ablation -- round-batched kernels vs the per-round kernel loop.

Three engines per protocol at the paper's case IV (50 000 tags,
ℱ = 30 000, QCD-8):

* **frozen**   -- the vendored pre-batching seed kernels
  (``_reference_kernels.py``), the fixed ablation baseline;
* **streamed** -- today's per-round loop over :mod:`repro.sim.fast`;
* **batched**  -- one :mod:`repro.sim.batch` call for all rounds.

Timings are interleaved best-of-``REPEATS`` (min rejects scheduler
noise; alternating engines keeps a sustained spike from landing on one
side only).  The asserted floors are the *measured-achievable envelope*
with a noise margin, not the issue's aspirational ≥5x for FSA/DFSA:
batching is required to replay the streamed kernels' per-round RNG call
order and reproduce every per-round ``InventoryStats`` bit for bit
(enforced by the ``batch-vs-streamed`` oracle), which bounds how much
work it can elide on top of the already-vectorized streamed kernels.
The ≥5x-class win does exist where a scalar per-round loop was actually
replaced: the frozen BT walker (popcount splits land >5x; floor kept at
the issue's 2x for noise headroom).  True measured ratios are recorded
in ``BENCH_kernels.json`` next to the asserted floors; see
``docs/PERFORMANCE.md`` for the full analysis.

The reader ablation pins the uint64 packed path faster than the object
path on a 1 000-tag QCD inventory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

import _reference_kernels as frozen
from repro.bits.rng import make_rng
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.estimators import SchouteEstimator
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.batch import bt_fast_batch, dfsa_fast_batch, fsa_fast_batch
from repro.sim.fast import bt_fast, dfsa_fast, fsa_fast
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation

N, F = 50_000, 30_000  # case IV
ROUNDS = 4
REPEATS = 3
TIMING = TimingModel()

RESULTS_PATH = Path("BENCH_kernels.json")
_results: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def record_results():
    """Merge the measured case-IV ratios into ``BENCH_kernels.json``."""
    yield
    if not _results:
        return
    doc = (
        json.loads(RESULTS_PATH.read_text())
        if RESULTS_PATH.is_file()
        else {}
    )
    doc["ablation_case_iv"] = {
        "n_tags": N,
        "frame_size": F,
        "rounds": ROUNDS,
        "repeats": REPEATS,
        **_results,
    }
    RESULTS_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _children(salt: int, rounds: int = ROUNDS):
    return np.random.SeedSequence([20_104, salt]).spawn(rounds)


def _gens(kids):
    return [np.random.Generator(np.random.PCG64(c)) for c in kids]


def _interleaved_best(engines: dict[str, tuple], repeats: int = REPEATS):
    """Best-of wall time per engine, in ms per round, alternating engines
    within each repeat so noise spikes cannot bias one side."""
    best = {name: float("inf") for name in engines}
    for _ in range(repeats):
        for name, (fn, rounds) in engines.items():
            t0 = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - t0)
    return {
        name: best[name] / engines[name][1] * 1_000.0 for name in engines
    }


def _assert_and_record(proto: str, ms: dict, floors: dict) -> None:
    ratios = {
        "speedup_vs_frozen": ms["frozen"] / ms["batched"],
        "speedup_vs_streamed": ms["streamed"] / ms["batched"],
    }
    _results[proto] = {
        **{f"{k}_ms_per_round": v for k, v in ms.items()},
        **ratios,
        "floors": floors,
    }
    assert ratios["speedup_vs_frozen"] >= floors["vs_frozen"], (
        f"{proto}: batched {ms['batched']:.2f} ms/round vs frozen "
        f"{ms['frozen']:.2f} -- {ratios['speedup_vs_frozen']:.2f}x < "
        f"floor {floors['vs_frozen']}x"
    )
    assert ratios["speedup_vs_streamed"] >= floors["vs_streamed"], (
        f"{proto}: batched {ms['batched']:.2f} ms/round vs streamed "
        f"{ms['streamed']:.2f} -- {ratios['speedup_vs_streamed']:.2f}x < "
        f"floor {floors['vs_streamed']}x"
    )


@pytest.mark.benchmark(group="batch-ablation")
def test_fsa_batched_vs_round_loop(benchmark):
    det = QCDDetector(8)
    ms = _interleaved_best(
        {
            "frozen": (
                lambda: [
                    frozen.fsa_fast(N, F, det, TIMING, g)
                    for g in _gens(_children(1))
                ],
                ROUNDS,
            ),
            "streamed": (
                lambda: [
                    fsa_fast(N, F, det, TIMING, g)
                    for g in _gens(_children(1))
                ],
                ROUNDS,
            ),
            "batched": (
                lambda: fsa_fast_batch(N, F, det, TIMING, _children(1)),
                ROUNDS,
            ),
        }
    )
    benchmark.extra_info.update(ms)
    benchmark.pedantic(
        lambda: fsa_fast_batch(N, F, det, TIMING, _children(1)),
        rounds=1,
        iterations=1,
    )
    _assert_and_record(
        "fsa", ms, {"vs_frozen": 1.3, "vs_streamed": 1.2}
    )


@pytest.mark.benchmark(group="batch-ablation")
def test_dfsa_batched_vs_round_loop(benchmark):
    det = QCDDetector(8)
    kw = {"max_frame_size": 1 << 17}
    ms = _interleaved_best(
        {
            "frozen": (
                lambda: [
                    frozen.dfsa_fast(
                        N, F, SchouteEstimator(), det, TIMING, g, **kw
                    )
                    for g in _gens(_children(2))
                ],
                ROUNDS,
            ),
            "streamed": (
                lambda: [
                    dfsa_fast(
                        N, F, SchouteEstimator(), det, TIMING, g, **kw
                    )
                    for g in _gens(_children(2))
                ],
                ROUNDS,
            ),
            "batched": (
                lambda: dfsa_fast_batch(
                    N, F, SchouteEstimator(), det, TIMING, _children(2), **kw
                ),
                ROUNDS,
            ),
        }
    )
    benchmark.extra_info.update(ms)
    benchmark.pedantic(
        lambda: dfsa_fast_batch(
            N, F, SchouteEstimator(), det, TIMING, _children(2), **kw
        ),
        rounds=1,
        iterations=1,
    )
    _assert_and_record(
        "dfsa", ms, {"vs_frozen": 1.15, "vs_streamed": 1.05}
    )


@pytest.mark.benchmark(group="batch-ablation")
def test_bt_batched_vs_round_loop(benchmark):
    det = QCDDetector(8)
    ms = _interleaved_best(
        {
            # The frozen scalar walker is ~10x slower; one round is plenty.
            "frozen": (
                lambda: [
                    frozen.bt_fast(N, det, TIMING, g)
                    for g in _gens(_children(3, 1))
                ],
                1,
            ),
            "streamed": (
                lambda: [
                    bt_fast(N, det, TIMING, g)
                    for g in _gens(_children(3))
                ],
                ROUNDS,
            ),
            "batched": (
                lambda: bt_fast_batch(N, det, TIMING, _children(3)),
                ROUNDS,
            ),
        }
    )
    benchmark.extra_info.update(ms)
    benchmark.pedantic(
        lambda: bt_fast_batch(N, det, TIMING, _children(3)),
        rounds=1,
        iterations=1,
    )
    _assert_and_record(
        "bt", ms, {"vs_frozen": 2.0, "vs_streamed": 1.05}
    )


@pytest.mark.benchmark(group="batch-ablation")
def test_reader_packed_beats_object_path(benchmark):
    """The uint64 tiers on a 1 000-tag QCD-8 inventory: per-slot packed
    must beat the object path, and frame batching must beat per-slot."""
    n = 1_000

    def once(packed: bool, frame_batched: bool = True) -> float:
        pop = TagPopulation(n, id_bits=TIMING.id_bits, rng=make_rng(7))
        reader = Reader(
            QCDDetector(8), TIMING, packed=packed,
            frame_batched=frame_batched,
        )
        t0 = time.perf_counter()
        reader.run_inventory(pop.tags, FramedSlottedAloha(n))
        return time.perf_counter() - t0

    t_obj = t_packed = t_batched = float("inf")
    for _ in range(8):
        t_obj = min(t_obj, once(False))
        t_packed = min(t_packed, once(True, frame_batched=False))
        t_batched = min(t_batched, once(True))
    speedup = t_obj / t_packed
    batched_speedup = t_obj / t_batched
    benchmark.extra_info.update(
        {"object_ms": t_obj * 1e3, "packed_ms": t_packed * 1e3,
         "batched_ms": t_batched * 1e3, "speedup": speedup,
         "batched_speedup": batched_speedup}
    )
    benchmark.pedantic(lambda: once(True), rounds=1, iterations=1)
    _results["reader"] = {
        "object_ms": t_obj * 1e3,
        "packed_ms": t_packed * 1e3,
        "batched_ms": t_batched * 1e3,
        "packed_speedup": speedup,
        "batched_speedup": batched_speedup,
    }
    assert speedup > 1.0, (
        f"packed path slower than object path: {speedup:.2f}x "
        f"({t_packed * 1e3:.1f} ms vs {t_obj * 1e3:.1f} ms)"
    )
    assert t_batched < t_packed, (
        f"frame batching slower than the per-slot packed path "
        f"({t_batched * 1e3:.1f} ms vs {t_packed * 1e3:.1f} ms)"
    )
