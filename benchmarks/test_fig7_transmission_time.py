"""Figure 7 -- total transmission time (µs), CRC-CD vs QCD-8.

Paper: panel (a) FSA, panel (b) BT, cases I-IV.  'QCD based FSAs spend
less than half of the transmission time of CRC-CD based FSAs in all
cases', and the absolute gap widens with the population.  Axis check:
case II CRC-CD ≈ 2.2e5 µs (2270 slots x 96 bits x 1 µs).
"""

from __future__ import annotations

import pytest

from bench_util import show
from repro.experiments.config import CASES
from repro.experiments.figures import fig7


def test_fig7_regenerate(benchmark, suite):
    rows = benchmark.pedantic(lambda: fig7(suite), rounds=1, iterations=1)
    show("Figure 7: transmission time (µs), CRC-CD vs QCD-8", rows)
    assert len(rows) == 8


@pytest.mark.parametrize("protocol", ["fsa", "bt"])
@pytest.mark.parametrize("case", list(CASES))
def test_fig7_qcd_less_than_half(benchmark, suite, protocol, case):
    def compute():
        crc = suite.run(case, protocol, "crc")
        qcd = suite.run(case, protocol, "qcd-8")
        return qcd.total_time / crc.total_time

    ratio = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert ratio < 0.5


def test_fig7_gap_widens_with_scale(benchmark, suite):
    def compute():
        gaps = []
        for case in CASES:
            crc = suite.run(case, "fsa", "crc")
            qcd = suite.run(case, "fsa", "qcd-8")
            gaps.append(crc.total_time - qcd.total_time)
        return gaps

    gaps = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert gaps == sorted(gaps)


def test_fig7_case2_axis_value(benchmark, suite):
    """The paper's y-axis puts case II CRC-CD around 2.2e5 µs."""
    crc = benchmark.pedantic(
        lambda: suite.run("II", "fsa", "crc"), rounds=1, iterations=1
    )
    assert crc.total_time == pytest.approx(2.2e5, rel=0.10)


def test_fig7_bt_smaller_than_fsa_times(benchmark, suite):
    """Figure 7(b)'s axes are ~2x smaller than 7(a)'s: BT uses fewer
    slots than fixed-frame FSA at the paper's frame sizes."""

    def compute():
        return (
            suite.run("III", "bt", "crc").total_time,
            suite.run("III", "fsa", "crc").total_time,
        )

    bt_time, fsa_time = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert bt_time < fsa_time
