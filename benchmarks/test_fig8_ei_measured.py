"""Figure 8 -- measured EI of QCD over CRC-CD, by case and strength.

Paper, panel (a) FSA at 8-bit strength: EI = 65 / 68 / 69 / 70 % for
cases I-IV, all above the theoretical lower bound 41.98%; EI decreases
with strength.  Panel (b) BT: EI stabilizes around ~68 / 60.23 / ~44 %
for strengths 4 / 8 / 16 (the paper's "78%" for 4-bit is inconsistent
with its own Table III; we reproduce ≈68%).
"""

from __future__ import annotations

import pytest

from bench_util import show
from repro.analysis.ei import bt_ei_average, fsa_ei_lower_bound, measured_ei
from repro.experiments.config import CASES, PAPER_FIG8_FSA, STRENGTHS
from repro.experiments.figures import fig8


def test_fig8_regenerate(benchmark, suite):
    rows = benchmark.pedantic(lambda: fig8(suite), rounds=1, iterations=1)
    show("Figure 8: measured EI of QCD over CRC-CD", rows)
    assert len(rows) == 8


@pytest.mark.parametrize("case", list(CASES))
def test_fig8a_8bit_matches_paper(benchmark, suite, case):
    def compute():
        crc = suite.run(case, "fsa", "crc")
        qcd = suite.run(case, "fsa", "qcd-8")
        return measured_ei(crc.total_time, qcd.total_time)

    ei = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert ei == pytest.approx(PAPER_FIG8_FSA[case], abs=0.03)
    assert ei > fsa_ei_lower_bound(8) - 0.02  # above the Table II bound


@pytest.mark.parametrize("protocol", ["fsa", "bt"])
def test_fig8_ei_decreases_with_strength(benchmark, suite, protocol):
    def compute():
        crc = suite.run("III", protocol, "crc")
        return [
            measured_ei(
                crc.total_time, suite.run("III", protocol, f"qcd-{s}").total_time
            )
            for s in STRENGTHS
        ]

    eis = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert eis[0] > eis[1] > eis[2]


@pytest.mark.parametrize("strength", STRENGTHS)
def test_fig8b_bt_stabilizes_near_theory(benchmark, suite, strength):
    """Panel (b): BT's EI is stable across cases and sits at the Table III
    average."""

    def compute():
        out = []
        for case in CASES:
            crc = suite.run(case, "bt", "crc")
            qcd = suite.run(case, "bt", f"qcd-{strength}")
            out.append(measured_ei(crc.total_time, qcd.total_time))
        return out

    eis = benchmark.pedantic(compute, rounds=1, iterations=1)
    theory = bt_ei_average(strength)
    for ei in eis:
        assert ei == pytest.approx(theory, abs=0.03)
    assert max(eis) - min(eis) < 0.03  # 'more stable' than FSA


def test_fig8_fsa_ei_grows_with_scale(benchmark, suite):
    """Panel (a): the 8-bit series rises from case I to case IV (65->70%)."""

    def compute():
        out = []
        for case in CASES:
            crc = suite.run(case, "fsa", "crc")
            qcd = suite.run(case, "fsa", "qcd-8")
            out.append(measured_ei(crc.total_time, qcd.total_time))
        return out

    eis = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert eis[0] < eis[-1]
