"""Micro-benchmarks of the substrate hot paths.

Performance-regression tracking for the primitives everything else is
built on: bit-vector algebra, CRC engines (the Table IV cost story in
wall-clock form), preamble codec, and the line codes.
"""

from __future__ import annotations

import pytest

from repro.bits.bitvec import BitVector
from repro.bits.crc import CRC16_CCITT_FALSE, CRC32_IEEE, CrcEngine
from repro.bits.linecode import FM0Codec
from repro.bits.rng import make_rng
from repro.core.preamble import PreambleCodec

RNG = make_rng(99)
A96 = BitVector.random(96, RNG.generator)
B96 = BitVector.random(96, RNG.generator)
ID64 = BitVector.random(64, RNG.generator)


@pytest.mark.benchmark(group="micro-bitvec")
def test_micro_or(benchmark):
    out = benchmark(lambda: A96 | B96)
    assert out.length == 96


@pytest.mark.benchmark(group="micro-bitvec")
def test_micro_complement(benchmark):
    out = benchmark(lambda: ~A96)
    assert out.length == 96


@pytest.mark.benchmark(group="micro-bitvec")
def test_micro_concat_slice(benchmark):
    def op():
        c = A96 + B96
        return c[:96], c[96:]

    left, right = benchmark(op)
    assert left == A96 and right == B96


@pytest.mark.benchmark(group="micro-crc")
def test_micro_crc32_bitwise(benchmark):
    engine = CrcEngine(CRC32_IEEE, "bitwise")
    out = benchmark(engine.compute_bits, ID64)
    assert out.length == 32


@pytest.mark.benchmark(group="micro-crc")
def test_micro_crc32_table(benchmark):
    engine = CrcEngine(CRC32_IEEE, "table")
    out = benchmark(engine.compute_bits, ID64)
    assert out.length == 32


@pytest.mark.benchmark(group="micro-crc")
def test_micro_crc16_bitwise(benchmark):
    engine = CrcEngine(CRC16_CCITT_FALSE, "bitwise")
    out = benchmark(engine.compute_bits, ID64)
    assert out.length == 16


@pytest.mark.benchmark(group="micro-detect")
def test_micro_qcd_roundtrip(benchmark):
    codec = PreambleCodec(8)
    rng = make_rng(7)

    def op():
        signal = codec.draw(rng).to_signal()
        return codec.is_consistent(codec.decode(signal))

    assert benchmark(op)


@pytest.mark.benchmark(group="micro-detect")
def test_micro_fm0_roundtrip(benchmark):
    codec = FM0Codec()

    def op():
        return codec.decode(codec.encode(ID64))

    assert benchmark(op) == ID64


@pytest.mark.benchmark(group="micro-detect")
def test_micro_check_cost_gap(benchmark):
    """Wall-clock version of Table IV's instruction gap: one CRC-32 check
    vs one complement check over the same inputs."""
    engine = CrcEngine(CRC32_IEEE, "bitwise")
    r = BitVector.random(8, RNG.generator)

    def both():
        engine.compute_bits(ID64)
        return ~r

    benchmark(both)
