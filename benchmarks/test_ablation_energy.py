"""Ablation -- Table IV's instruction/transmission deltas, in joules.

Converts the cost comparison into an energy budget per inventory: tag
transmit energy (bits on air), tag compute energy (CRC vs complement),
and reader receive energy (total airtime).
"""

from __future__ import annotations

import pytest

from bench_util import show
from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.energy import inventory_energy
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation

N = 150


def energy_for(detector, seed=41):
    pop = TagPopulation(N, id_bits=64, rng=make_rng(seed))
    timing = TimingModel()
    result = Reader(detector, timing).run_inventory(
        pop.tags, FramedSlottedAloha(90)
    )
    return inventory_energy(result.trace, detector, timing)


@pytest.mark.benchmark(group="energy")
def test_energy_budget_comparison(benchmark):
    def compute():
        return {
            "CRC-CD": energy_for(CRCCDDetector(id_bits=64)),
            "QCD-8": energy_for(QCDDetector(8)),
            "ideal": energy_for(IdealDetector(64)),
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        {
            "scheme": name,
            "tag tx (µJ)": f"{e.tag_transmit:.2f}",
            "tag compute (µJ)": f"{e.tag_compute:.4f}",
            "reader rx (µJ)": f"{e.reader_receive:,.0f}",
            "total (µJ)": f"{e.total:,.0f}",
        }
        for name, e in results.items()
    ]
    show(f"Energy per inventory, n={N} (FSA)", rows)
    crc, qcd = results["CRC-CD"], results["QCD-8"]
    assert qcd.total < 0.55 * crc.total
    assert qcd.tag_compute < 0.01 * crc.tag_compute  # the Table IV story
    assert qcd.tag_transmit < crc.tag_transmit


@pytest.mark.benchmark(group="energy")
def test_strength_sweep_energy(benchmark):
    def compute():
        return {s: energy_for(QCDDetector(s), seed=43) for s in (4, 8, 16)}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(
        "Tag energy vs strength",
        [
            {
                "strength": f"{s}-bit",
                "tag total (µJ)": f"{e.tag_total:.2f}",
                "system total (µJ)": f"{e.total:,.0f}",
            }
            for s, e in results.items()
        ],
    )
    assert results[4].tag_total < results[8].tag_total < results[16].tag_total
