"""Figure 5 -- QCD collision-detection accuracy by strength, cases I-IV.

Paper: accuracy grows with strength; 8-bit is ~100%; 16-bit essentially
exact; the tag count matters much less than the strength.
"""

from __future__ import annotations

import pytest

from bench_util import show
from repro.analysis.accuracy import expected_accuracy_fsa
from repro.experiments.config import CASES, STRENGTHS
from repro.experiments.figures import fig5


def test_fig5_regenerate(benchmark, suite):
    rows = benchmark.pedantic(lambda: fig5(suite), rounds=1, iterations=1)
    show("Figure 5: QCD detection accuracy (FSA)", rows)
    assert len(rows) == 4


@pytest.mark.parametrize("case", list(CASES))
def test_fig5_accuracy_monotone_in_strength(benchmark, suite, case):
    accs = benchmark.pedantic(
        lambda: [suite.run(case, "fsa", f"qcd-{s}").accuracy for s in STRENGTHS],
        rounds=1,
        iterations=1,
    )
    assert accs[0] < accs[1] <= accs[2] <= 1.0


def test_fig5_8bit_near_perfect(benchmark, suite):
    """'setting the strength of QCD as 8-bits can achieve nearly 100%
    accuracy'."""
    accs = benchmark.pedantic(
        lambda: [suite.run(c, "fsa", "qcd-8").accuracy for c in CASES],
        rounds=1,
        iterations=1,
    )
    assert all(a > 0.99 for a in accs)


def test_fig5_16bit_essentially_exact(benchmark, suite):
    accs = benchmark.pedantic(
        lambda: [suite.run(c, "fsa", "qcd-16").accuracy for c in CASES],
        rounds=1,
        iterations=1,
    )
    assert all(a > 0.9999 for a in accs)


def test_fig5_matches_analytic_model(benchmark, suite):
    """The measured accuracy tracks the closed-form first-frame model."""
    case = CASES["II"]
    agg = benchmark.pedantic(
        lambda: suite.run("II", "fsa", "qcd-4"), rounds=1, iterations=1
    )
    predicted = expected_accuracy_fsa(case.n_tags, case.frame_size, 4)
    assert agg.accuracy == pytest.approx(predicted, abs=0.02)
