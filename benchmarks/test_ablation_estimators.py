"""Ablation -- cardinality estimators driving dynamic FSA at scale.

DFSA's slot efficiency is exactly as good as its backlog estimator.  This
bench races the five estimators over a 5000-tag inventory (vectorized
kernel) from a deliberately bad initial frame, reporting total slots,
frames, and airtime under QCD -- and checks the expected quality ordering:
the crude lower bound over-collides; Schoute fixes the ρ = 1 case;
Eom-Lee/MLE/Vogt stay calibrated off-optimum.
"""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from bench_util import show
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.estimators import (
    EomLeeEstimator,
    LowerBoundEstimator,
    MleEstimator,
    SchouteEstimator,
    VogtEstimator,
)
from repro.sim.fast import dfsa_fast

N = 5000
INITIAL = 64
SEEDS = range(5)

ESTIMATORS = {
    "lower-bound": LowerBoundEstimator(),
    "schoute": SchouteEstimator(),
    "eom-lee": EomLeeEstimator(),
    "vogt": VogtEstimator(),
    "mle": MleEstimator(),
}


def race(estimator):
    slots, frames, times = [], [], []
    for seed in SEEDS:
        stats = dfsa_fast(
            N,
            INITIAL,
            estimator,
            QCDDetector(8),
            TimingModel(),
            np.random.default_rng(1000 + seed),
        )
        assert stats.true_counts.single == N
        slots.append(stats.true_counts.total)
        frames.append(stats.frames)
        times.append(stats.total_time)
    return (
        statistics.mean(slots),
        statistics.mean(frames),
        statistics.mean(times),
    )


@pytest.mark.benchmark(group="estimators")
def test_estimator_race(benchmark):
    def compute():
        return {name: race(est) for name, est in ESTIMATORS.items()}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        {
            "estimator": name,
            "slots": f"{s:,.0f}",
            "frames": f"{f:.1f}",
            "airtime (µs)": f"{t:,.0f}",
            "slots/tag": f"{s / N:.2f}",
        }
        for name, (s, f, t) in results.items()
    ]
    show(f"DFSA estimator race, n={N}, initial frame {INITIAL}", rows)
    # Every estimator lands in the e·n ballpark (Lemma 1's floor is
    # ~2.72 slots/tag for throughput-optimal FSA).
    for name, (s, _, _) in results.items():
        assert 2.5 * N < s < 4.5 * N, name
    # The refined estimators must not lose to the crude lower bound.
    lb = results["lower-bound"][0]
    for name in ("schoute", "eom-lee", "mle", "vogt"):
        assert results[name][0] <= lb * 1.03, name


@pytest.mark.benchmark(group="estimators")
def test_estimator_robust_to_bad_start(benchmark):
    """Starting 300x undersized (frame 16 vs 5000 tags) must still
    converge in a handful of frames thanks to geometric frame growth."""

    def compute():
        return dfsa_fast(
            N,
            16,
            EomLeeEstimator(),
            QCDDetector(8),
            TimingModel(),
            np.random.default_rng(77),
        )

    stats = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert stats.true_counts.single == N
    assert stats.frames < 40
