"""Ablations of the design choices DESIGN.md calls out.

1. Strength sweep beyond the paper's {4, 8, 16}: where does the
   accuracy/overhead trade-off put the knee?  (Backs the l = 8
   recommendation.)
2. Misdetection policies: what does the ``crc_guard`` insurance cost, and
   what does ``lost`` actually lose?
3. FSA termination policies: the price of the confirmation frame.
4. Variable-length slots vs the preamble alone: how much of QCD's win is
   the short idle/collided slots vs the cheap check.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import show
from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.fast import fsa_fast
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation

N, F = 500, 300


def kernel(strength, seed=0, rounds=10):
    det = QCDDetector(strength)
    out = []
    for r in range(rounds):
        out.append(
            fsa_fast(N, F, det, TimingModel(), np.random.default_rng(seed + r))
        )
    return out


@pytest.mark.benchmark(group="ablation")
def test_strength_knee(benchmark):
    """Sweep l = 1..16: accuracy saturates around l = 8 while time keeps
    growing linearly in l -- the paper's recommendation is the knee."""

    def sweep():
        rows = []
        for l in (1, 2, 4, 6, 8, 12, 16):
            runs = kernel(l)
            acc = sum(s.accuracy for s in runs) / len(runs)
            t = sum(s.total_time for s in runs) / len(runs)
            rows.append({"l": l, "accuracy": acc, "time": t})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        "Ablation: strength sweep (case II)",
        [
            {
                "strength": str(r["l"]),
                "accuracy": f"{r['accuracy']:.4f}",
                "time (µs)": f"{r['time']:,.0f}",
            }
            for r in rows
        ],
    )
    by_l = {r["l"]: r for r in rows}
    assert by_l[8]["accuracy"] > 0.995
    assert by_l[8]["accuracy"] - by_l[4]["accuracy"] > 0.02
    assert by_l[16]["accuracy"] - by_l[8]["accuracy"] < 0.01  # saturated
    assert by_l[16]["time"] > by_l[8]["time"] > by_l[4]["time"]


@pytest.mark.benchmark(group="ablation")
def test_policy_cost(benchmark):
    """crc_guard insures against misses for ~l_crc extra bits per single
    slot; lost completes fastest but silently drops tags."""

    def run_policy(policy, strength=2):
        timing = TimingModel(guard_id_phase=(policy == "crc_guard"))
        pop = TagPopulation(200, rng=make_rng(42))
        reader = Reader(QCDDetector(strength), timing, policy=policy)
        result = reader.run_inventory(pop.tags, FramedSlottedAloha(120))
        return result

    def sweep():
        return {p: run_policy(p) for p in ("paper", "crc_guard", "lost")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        {
            "policy": p,
            "identified": str(len(r.identified_ids)),
            "lost": str(len(r.lost_ids)),
            "time (µs)": f"{r.stats.total_time:,.0f}",
        }
        for p, r in results.items()
    ]
    show("Ablation: misdetection policies (l=2, 200 tags)", rows)
    assert results["lost"].lost_ids  # l=2 misses often
    assert not results["paper"].lost_ids
    assert not results["crc_guard"].lost_ids
    # The guard costs airtime per single slot.
    assert (
        results["crc_guard"].stats.total_time
        > results["paper"].stats.total_time
    )


@pytest.mark.benchmark(group="ablation")
def test_termination_policies(benchmark):
    """The confirmation frame costs exactly ℱ idle slots over 'frame';
    'immediate' (oracle) is the cheapest."""

    def run_term(termination):
        pop = TagPopulation(N, rng=make_rng(7))
        reader = Reader(QCDDetector(8), TimingModel())
        return reader.run_inventory(
            pop.tags, FramedSlottedAloha(F, termination=termination)
        )

    def sweep():
        return {t: run_term(t) for t in ("confirm", "frame", "immediate")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slots = {t: len(r.trace) for t, r in results.items()}
    show(
        "Ablation: FSA termination policies",
        [
            {"policy": t, "slots": str(s), "time (µs)": f"{results[t].stats.total_time:,.0f}"}
            for t, s in slots.items()
        ],
    )
    assert slots["confirm"] == slots["frame"] + F
    assert slots["immediate"] <= slots["frame"]


@pytest.mark.benchmark(group="ablation")
def test_variable_slot_contribution(benchmark):
    """Decompose QCD's win: a hypothetical 'QCD-preamble + fixed 96-bit
    slots' scheme saves nothing, showing the variable-length slot
    mechanism -- not the cheap check -- carries the airtime gain."""

    def compute():
        runs_qcd = kernel(8, seed=100)
        det_crc = CRCCDDetector(id_bits=64)
        runs_crc = [
            fsa_fast(N, F, det_crc, TimingModel(), np.random.default_rng(100 + r))
            for r in range(10)
        ]
        t_qcd = sum(s.total_time for s in runs_qcd) / len(runs_qcd)
        t_crc = sum(s.total_time for s in runs_crc) / len(runs_crc)
        counts = runs_qcd[0].true_counts
        # Fixed-slot QCD: every slot costs l_prm + l_id like a worst case.
        t_fixed = (counts.total) * (16 + 64)
        return t_qcd, t_crc, t_fixed

    t_qcd, t_crc, t_fixed = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(
        "Ablation: where QCD's gain comes from",
        [
            {"scheme": "CRC-CD (96-bit slots)", "time (µs)": f"{t_crc:,.0f}"},
            {"scheme": "QCD, fixed-length slots", "time (µs)": f"{t_fixed:,.0f}"},
            {"scheme": "QCD, variable-length slots", "time (µs)": f"{t_qcd:,.0f}"},
        ],
    )
    assert t_qcd < t_fixed < t_crc
