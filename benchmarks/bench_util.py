"""Helpers shared by the benchmark modules."""

from __future__ import annotations

#: Rounds per grid point.  The paper uses 100; 20 keeps the full bench run
#: fast while the 50 000-tag cases average away their noise.
BENCH_ROUNDS = 20
BENCH_SEED = 2010


def show(title: str, rows) -> None:
    """Print a rendered table (visible with ``pytest -s``)."""
    from repro.experiments.report import render_table

    print()
    print(render_table(rows, title=title))
