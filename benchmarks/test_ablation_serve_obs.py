"""Ablation -- cost of request tracing on the serve pipeline.

With observability disabled (``repro-serve --no-obs``) the serve path
still pays a small fixed per-request bookkeeping toll: generating and
validating the request id, binding the (empty) trace context around
dispatch, the per-stage ``note_stage`` updates on the job, the response
header lookup, and the slow-request ring append.  That toll must stay
under 5% of even the *cheapest* real request the server can answer.

Like ``test_ablation_observability``, the baseline is measured in the
same process: ``_bookkeeping_once`` replicates exactly the disabled-mode
observability operations one request executes (nothing else -- no
parsing, no compute, no socket), and the gate compares its per-call
cost against the measured warm latency of a real ``GET /healthz`` --
the lightest route, hence the most conservative denominator.  Sync
simulate requests are strictly more expensive, so their relative
overhead is lower still.

Enabled mode is exercised too (informational): full tracing to a JSONL
sink must serve correctly and leave a non-empty trace, and its latency
is recorded for the record -- tracing every span is allowed to cost
real time.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import obs
from repro.obs import context as _ctx
from repro.obs.state import STATE as _OBS
from repro.serve import protocol as proto
from repro.serve.client import ServeClient
from repro.serve.server import ServeApp, ServeConfig
from repro.serve.workers import Job

K = 2_000  # bookkeeping iterations per timing sample
ROUNDS = 10  # min-of-N samples for both sides of the ratio
WARM_REQUESTS = 30


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class _BenchApp:
    """A ServeApp on a background event-loop thread (ephemeral port)."""

    def __init__(self, **overrides) -> None:
        config = ServeConfig(port=0, **overrides)
        self._ready = threading.Event()
        self.app: ServeApp | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self._thread = threading.Thread(
            target=self._run, args=(config,), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(20):
            raise RuntimeError("bench server did not start")

    def _run(self, config: ServeConfig) -> None:
        async def amain() -> None:
            app = ServeApp(config)
            await app.start()
            self.app = app
            self.loop = asyncio.get_running_loop()
            self.port = app.port
            self._ready.set()
            await app.wait_closed()

        asyncio.run(amain())

    def client(self) -> ServeClient:
        return ServeClient(f"http://127.0.0.1:{self.port}", retries=0)

    def shutdown(self) -> None:
        assert self.app is not None and self.loop is not None
        self.loop.call_soon_threadsafe(self.app.begin_drain)
        self._thread.join(30)


_REQUEST = proto.parse_simulate_request(
    {
        "version": 1,
        "cases": ["I"],
        "protocols": ["fsa"],
        "schemes": ["crc"],
        "rounds": 2,
        "client": "bench",
    }
)


def _bookkeeping_once(recent: list) -> None:
    """Every observability operation one disabled-mode request pays.

    Mirrors the obs-specific additions in ``ServeApp._handle_connection``
    / ``WorkerPool._process``: id generation + validation, the enabled
    branch, the context binding around dispatch, the response-header id
    lookup, one point's worth of stage attribution, and the
    ``_finish_request`` ring entry.
    """
    rid = _ctx.new_request_id()
    proto.valid_request_id(rid)
    job = Job(_REQUEST, request_id=rid)
    tracer = None if not _OBS.enabled else _OBS.tracer
    with _ctx.bound_context(tracer=tracer, request_id=rid):
        _ctx.current_request_id()
        job.note_stage("queue_wait", 1e-6)
        job.note_stage("compute", 1e-6)
        job.note_stage("coalesce", 1e-6)
        job.note_stage("stream", 1e-6)
    recent.append(
        {
            "request_id": rid,
            "route": "simulate",
            "status": 200,
            "duration_s": 0.0,
            "client": "bench",
        }
    )


def _time_bookkeeping() -> float:
    """Per-request bookkeeping cost (seconds), min-of-ROUNDS."""
    best = float("inf")
    for _ in range(ROUNDS):
        recent: list = []
        start = time.perf_counter()
        for _ in range(K):
            _bookkeeping_once(recent)
        best = min(best, (time.perf_counter() - start) / K)
    return best


@pytest.mark.benchmark(group="serve-obs-overhead")
def test_disabled_bookkeeping_under_5_percent_of_a_request(benchmark):
    """The --no-obs per-request toll is <5% of the cheapest request."""
    server = _BenchApp(concurrency=2, mc_workers=1, obs_enabled=False)
    try:
        client = server.client()
        assert client.healthz()["status"] == "ok"  # warm the path
        request_min = float("inf")
        for _ in range(WARM_REQUESTS):
            start = time.perf_counter()
            client.healthz()
            request_min = min(request_min, time.perf_counter() - start)
    finally:
        server.shutdown()

    assert not obs.is_enabled()
    _time_bookkeeping()  # warm

    def run() -> float:
        return _time_bookkeeping()

    bookkeeping = benchmark.pedantic(run, rounds=3, iterations=1)
    overhead = bookkeeping / request_min
    benchmark.extra_info["bookkeeping_s"] = bookkeeping
    benchmark.extra_info["request_min_s"] = request_min
    benchmark.extra_info["overhead_fraction"] = overhead
    assert overhead < 0.05, (
        f"disabled-obs serve bookkeeping is {overhead:.1%} of a warm "
        f"request ({bookkeeping * 1e6:.1f}us vs {request_min * 1e6:.1f}us)"
    )


@pytest.mark.benchmark(group="serve-obs-overhead")
def test_enabled_tracing_serves_and_writes_spans(benchmark, tmp_path):
    """Full tracing on: requests succeed and the JSONL trace is real."""
    trace_path = tmp_path / "trace.jsonl"
    server = _BenchApp(
        concurrency=2, mc_workers=1, trace_out=str(trace_path)
    )
    doc = dict(_REQUEST.to_wire(), mode="sync")
    try:
        client = server.client()
        body = client.simulate(doc)  # warm (computes + caches the point)
        assert len(body["results"]) == 1

        def run() -> dict:
            return client.simulate(doc)

        result = benchmark.pedantic(run, rounds=3, iterations=1)
        assert result["state"] == "done"
        rid = client.last_request_id
    finally:
        server.shutdown()  # drain flushes the sink

    from repro.obs.report import load_trace, spans_for_request

    records = load_trace(trace_path)
    assert records, "trace file is empty"
    spans = spans_for_request(records, rid)
    assert {"serve.request", "serve.coalesce"} <= {s["name"] for s in spans}
