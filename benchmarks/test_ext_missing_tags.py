"""Extension bench -- missing-tag verification against a manifest.

Verification never reads an ID, so it is both much cheaper than an
inventory and a pure-overhead workload where QCD's 16-bit slots realize
their full 6x factor.  The bench measures cost vs manifest size and the
QCD/CRC airtime gap.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import show
from repro.apps.missing_tags import detect_missing_tags
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.sim.fast import fsa_fast


def verify(n, n_missing, detector, seed=3):
    rng = np.random.default_rng(seed)
    expected = list(range(n))
    missing = set(rng.choice(n, size=n_missing, replace=False).tolist())
    present = [i for i in expected if i not in missing]
    result = detect_missing_tags(
        expected, present, detector, TimingModel(), np.random.default_rng(seed + 1)
    )
    assert result.missing_ids == frozenset(missing)
    return result


@pytest.mark.benchmark(group="missing-tags")
def test_verification_vs_inventory(benchmark):
    n = 2000

    def compute():
        ver = verify(n, 50, QCDDetector(8))
        inv = fsa_fast(
            n,
            int(n * 0.6),
            QCDDetector(8),
            TimingModel(),
            np.random.default_rng(5),
        )
        return ver, inv

    ver, inv = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(
        f"Verify a {n}-tag manifest (50 missing) vs read it",
        [
            {
                "task": "missing-tag verification",
                "slots": f"{ver.slots:,}",
                "airtime (µs)": f"{ver.airtime:,.0f}",
            },
            {
                "task": "full inventory",
                "slots": f"{inv.true_counts.total:,}",
                "airtime (µs)": f"{inv.total_time:,.0f}",
            },
        ],
    )
    # ~2.6 presence slots of 16 bits per tag vs ~4.8 mixed slots with an
    # 80-bit single per tag: about a 3x airtime saving.
    assert ver.airtime < 0.35 * inv.total_time


@pytest.mark.benchmark(group="missing-tags")
def test_framing_gap(benchmark):
    def compute():
        qcd = verify(1000, 20, QCDDetector(8), seed=11)
        crc = verify(1000, 20, CRCCDDetector(id_bits=64), seed=11)
        return qcd, crc

    qcd, crc = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(
        "Verification airtime by framing (1000 tags, 20 missing)",
        [
            {"framing": "QCD-8", "airtime (µs)": f"{qcd.airtime:,.0f}"},
            {"framing": "CRC-CD", "airtime (µs)": f"{crc.airtime:,.0f}"},
        ],
    )
    assert crc.airtime / qcd.airtime == pytest.approx(6.0, rel=0.02)


@pytest.mark.benchmark(group="missing-tags")
def test_cost_scales_gently(benchmark):
    def compute():
        return {
            n: verify(n, max(1, n // 50), QCDDetector(8), seed=n).slots
            for n in (250, 1000, 4000)
        }

    slots = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(
        "Verification slots vs manifest size",
        [
            {"manifest": str(n), "slots": f"{s:,}", "slots/tag": f"{s / n:.2f}"}
            for n, s in slots.items()
        ],
    )
    # Near-linear: slots/tag stays in a narrow band as n grows 16x.
    ratios = [s / n for n, s in slots.items()]
    assert max(ratios) / min(ratios) < 1.5


@pytest.mark.benchmark(group="missing-tags")
def test_alien_certification(benchmark):
    """The dual problem: certify that *nothing extra* is on the pallet.
    Cost is logarithmic in the accepted risk and independent of whether
    aliens exist; detection of real aliens is geometric."""
    from repro.apps.unknown_tags import detect_unknown_tags, rounds_for_confidence

    def compute():
        clean = detect_unknown_tags(
            1000,
            0,
            QCDDetector(8),
            TimingModel(),
            np.random.default_rng(21),
            mode="certify",
            confidence=0.999,
        )
        dirty = detect_unknown_tags(
            1000,
            3,
            QCDDetector(8),
            TimingModel(),
            np.random.default_rng(22),
            mode="detect",
        )
        return clean, dirty

    clean, dirty = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(
        "Alien-tag verification (1000-tag manifest)",
        [
            {
                "scenario": "certify clean @ 99.9%",
                "rounds": str(clean.rounds),
                "airtime (µs)": f"{clean.airtime:,.0f}",
                "verdict": f"clean ({clean.clean_confidence:.3%})",
            },
            {
                "scenario": "3 aliens present",
                "rounds": str(dirty.rounds),
                "airtime (µs)": f"{dirty.airtime:,.0f}",
                "verdict": "alien detected" if dirty.alien_detected else "missed",
            },
        ],
    )
    assert not clean.alien_detected
    assert clean.rounds == rounds_for_confidence(0.999)
    assert dirty.alien_detected
    assert dirty.rounds < clean.rounds
