"""Table IV -- CRC-CD vs QCD computation/memory/transmission costs.

Paper claims: >100 instructions vs 1; O(l) vs O(1); 1 KB vs 16 bits;
96 bits vs 16 bits.  Our numbers are *measured* from the engines.
"""

from __future__ import annotations

from bench_util import show
from repro.experiments.tables import table4


def test_table4_measured(benchmark):
    rows = benchmark(table4)
    show("Table IV: CRC-CD vs QCD (measured)", rows)
    by_axis = {r["axis"]: r for r in rows}
    assert float(by_axis["# of instructions"]["CRC-CD"]) > 100
    assert float(by_axis["# of instructions"]["QCD"]) == 1
    assert by_axis["memory"]["CRC-CD"] == "1 KB"
    assert by_axis["memory"]["QCD"] == "16 bits"
    assert by_axis["transmission"]["CRC-CD"] == "96 bits"
    assert by_axis["transmission"]["QCD"] == "16 bits"


def test_crc_check_vs_qcd_check_wallclock(benchmark):
    """Micro-benchmark of the checks themselves: one CRC-CD classification
    of a 96-bit signal vs one QCD classification of a 16-bit preamble."""
    from repro.bits.rng import make_rng
    from repro.core.crc_cd import CRCCDDetector
    from repro.core.qcd import QCDDetector

    rng = make_rng(3)
    crc = CRCCDDetector(id_bits=64)
    qcd = QCDDetector(8)
    crc_signal = crc.contention_payload(0xDEADBEEF, rng)
    qcd_signal = qcd.contention_payload(0xDEADBEEF, rng)

    def both():
        crc.classify(crc_signal)
        qcd.classify(qcd_signal)

    benchmark(both)
