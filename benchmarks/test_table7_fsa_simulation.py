"""Table VII -- FSA slot distribution and throughput, cases I-IV.

Paper (100-round averages):

  case   #frames  idle    single  collided  throughput
  50        6       39*      50      110*      0.25
  500       7     1376      500      394       0.22
  5000      8    15217     5000     3962       0.20
  50000     8   164477    50000    39622       0.20

(*) Case I's idle/collided columns appear swapped in the paper -- the
fixed-frame process that reproduces cases II-IV to within a percent gives
~116 idle / ~41 collided (see DESIGN.md "known paper inconsistencies").
"""

from __future__ import annotations

import pytest

from bench_util import show
from repro.experiments.config import CASES, PAPER_TABLE7
from repro.experiments.tables import table7


@pytest.fixture(scope="module")
def rows(suite):
    return table7(suite)


def test_table7_regenerate(benchmark, suite, rows):
    benchmark.pedantic(
        lambda: suite.run("II", "fsa", "qcd-8"), rounds=1, iterations=1
    )
    show("Table VII: FSA simulation (ours vs paper)", rows)
    assert len(rows) == 4


@pytest.mark.parametrize("case", ["II", "III", "IV"])
def test_table7_counts_match_paper(benchmark, suite, case):
    agg = benchmark.pedantic(
        lambda: suite.run(case, "fsa", "qcd-8"), rounds=1, iterations=1
    )
    paper = PAPER_TABLE7[case]
    assert agg.single == paper["single"]
    assert agg.idle == pytest.approx(paper["idle"], rel=0.10)
    assert agg.collided == pytest.approx(paper["collided"], rel=0.10)
    assert agg.throughput == pytest.approx(paper["throughput"], abs=0.02)
    assert agg.frames == pytest.approx(paper["frames"], abs=1.0)


def test_table7_case1_with_swap(benchmark, suite):
    """Case I matches the paper once its idle/collided columns are read
    swapped."""
    agg = benchmark.pedantic(
        lambda: suite.run("I", "fsa", "qcd-8"), rounds=1, iterations=1
    )
    paper = PAPER_TABLE7["I"]
    assert agg.idle == pytest.approx(paper["collided"], rel=0.15)  # swapped
    assert agg.collided == pytest.approx(paper["idle"], rel=0.15)  # swapped
    assert agg.throughput == pytest.approx(paper["throughput"], abs=0.02)


def test_table7_throughput_below_lemma1_bound(benchmark, suite):
    """Section VI-C: measured throughput sits below the 0.37 optimum
    because the frame sizes are not optimal (ℱ = 0.6·n)."""
    import math

    aggs = benchmark.pedantic(
        lambda: [suite.run(c, "fsa", "qcd-8") for c in CASES],
        rounds=1,
        iterations=1,
    )
    for agg in aggs:
        assert agg.throughput < 1 / math.e
