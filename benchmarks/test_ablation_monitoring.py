"""Ablation -- continuous monitoring: where adaptive protocols pay off.

The paper's Section II highlights ABS/AQS for eliminating "unnecessary
cycles" across repeated inventories.  This bench quantifies it: steady-
state slots per round for memoryless vs adaptive protocols under light
churn, composed with QCD (overhead slots cheap) and CRC-CD.
"""

from __future__ import annotations

import pytest

from bench_util import show
from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector
from repro.protocols.abs_protocol import AdaptiveBinarySplitting
from repro.protocols.aqs import AdaptiveQuerySplitting
from repro.protocols.bt import BinaryTree
from repro.protocols.qt import QueryTree
from repro.sim.monitoring import ContinuousMonitor
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation

N, ROUNDS, CHURN = 60, 6, 3


def run_monitor(protocol_factory, detector, seed=21):
    monitor = ContinuousMonitor(
        Reader(detector), protocol_factory(), rng=make_rng(seed)
    )
    pop = TagPopulation(N, id_bits=64, rng=make_rng(seed + 500))
    return monitor.run(pop, rounds=ROUNDS, churn=CHURN)


@pytest.mark.benchmark(group="monitoring")
def test_adaptive_vs_memoryless_steady_state(benchmark):
    def compute():
        out = {}
        for name, factory in (
            ("BT", BinaryTree),
            ("ABS", AdaptiveBinarySplitting),
            ("QT", QueryTree),
            ("AQS", AdaptiveQuerySplitting),
        ):
            result = run_monitor(factory, QCDDetector(8))
            steady = result.steady_state()
            out[name] = (
                sum(r.slots for r in steady) / len(steady),
                sum(r.collided for r in steady) / len(steady),
                sum(r.time for r in steady) / len(steady),
            )
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        {
            "protocol": name,
            "slots/round": f"{s:.0f}",
            "collisions/round": f"{c:.1f}",
            "time/round (µs)": f"{t:,.0f}",
        }
        for name, (s, c, t) in results.items()
    ]
    show(
        f"Steady-state monitoring, n={N}, churn={CHURN}/round, QCD-8",
        rows,
    )
    # Adaptive variants beat their memoryless ancestors decisively.
    assert results["ABS"][0] < 0.6 * results["BT"][0]
    assert results["AQS"][0] < 0.6 * results["QT"][0]
    # And their residual collisions scale with churn, not population.
    assert results["ABS"][1] <= 4 * CHURN


@pytest.mark.benchmark(group="monitoring")
def test_monitoring_composes_with_detectors(benchmark):
    def compute():
        qcd = run_monitor(AdaptiveBinarySplitting, QCDDetector(8), seed=31)
        crc = run_monitor(
            AdaptiveBinarySplitting, CRCCDDetector(id_bits=64), seed=31
        )
        return qcd.total_time, crc.total_time

    t_qcd, t_crc = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(
        "Monitoring total time: QCD vs CRC-CD over ABS",
        [
            {"scheme": "QCD-8", "total (µs)": f"{t_qcd:,.0f}"},
            {"scheme": "CRC-CD", "total (µs)": f"{t_crc:,.0f}"},
        ],
    )
    # ABS steady state is almost all single slots, where QCD's edge is
    # smallest -- yet it still wins.
    assert t_qcd < t_crc
