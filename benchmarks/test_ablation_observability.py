"""Ablation -- cost of the repro.obs instrumentation on the exact reader.

The observability hooks in the hot slot loop must be near-free when
:mod:`repro.obs` is disabled: per slot they amount to one attribute load
and a falsy branch.  To quantify that, this module freezes a replica of
the *seed's* uninstrumented slot loop as the baseline, checks it still
produces the identical trace (so the comparison is apples-to-apples),
and asserts the disabled-mode overhead stays under 5%.

Enabled mode is timed too (informational -- tracing every slot is
allowed to cost real time) and its counters are asserted against the
``slot_counts`` trace ground truth.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.bits.rng import make_rng
from repro.core.detector import SlotType
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.metrics import InventoryStats, slot_counts
from repro.sim.reader import InventoryResult, Reader, record_effective
from repro.sim.trace import SlotRecord
from repro.tags.population import TagPopulation

N = 600
FRAME = 256
SEED = 2010
ROUNDS = 10


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def baseline_inventory(reader, tags, protocol) -> InventoryResult:
    """The seed's slot loop, frozen without any observability hooks.

    Byte-for-byte the pre-instrumentation ``Reader._run``/``_run_slot``
    logic; :func:`test_disabled_overhead_under_5_percent` asserts it
    still produces the identical trace before trusting the timing.
    """
    detector = reader.detector
    detector.reset_instrumentation()
    trace: list[SlotRecord] = []
    identified: list[int] = []
    lost: list[int] = []
    now = 0.0
    protocol.start(tags)
    index = 0
    while not protocol.finished:
        if index >= reader.max_slots:
            raise RuntimeError("inventory exceeded max_slots")
        responders = protocol.responders()
        payloads = [
            detector.contention_payload(t.tag_id, t.rng) for t in responders
        ]
        signal = reader.channel.transmit(payloads)
        if isinstance(detector, IdealDetector):
            sole = responders[0].tag_id if len(responders) == 1 else None
            detector.observe_transmitters(len(responders), sole)
        outcome = detector.classify(signal)
        if len(responders) == 0:
            true_type = SlotType.IDLE
        elif len(responders) == 1:
            true_type = SlotType.SINGLE
        else:
            true_type = SlotType.COLLIDED
        detected = outcome.slot_type
        duration = reader.timing.slot_duration(detector, detected)
        now += duration
        identified_tag = None
        lost_count = 0
        captured_idx = reader.channel.last_capture_index
        captured = (
            captured_idx is not None
            and true_type is SlotType.COLLIDED
            and detected is SlotType.SINGLE
        )
        if captured:
            tag = responders[captured_idx]
            tag.mark_identified(now)
            identified.append(tag.tag_id)
            identified_tag = tag.tag_id
        elif detected is SlotType.SINGLE:
            if true_type is SlotType.SINGLE:
                tag = responders[0]
                tag.mark_identified(now)
                identified.append(tag.tag_id)
                identified_tag = tag.tag_id
            elif reader.policy == "lost":
                for tag in responders:
                    tag.identified = True
                    tag.lost = True
                    lost.append(tag.tag_id)
                lost_count = len(responders)
        record = SlotRecord(
            index=index,
            frame=max(1, protocol.frames_started),
            n_responders=len(responders),
            true_type=true_type,
            detected_type=detected,
            duration=duration,
            end_time=now,
            identified_tag=identified_tag,
            lost_tags=lost_count,
            captured=captured,
        )
        trace.append(record)
        protocol.feedback(record_effective(record, reader.policy), responders)
        index += 1
    stats = InventoryStats.from_trace(
        trace,
        n_tags=len(tags),
        frames=protocol.frames_started,
        id_bits=reader.timing.id_bits,
        tau=reader.timing.tau,
    )
    return InventoryResult(
        trace=trace, stats=stats, identified_ids=identified, lost_ids=lost
    )


def _fresh_workload():
    pop = TagPopulation(N, rng=make_rng(SEED))
    return pop.tags, FramedSlottedAloha(FRAME)


def _time_one(runner) -> float:
    tags, protocol = _fresh_workload()
    start = time.perf_counter()
    runner(tags, protocol)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="obs-overhead")
def test_disabled_overhead_under_5_percent(benchmark):
    """With obs disabled the instrumented loop must match the seed loop:
    identical trace, and within 5% of its wall time (min-of-N)."""
    reader = Reader(QCDDetector(8), TimingModel())
    assert not obs.is_enabled()

    tags, protocol = _fresh_workload()
    expected = baseline_inventory(reader, tags, protocol)
    tags, protocol = _fresh_workload()
    got = reader.run_inventory(tags, protocol)
    assert got.trace == expected.trace  # same process, fair timing

    baseline = lambda t, p: baseline_inventory(reader, t, p)  # noqa: E731
    _time_one(baseline)  # warm both paths
    _time_one(reader.run_inventory)

    # Interleave the two loops so clock drift hits both equally; min-of-N
    # discards scheduler noise (noise only ever inflates a sample).
    base_min = inst_min = float("inf")
    for _ in range(ROUNDS):
        base_min = min(base_min, _time_one(baseline))
        inst_min = min(inst_min, _time_one(reader.run_inventory))

    def setup():
        return _fresh_workload(), {}

    benchmark.pedantic(
        reader.run_inventory, setup=setup, rounds=3, iterations=1
    )
    overhead = inst_min / base_min - 1.0
    benchmark.extra_info["baseline_min_s"] = base_min
    benchmark.extra_info["overhead_fraction"] = overhead
    assert overhead < 0.05, (
        f"disabled-obs overhead {overhead:.1%} "
        f"(instrumented {inst_min:.4f}s vs seed {base_min:.4f}s)"
    )


@pytest.mark.benchmark(group="obs-overhead")
def test_enabled_counters_match_ground_truth(benchmark):
    """Enabled mode: timed for the record, counters asserted exact."""
    reader = Reader(QCDDetector(8), TimingModel())
    obs.enable()

    def setup():
        obs.reset()  # keep counters at exactly one run's worth
        return _fresh_workload(), {}

    result = benchmark.pedantic(
        reader.run_inventory, setup=setup, rounds=3, iterations=1
    )
    truth = slot_counts(result.trace)
    got = {k: int(v) for k, v in obs.slot_totals(by="true_type").items() if v}
    want = {
        "IDLE": truth.idle,
        "SINGLE": truth.single,
        "COLLIDED": truth.collided,
    }
    assert got == {k: v for k, v in want.items() if v}
    registry = obs.STATE.registry
    from repro.obs import instruments as inst

    assert registry.get(inst.IDENTIFIED).value == len(result.identified_ids)
    assert registry.get(inst.FRAMES).labels(engine="reader").value == (
        result.stats.frames
    )
