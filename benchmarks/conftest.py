"""Shared fixtures for the reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper,
prints it (run pytest with ``-s`` to see the tables), asserts its *shape*
against the published numbers, and times the underlying computation via
pytest-benchmark.

The Monte-Carlo suite is session-scoped and memoized, so grid points shared
between tables are simulated once.  ``--benchmark-only`` works: every test
here uses the benchmark fixture.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from bench_util import BENCH_ROUNDS, BENCH_SEED  # noqa: E402

from repro.experiments.runner import ExperimentSuite  # noqa: E402


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    return ExperimentSuite(rounds=BENCH_ROUNDS, seed=BENCH_SEED)
