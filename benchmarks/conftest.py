"""Shared fixtures for the reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper,
prints it (run pytest with ``-s`` to see the tables), asserts its *shape*
against the published numbers, and times the underlying computation via
pytest-benchmark.

The Monte-Carlo suite is session-scoped and memoized, so grid points shared
between tables are simulated once.  ``--benchmark-only`` works: every test
here uses the benchmark fixture.

The shared suite honours the runner's execution knobs via environment
variables (mirroring the CLI's ``--workers`` / ``--cache-dir`` /
``--no-cache``):

* ``REPRO_BENCH_WORKERS=N``    -- shard rounds across N processes;
* ``REPRO_BENCH_CACHE_DIR=DIR``-- reuse grid points across bench runs;
* ``REPRO_BENCH_NO_CACHE=1``   -- ignore the cache dir for this run.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from bench_util import BENCH_ROUNDS, BENCH_SEED  # noqa: E402

from repro.experiments.runner import ExperimentSuite  # noqa: E402


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    cache_dir: str | None = os.environ.get("REPRO_BENCH_CACHE_DIR") or None
    if os.environ.get("REPRO_BENCH_NO_CACHE"):
        cache_dir = None
    suite = ExperimentSuite(
        rounds=BENCH_ROUNDS,
        seed=BENCH_SEED,
        workers=workers,
        cache_dir=cache_dir,
    )
    yield suite
    suite.close()
