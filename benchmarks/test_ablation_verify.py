"""Ablation -- cost of the engine invariant checker on the exact reader.

Mirrors ``test_ablation_observability``: the invariant hooks in
``Reader._run_slot``/``Reader._run`` are one attribute load and a falsy
branch per slot when :mod:`repro.verify.invariants` is disabled, so the
instrumented loop must stay within 5% of the frozen seed loop (which has
neither obs nor invariant hooks).  Enabled mode is timed informationally
-- re-deriving slot durations and re-decoding QCD preambles every slot
is allowed to cost real time -- and asserted clean on a healthy run.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.sim.reader import Reader
from repro.verify import invariants
from test_ablation_observability import N, ROUNDS, _fresh_workload, baseline_inventory


@pytest.fixture(autouse=True)
def clean_state():
    obs.disable()
    obs.reset()
    invariants.disable()
    invariants.reset()
    yield
    obs.disable()
    obs.reset()
    invariants.disable()
    invariants.reset()


def _time_one(runner) -> float:
    tags, protocol = _fresh_workload()
    start = time.perf_counter()
    runner(tags, protocol)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="verify-overhead")
def test_disabled_invariants_overhead_under_5_percent(benchmark):
    """Invariants off (the default): the full instrumented loop -- obs
    hooks AND invariant hooks, both disabled -- within 5% of the seed
    loop, on the identical trace."""
    reader = Reader(QCDDetector(8), TimingModel())
    assert not invariants.is_enabled()

    tags, protocol = _fresh_workload()
    expected = baseline_inventory(reader, tags, protocol)
    tags, protocol = _fresh_workload()
    got = reader.run_inventory(tags, protocol)
    assert got.trace == expected.trace

    baseline = lambda t, p: baseline_inventory(reader, t, p)  # noqa: E731
    _time_one(baseline)  # warm both paths
    _time_one(reader.run_inventory)

    base_min = inst_min = float("inf")
    for _ in range(ROUNDS):
        base_min = min(base_min, _time_one(baseline))
        inst_min = min(inst_min, _time_one(reader.run_inventory))

    def setup():
        return _fresh_workload(), {}

    benchmark.pedantic(
        reader.run_inventory, setup=setup, rounds=3, iterations=1
    )
    overhead = inst_min / base_min - 1.0
    benchmark.extra_info["baseline_min_s"] = base_min
    benchmark.extra_info["overhead_fraction"] = overhead
    assert overhead < 0.05, (
        f"disabled-invariants overhead {overhead:.1%} "
        f"(instrumented {inst_min:.4f}s vs seed {base_min:.4f}s)"
    )


@pytest.mark.benchmark(group="verify-overhead")
def test_enabled_invariants_clean_on_healthy_run(benchmark):
    """Strict checking armed: a healthy inventory raises nothing, records
    nothing, and still identifies every tag.  Timed for the record."""
    reader = Reader(QCDDetector(8), TimingModel())

    def setup():
        invariants.reset()
        return _fresh_workload(), {}

    def run(tags, protocol):
        with invariants.checking(strict=True):
            return reader.run_inventory(tags, protocol)

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert invariants.STATE.violations == []
    assert len(result.identified_ids) == N
