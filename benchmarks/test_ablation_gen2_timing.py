"""Ablation -- does QCD's win survive realistic Gen2 link timing?

The paper charges airtime as τ per bit with no framing.  This bench
re-runs the core comparison under :class:`Gen2TimingModel` (Tari, BLF,
turnarounds, idle timeouts) and sweeps the assumptions that matter:

* with the paper's "commands are the same in both schemes" assumption
  (one-phase singles also pay a closing ACK) QCD keeps a clear win;
* drop that assumption and the forward-link ACK of QCD's second phase
  eats most of the preamble savings -- the practical caveat a bit-count
  model cannot show;
* idle slots end at the T3 timeout, so the *time-optimal* frame under
  QCD/Gen2 sits above Lemma 1's ℱ = n.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import show
from repro.analysis.ei import measured_ei
from repro.analysis.optimal_frame import SlotCosts, optimal_frame_size
from repro.core.crc_cd import CRCCDDetector
from repro.core.gen2_timing import Gen2TimingModel
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.sim.fast import fsa_fast

N, F = 500, 300


def mean_time(detector, timing, rounds=10, seed=0):
    runs = [
        fsa_fast(N, F, detector, timing, np.random.default_rng(seed + r))
        for r in range(rounds)
    ]
    return sum(s.total_time for s in runs) / rounds


@pytest.mark.benchmark(group="gen2")
def test_gen2_ei_with_paper_assumption(benchmark):
    def compute():
        g2 = Gen2TimingModel()  # ack_one_phase=True (paper's assumption)
        t_crc = mean_time(CRCCDDetector(id_bits=64), g2)
        t_qcd = mean_time(QCDDetector(8), g2)
        paper_model = TimingModel()
        t_crc_p = mean_time(CRCCDDetector(id_bits=64), paper_model)
        t_qcd_p = mean_time(QCDDetector(8), paper_model)
        return (
            measured_ei(t_crc, t_qcd),
            measured_ei(t_crc_p, t_qcd_p),
            t_crc,
            t_qcd,
        )

    ei_gen2, ei_paper, t_crc, t_qcd = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    show(
        "Gen2 timing: EI of QCD-8 over CRC-CD (case II)",
        [
            {"model": "paper (τ per bit)", "EI": f"{ei_paper:.3f}"},
            {
                "model": "Gen2 link timing",
                "EI": f"{ei_gen2:.3f}",
                "CRC-CD (µs)": f"{t_crc:,.0f}",
                "QCD (µs)": f"{t_qcd:,.0f}",
            },
        ],
    )
    # The win survives but is heavily attenuated (~0.69 -> ~0.18):
    # turnarounds and reader commands dominate short slots.
    assert ei_gen2 > 0.10
    assert ei_gen2 < ei_paper


@pytest.mark.benchmark(group="gen2")
def test_gen2_ack_assumption_sensitivity(benchmark):
    def compute():
        with_ack = Gen2TimingModel(ack_one_phase=True)
        without = Gen2TimingModel(ack_one_phase=False)
        out = {}
        for name, timing in (("same-commands", with_ack), ("no baseline ACK", without)):
            t_crc = mean_time(CRCCDDetector(id_bits=64), timing, seed=40)
            t_qcd = mean_time(QCDDetector(8), timing, seed=40)
            out[name] = measured_ei(t_crc, t_qcd)
        return out

    eis = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(
        "Gen2 timing: sensitivity to the closing-ACK assumption",
        [{"assumption": k, "EI": f"{v:.3f}"} for k, v in eis.items()],
    )
    assert eis["same-commands"] > eis["no baseline ACK"]
    # Without the assumption the advantage (nearly) vanishes at this
    # operating point -- the honest caveat.
    assert eis["no baseline ACK"] < 0.15


@pytest.mark.benchmark(group="gen2")
def test_gen2_time_optimal_frame_above_n(benchmark):
    def compute():
        g2 = Gen2TimingModel()
        rows = []
        for n in (50, 100, 200):
            costs = SlotCosts.from_timing(QCDDetector(8), g2)
            f_opt = optimal_frame_size(n, costs)
            rows.append({"n": n, "f_opt": f_opt})
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(
        "Gen2 timing: time-optimal QCD frame size vs Lemma 1's ℱ = n",
        [
            {"n": str(r["n"]), "time-optimal ℱ": str(r["f_opt"]), "Lemma 1": str(r["n"])}
            for r in rows
        ],
    )
    for r in rows:
        assert r["f_opt"] > r["n"]  # cheap idles shift the optimum up
