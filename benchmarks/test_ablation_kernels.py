"""Ablation -- exact object-level reader vs vectorized kernels.

Quantifies the optimization the HPC guides prescribe: same stochastic
process, bit-level simulation vs numpy aggregation.  The kernels must win
by a wide margin at n = 1000 (they are what makes the 50 000-tag cases
tractable) while agreeing on the statistics (agreement is asserted in
tests/sim/test_fast.py; here we measure speed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bits.rng import make_rng
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.bt import BinaryTree
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.fast import bt_fast, fsa_fast
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation

N = 1000


@pytest.mark.benchmark(group="fsa-kernel")
def test_exact_reader_fsa(benchmark):
    def run():
        pop = TagPopulation(N, rng=make_rng(1))
        return Reader(QCDDetector(8), TimingModel()).run_inventory(
            pop.tags, FramedSlottedAloha(600)
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.stats.true_counts.single == N


@pytest.mark.benchmark(group="fsa-kernel")
def test_vectorized_kernel_fsa(benchmark):
    def run():
        return fsa_fast(
            N, 600, QCDDetector(8), TimingModel(), np.random.default_rng(1)
        )

    stats = benchmark.pedantic(run, rounds=20, iterations=1)
    assert stats.true_counts.single == N


@pytest.mark.benchmark(group="bt-kernel")
def test_exact_reader_bt(benchmark):
    def run():
        pop = TagPopulation(N, rng=make_rng(2))
        return Reader(QCDDetector(8), TimingModel()).run_inventory(
            pop.tags, BinaryTree()
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.stats.true_counts.single == N


@pytest.mark.benchmark(group="bt-kernel")
def test_vectorized_kernel_bt(benchmark):
    def run():
        return bt_fast(N, QCDDetector(8), TimingModel(), np.random.default_rng(2))

    stats = benchmark.pedantic(run, rounds=20, iterations=1)
    assert stats.true_counts.single == N


@pytest.mark.benchmark(group="scale")
def test_kernel_case_iv_scale(benchmark):
    """One full 50 000-tag FSA inventory -- the paper's case IV -- in a
    single kernel call."""

    def run():
        return fsa_fast(
            50_000,
            30_000,
            QCDDetector(8),
            TimingModel(),
            np.random.default_rng(3),
        )

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.true_counts.single == 50_000
