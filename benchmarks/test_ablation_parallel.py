"""Ablation -- scaling of the parallel Monte-Carlo executor.

The tentpole claim of the parallel runner is twofold:

1. **bit-identical results** -- sharding a grid point's pre-spawned seed
   children across a process pool changes nothing about the aggregate
   (asserted unconditionally, on any machine);
2. **wall-clock scaling** -- on a machine with >= 4 usable cores, the
   case-III FSA × QCD-8 grid point must run >= 1.5x faster with 4
   workers than serially, taking the median of three trials per
   configuration so one noisy neighbour cannot flip the verdict
   (asserted only when the cores exist; single-core CI boxes print the
   measurement and skip the speedup assertion).

A third section measures the warm-cache path: with an on-disk cache
primed, re-running the grid point must perform zero kernel invocations.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict

import pytest

from bench_util import BENCH_SEED, show
from repro.experiments.runner import ExperimentSuite

CASE, PROTOCOL, SCHEME = "III", "fsa", "qcd-8"
#: Enough rounds that each 4-worker shard carries real work (case III is
#: ~2 ms/round), so the pool's fork/IPC overhead cannot dominate.
ROUNDS = 64
WORKERS = 4
#: Median-of-N trials per configuration: shared CI runners routinely
#: steal a core for one trial; the median discards that outlier.
TRIALS = 3
#: Ideal scaling at 4 workers is 4x; 2x proved flaky on oversubscribed
#: runners, and 1.5x still rules out a serialised (broken) pool.
MIN_SPEEDUP = 1.5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _timed_run(workers: int) -> tuple[float, object]:
    with ExperimentSuite(
        rounds=ROUNDS, seed=BENCH_SEED, workers=workers
    ) as suite:
        if workers > 1:
            # Pay pool startup before the clock starts; steady-state
            # throughput is what the ablation compares.
            suite._executor._ensure_pool()
        start = time.perf_counter()
        agg = suite.run(CASE, PROTOCOL, SCHEME)
        elapsed = time.perf_counter() - start
    return elapsed, agg


def _median_run(workers: int) -> tuple[float, object]:
    trials = [_timed_run(workers) for _ in range(TRIALS)]
    times = sorted(t for t, _ in trials)
    return times[len(times) // 2], trials[0][1]


@pytest.mark.benchmark(group="parallel-scaling")
def test_parallel_speedup_and_bit_identity(benchmark):
    serial_s, serial = _median_run(1)
    parallel_s, parallel = _median_run(WORKERS)
    speedup = serial_s / parallel_s

    show(
        f"Parallel ablation: case {CASE} {PROTOCOL}×{SCHEME}, "
        f"{ROUNDS} rounds, median of {TRIALS} trials",
        [
            {
                "workers": "1",
                "wall s": f"{serial_s:.3f}",
                "speedup": "1.00x",
            },
            {
                "workers": str(WORKERS),
                "wall s": f"{parallel_s:.3f}",
                "speedup": f"{speedup:.2f}x",
            },
        ],
    )

    # Bit-identity holds on any machine, loaded or not.
    assert asdict(parallel) == asdict(serial)

    benchmark.pedantic(
        lambda: _timed_run(WORKERS), rounds=1, iterations=1
    )
    benchmark.extra_info["serial_s"] = serial_s
    benchmark.extra_info["parallel_s"] = parallel_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["trials"] = TRIALS

    cpus = _usable_cpus()
    if cpus < WORKERS:
        pytest.skip(
            f"speedup assertion needs >= {WORKERS} usable cores, "
            f"have {cpus} (measured {speedup:.2f}x)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x at {WORKERS} workers, got "
        f"{speedup:.2f}x (median serial {serial_s:.3f}s vs median "
        f"parallel {parallel_s:.3f}s over {TRIALS} trials)"
    )


@pytest.mark.benchmark(group="parallel-scaling")
def test_warm_cache_skips_all_kernels(benchmark, tmp_path, monkeypatch):
    with ExperimentSuite(
        rounds=8, seed=BENCH_SEED, cache_dir=tmp_path
    ) as suite:
        cold = suite.run(CASE, PROTOCOL, SCHEME)

    from repro.experiments import parallel as par

    def boom(*args, **kwargs):
        raise AssertionError("kernel invoked despite warm cache")

    monkeypatch.setattr(par, "fsa_fast", boom)
    monkeypatch.setattr(par, "bt_fast", boom)

    def warm_run():
        with ExperimentSuite(
            rounds=8, seed=BENCH_SEED, cache_dir=tmp_path
        ) as suite:
            return suite.run(CASE, PROTOCOL, SCHEME)

    warm = benchmark.pedantic(warm_run, rounds=3, iterations=1)
    assert asdict(warm) == asdict(cold)
