"""Entropy-based privacy metric (paper Section II, ref [5]).

Lim et al. score backward-channel defenses by the eavesdropper's residual
uncertainty about the tag ID.  We implement that metric over the inference
dictionaries produced by :mod:`repro.security.backward`:

* each ID bit the eavesdropper has pinned contributes 0 bits of entropy;
* each unknown bit contributes its conditional entropy (1 bit when the
  posterior is uniform, less when observations skew it).

``eavesdropper_entropy`` assumes the attacker's per-bit posterior is
either resolved or uniform -- exact for pseudo-ID mixing, where a mixed 1
leaves P(bit = 1) = P(1)·1 / (P(1) + P(0)·P(pseudo=1)) ... computable, so
we expose the exact posterior variant too via ``posterior_one``.
"""

from __future__ import annotations

import math

from repro.bits.bitvec import BitVector

__all__ = ["bit_leakage", "eavesdropper_entropy", "posterior_one"]


def bit_leakage(id_length: int, known_bits: dict[int, int]) -> float:
    """Fraction of ID bits the eavesdropper has resolved."""
    if id_length <= 0:
        raise ValueError("id_length must be positive")
    if any(not 0 <= k < id_length for k in known_bits):
        raise ValueError("known bit index out of range")
    return len(known_bits) / id_length


def posterior_one(p_prior_one: float, p_mask_one: float) -> float:
    """P(id bit = 1 | mixed bit = 1) for pseudo-ID mixing.

    The mixed bit is 1 iff the ID bit is 1 or the pseudo bit is 1::

        P(b=1 | mix=1) = p / (p + (1-p)·q)

    with ``p`` the prior on the ID bit and ``q = P(pseudo=1)``.
    """
    if not 0.0 <= p_prior_one <= 1.0 or not 0.0 < p_mask_one <= 1.0:
        raise ValueError("probabilities out of range")
    denom = p_prior_one + (1.0 - p_prior_one) * p_mask_one
    return p_prior_one / denom if denom else 0.0


def _h(p: float) -> float:
    """Binary entropy in bits."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


def eavesdropper_entropy(
    tag_id: BitVector,
    known_bits: dict[int, int],
    p_prior_one: float = 0.5,
    p_mask_one: float | None = None,
) -> float:
    """Residual entropy (bits) about ``tag_id`` given the attacker's
    resolved positions.

    Unresolved positions contribute the binary entropy of the attacker's
    posterior: the prior by default, or the mixed-bit posterior when
    ``p_mask_one`` is given (pseudo-ID mixing, where an unresolved
    position means the attacker observed a 1).
    """
    residual = 0.0
    for k in range(tag_id.length):
        if k in known_bits:
            continue
        if p_mask_one is None:
            residual += _h(p_prior_one)
        else:
            residual += _h(posterior_one(p_prior_one, p_mask_one))
    return residual
