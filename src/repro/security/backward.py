"""Backward-channel protection schemes (paper Section II, refs [5][6]).

The forward channel (reader -> tags) is much stronger than the backward
channel (tags -> reader), so a distant eavesdropper hears the reader's
queries but not the tags' replies.  Two constructions exploit this
asymmetry together with the Boolean-sum overlap model:

* **Pseudo-ID mixing** (Choi & Roh): the reader generates a random
  pseudo-ID and has its own trusted device transmit it *concurrently* with
  the tag, so the air carries ``id ∨ pseudo``.  Knowing ``pseudo``, the
  reader recovers every ID bit where the pseudo bit is 0; an eavesdropper
  without it learns only those positions where the mix is 0 (both must be
  0 there).
* **Randomized bit encoding** (Lim, Li & Yeo): each ID bit is expanded to
  a k-bit codeword chosen at random among the codewords of matching
  parity; the reader checks parity per group, while an eavesdropper
  watching one reply learns nothing deterministic and suffers the
  "same-bit problem" only statistically.

Leakage of both schemes is quantified in :mod:`repro.security.entropy`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.bitvec import BitVector
from repro.bits.rng import RngStream

__all__ = ["PseudoIdMixer", "RandomizedBitEncoder"]


@dataclass
class PseudoIdMixer:
    """Pseudo-ID backward-channel protection.

    The reader draws ``pseudo`` and observes ``mixed = id ∨ pseudo``.
    Recovery: where ``pseudo`` has a 0, the mixed bit *is* the ID bit;
    where ``pseudo`` has a 1, the mixed bit is 1 regardless, and the
    reader must query again with a fresh pseudo-ID to pin those positions
    down.  ``rounds_to_recover`` returns how many mixes a reader needs on
    average to learn every bit (a geometric race on each position).
    """

    rng: RngStream

    def draw_pseudo(self, length: int) -> BitVector:
        return BitVector.random(length, self.rng.generator)

    @staticmethod
    def mix(tag_id: BitVector, pseudo: BitVector) -> BitVector:
        """What the air carries: the Boolean sum of tag and pseudo."""
        return tag_id | pseudo

    @staticmethod
    def recover_known(mixed: BitVector, pseudo: BitVector) -> dict[int, int]:
        """Reader-side recovery: bit position -> value, for every position
        whose pseudo bit is 0 (the others stay ambiguous this round)."""
        out: dict[int, int] = {}
        for k in range(mixed.length):
            if pseudo.bit(k) == 0:
                out[k] = mixed.bit(k)
        return out

    @staticmethod
    def eavesdrop(mixed: BitVector) -> dict[int, int]:
        """Eavesdropper inference without the pseudo-ID: a 0 in the mix
        proves the ID bit is 0; a 1 is uninformative (could be either)."""
        return {
            k: 0 for k in range(mixed.length) if mixed.bit(k) == 0
        }

    def recover_id(self, tag_id: BitVector, max_rounds: int = 256) -> tuple[BitVector, int]:
        """Run mixing rounds until every bit is pinned; returns the
        recovered ID and the number of rounds used."""
        known: dict[int, int] = {}
        rounds = 0
        while len(known) < tag_id.length:
            if rounds >= max_rounds:
                raise RuntimeError("pseudo-ID recovery did not converge")
            pseudo = self.draw_pseudo(tag_id.length)
            mixed = self.mix(tag_id, pseudo)
            known.update(self.recover_known(mixed, pseudo))
            rounds += 1
        bits = [known[k] for k in range(tag_id.length)]
        return BitVector.from_bits(bits), rounds


@dataclass
class RandomizedBitEncoder:
    """Randomized bit encoding with k-bit parity codewords.

    Each ID bit ``b`` becomes a uniformly random k-bit word of parity
    ``b`` (k even would make parity-0 words include the zero word; any
    k >= 2 works).  Decoding is the XOR-parity of each group -- robust to
    which codeword was drawn, so the tag can re-randomize every reply.
    """

    expansion: int
    rng: RngStream

    def __post_init__(self) -> None:
        if self.expansion < 2:
            raise ValueError("expansion factor must be >= 2")

    def encode(self, tag_id: BitVector) -> BitVector:
        words = []
        for bit in tag_id:
            word = int(self.rng.integers(0, 1 << self.expansion))
            if (word.bit_count() & 1) != bit:
                word ^= 1  # flip the last bit to fix the parity
            words.append(BitVector(word, self.expansion))
        out = words[0]
        for w in words[1:]:
            out = out + w
        return out

    def decode(self, encoded: BitVector) -> BitVector:
        if encoded.length % self.expansion:
            raise ValueError("encoded length is not a codeword multiple")
        bits = []
        for i in range(0, encoded.length, self.expansion):
            group = encoded[i : i + self.expansion]
            bits.append(group.popcount() & 1)
        return BitVector.from_bits(bits)
