"""Boolean-sum security extensions (paper Section II, related work).

The same signal-overlap model QCD exploits underpins a line of RFID
privacy work the paper surveys; we implement the three constructions it
cites so the substrate is exercised beyond collision detection:

* :mod:`repro.security.blocker` -- the malicious always-responder that
  stalls Query-Tree readers, and Juels-Rivest-Szydlo *blocker tags* that
  weaponize it to shield a privacy zone of IDs;
* :mod:`repro.security.backward` -- randomized bit encoding (Lim et al.)
  and pseudo-ID mixing (Choi & Roh) for backward-channel protection;
* :mod:`repro.security.entropy` -- the entropy-based leakage metric used
  to score those defenses.
"""

from repro.security.backward import PseudoIdMixer, RandomizedBitEncoder
from repro.security.blocker import BlockerTag, MaliciousTag
from repro.security.entropy import bit_leakage, eavesdropper_entropy

__all__ = [
    "MaliciousTag",
    "BlockerTag",
    "RandomizedBitEncoder",
    "PseudoIdMixer",
    "bit_leakage",
    "eavesdropper_entropy",
]
