"""Malicious and blocker tags (paper Section II).

A Query-Tree reader walks the ID tree guided by collisions.  A *malicious*
tag that answers **every** prefix makes every probe collide, so the reader
descends the complete binary tree of depth l_id and "fails to identify any
tag".  Juels, Rivest & Szydlo turned this into a privacy feature: a
*blocker tag* answers only under a designated privacy-zone prefix, forcing
the reader to enumerate that subtree (hiding which consumer items are
present) while leaving the rest of the ID space readable.

Both are ordinary :class:`~repro.tags.tag.Tag` objects overriding
:meth:`~repro.tags.tag.Tag.responds_to_prefix`, so every protocol in
:mod:`repro.protocols` can face them unchanged.  Use ``QueryTree`` with a
``max_slots`` bound when simulating them -- that is precisely the
starvation behaviour under test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.bitvec import BitVector
from repro.tags.tag import Tag

__all__ = ["MaliciousTag", "BlockerTag"]


@dataclass
class MaliciousTag(Tag):
    """Answers every Query-Tree probe: universal jamming.

    Its "ID" is never legitimately readable; the reader sees a collision on
    every prefix, including full-length ones.
    """

    def responds_to_prefix(self, prefix: BitVector) -> bool:
        return True

    def mark_identified(self, at_time: float) -> None:
        """A jammer never retires: even when the reader believes it read an
        ID (a phantom single slot), the device keeps answering."""

    def __hash__(self) -> int:
        return id(self)


@dataclass
class BlockerTag(Tag):
    """Selective blocker: jams only prefixes inside the privacy zone.

    Parameters
    ----------
    privacy_prefix:
        The zone being shielded; the blocker answers any probe that is a
        prefix of -- or extends -- this zone, simulating both subtree
        branches simultaneously.
    """

    privacy_prefix: BitVector = BitVector(1, 1)

    def responds_to_prefix(self, prefix: BitVector) -> bool:
        zone = self.privacy_prefix
        if prefix.length <= zone.length:
            # Probe above/at the zone root: respond iff the zone lies
            # under this probe.
            return zone.startswith(prefix) if prefix.length else True
        # Probe below the zone root: respond iff the probe is inside the
        # zone (simulate every leaf of the protected subtree).
        return prefix.startswith(zone)

    def mark_identified(self, at_time: float) -> None:
        """Blockers never retire (see :class:`MaliciousTag`)."""

    def __hash__(self) -> int:
        return id(self)
