"""Plain-text rendering for experiment tables."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table"]


def render_table(
    rows: Sequence[Mapping[str, str]], title: str | None = None
) -> str:
    """Render row dicts as an aligned ASCII table.

    Column order follows the first row's key order (dicts preserve
    insertion order); missing cells render empty.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    sep = "-+-".join("-" * widths[c] for c in columns)
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, sep])
    for row in rows:
        lines.append(
            " | ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)
