"""Beyond-the-paper studies, exposed as CLI experiments.

Each generator mirrors one of the ablation/extension benchmarks
(`benchmarks/test_ablation_*.py`, `benchmarks/test_ext_*.py`) in
row-dict form so ``python -m repro.experiments <id>`` can print it:

* ``gen2``       -- EI under realistic Gen2 link timing;
* ``energy``     -- per-inventory energy budget by scheme;
* ``estimators`` -- DFSA estimator race at n = 5000;
* ``noise``      -- bit-error robustness sweep;
* ``neighbor``   -- neighbor-discovery energy transfer (paper §VII);
* ``coverage``   -- sensor-field connectivity verification (paper §VII);
* ``missing``    -- manifest verification vs full inventory.
"""

from __future__ import annotations

import statistics

import numpy as np

from repro.analysis.ei import measured_ei
from repro.apps.missing_tags import detect_missing_tags
from repro.bits.channel import Channel
from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.gen2_timing import Gen2TimingModel
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.estimators import (
    EomLeeEstimator,
    LowerBoundEstimator,
    MleEstimator,
    SchouteEstimator,
    VogtEstimator,
)
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.energy import inventory_energy
from repro.sim.fast import dfsa_fast, fsa_fast
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation
from repro.wireless.coverage import SensorField, run_field_discovery
from repro.wireless.neighbor import run_discovery

__all__ = [
    "ext_gen2",
    "ext_energy",
    "ext_estimators",
    "ext_noise",
    "ext_neighbor",
    "ext_coverage",
    "ext_missing",
]

_SCHEMES = (
    ("CRC-CD", lambda: CRCCDDetector(id_bits=64)),
    ("QCD-8", lambda: QCDDetector(8)),
)


def _check_rounds(rounds: int) -> None:
    if rounds < 1:
        raise ValueError("rounds must be >= 1")


def ext_gen2(rounds: int = 10, seed: int = 2010) -> list[dict[str, str]]:
    """EI of QCD-8 over CRC-CD under paper vs Gen2 timing (case II)."""
    _check_rounds(rounds)
    rows = []
    for label, timing in (
        ("paper (τ per bit)", TimingModel()),
        ("Gen2, same-commands ACK", Gen2TimingModel()),
        ("Gen2, no baseline ACK", Gen2TimingModel(ack_one_phase=False)),
    ):
        times = {}
        for name, factory in _SCHEMES:
            runs = [
                fsa_fast(
                    500, 300, factory(), timing, np.random.default_rng(seed + r)
                ).total_time
                for r in range(rounds)
            ]
            times[name] = statistics.mean(runs)
        rows.append(
            {
                "timing model": label,
                "CRC-CD (µs)": f"{times['CRC-CD']:,.0f}",
                "QCD-8 (µs)": f"{times['QCD-8']:,.0f}",
                "EI": f"{measured_ei(times['CRC-CD'], times['QCD-8']):.3f}",
            }
        )
    return rows


def ext_energy(rounds: int = 5, seed: int = 2010) -> list[dict[str, str]]:
    """Energy budget per 150-tag inventory, by scheme."""
    _check_rounds(rounds)
    rows = []
    for name, factory in _SCHEMES:
        detector = factory()
        timing = TimingModel()
        pop = TagPopulation(150, id_bits=64, rng=make_rng(seed))
        result = Reader(detector, timing).run_inventory(
            pop.tags, FramedSlottedAloha(90)
        )
        e = inventory_energy(result.trace, detector, timing)
        rows.append(
            {
                "scheme": name,
                "tag tx (µJ)": f"{e.tag_transmit:.2f}",
                "tag compute (µJ)": f"{e.tag_compute:.4f}",
                "reader rx (µJ)": f"{e.reader_receive:,.0f}",
                "total (µJ)": f"{e.total:,.0f}",
            }
        )
    return rows


def ext_estimators(rounds: int = 5, seed: int = 2010) -> list[dict[str, str]]:
    """DFSA estimator race (n = 5000, initial frame 64, QCD-8)."""
    _check_rounds(rounds)
    estimators = (
        LowerBoundEstimator(),
        SchouteEstimator(),
        EomLeeEstimator(),
        VogtEstimator(),
        MleEstimator(),
    )
    rows = []
    for est in estimators:
        slots = [
            dfsa_fast(
                5000,
                64,
                est,
                QCDDetector(8),
                TimingModel(),
                np.random.default_rng(seed + r),
            ).true_counts.total
            for r in range(rounds)
        ]
        mean_slots = statistics.mean(slots)
        rows.append(
            {
                "estimator": est.name,
                "slots": f"{mean_slots:,.0f}",
                "slots/tag": f"{mean_slots / 5000:.2f}",
            }
        )
    return rows


def ext_noise(rounds: int = 3, seed: int = 2010) -> list[dict[str, str]]:
    """Bit-error robustness sweep (FSA, 200 tags)."""
    _check_rounds(rounds)
    rows = []
    for ber in (0.0, 1e-3, 5e-3, 2e-2):
        cells: dict[str, str] = {"BER": f"{ber:g}"}
        for name, factory in _SCHEMES:
            falses = times = 0.0
            for r in range(rounds):
                pop = TagPopulation(200, id_bits=64, rng=make_rng(seed + r))
                channel = (
                    Channel(bit_error_rate=ber, rng=make_rng(seed + 100 + r))
                    if ber
                    else Channel()
                )
                res = Reader(factory(), channel=channel).run_inventory(
                    pop.tags, FramedSlottedAloha(120)
                )
                falses += res.stats.false_collisions
                times += res.stats.total_time
            cells[f"{name} false-coll"] = f"{falses / rounds:.1f}"
            cells[f"{name} time (µs)"] = f"{times / rounds:,.0f}"
        rows.append(cells)
    return rows


def ext_neighbor(rounds: int = 5, seed: int = 2010) -> list[dict[str, str]]:
    """Neighbor discovery in a 40-node clique: latency and energy."""
    _check_rounds(rounds)
    rows = []
    for name, factory in _SCHEMES:
        slots, energy = [], []
        for r in range(rounds):
            res = run_discovery(
                40, factory(), TimingModel(), np.random.default_rng(seed + r)
            )
            slots.append(res.slots)
            energy.append(res.listen_time_per_node)
        rows.append(
            {
                "framing": name,
                "slots to full discovery": f"{statistics.mean(slots):,.0f}",
                "listen µs/node": f"{statistics.mean(energy):,.0f}",
            }
        )
    return rows


def ext_coverage(rounds: int = 3, seed: int = 2010) -> list[dict[str, str]]:
    """Sensor-field link discovery (40 nodes, 50x50 m, 15 m range)."""
    _check_rounds(rounds)
    rows = []
    for name, factory in _SCHEMES:
        slots, listen = [], []
        for r in range(rounds):
            field = SensorField.random(
                40, 50.0, 50.0, 15.0, np.random.default_rng(seed + r)
            )
            res = run_field_discovery(
                field, factory(), TimingModel(), np.random.default_rng(seed + 50 + r)
            )
            slots.append(res.slots)
            listen.append(res.listen_time)
        rows.append(
            {
                "framing": name,
                "slots": f"{statistics.mean(slots):,.0f}",
                "listen time (µs)": f"{statistics.mean(listen):,.0f}",
            }
        )
    return rows


def ext_missing(rounds: int = 3, seed: int = 2010) -> list[dict[str, str]]:
    """Manifest verification (1000 tags, 20 missing) vs full inventory."""
    _check_rounds(rounds)
    rows = []
    for name, factory in _SCHEMES:
        airtimes, slot_counts = [], []
        for r in range(rounds):
            rng = np.random.default_rng(seed + r)
            expected = list(range(1000))
            missing = set(rng.choice(1000, size=20, replace=False).tolist())
            present = [i for i in expected if i not in missing]
            res = detect_missing_tags(
                expected,
                present,
                factory(),
                TimingModel(),
                np.random.default_rng(seed + 50 + r),
            )
            assert res.missing_ids == frozenset(missing)
            airtimes.append(res.airtime)
            slot_counts.append(res.slots)
        rows.append(
            {
                "framing": name,
                "slots": f"{statistics.mean(slot_counts):,.0f}",
                "airtime (µs)": f"{statistics.mean(airtimes):,.0f}",
            }
        )
    inv = fsa_fast(
        1000, 600, QCDDetector(8), TimingModel(), np.random.default_rng(seed)
    )
    rows.append(
        {
            "framing": "(full QCD-8 inventory)",
            "slots": f"{inv.true_counts.total:,}",
            "airtime (µs)": f"{inv.total_time:,.0f}",
        }
    )
    return rows
