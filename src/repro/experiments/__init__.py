"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`repro.experiments.config` -- the simulation cases (Table VI) and
  paper reference values;
* :mod:`repro.experiments.runner` -- Monte-Carlo runners with result
  memoization (the evaluation's tables and figures share runs);
* :mod:`repro.experiments.parallel` -- deterministic sharding of a grid
  point's rounds across a process pool (``workers=N``);
* :mod:`repro.experiments.cache` -- on-disk cache of aggregated grid
  points (``cache_dir=...`` / ``--cache-dir``);
* :mod:`repro.experiments.tables` / :mod:`repro.experiments.figures` --
  one generator per table/figure, returning row dicts / series;
* :mod:`repro.experiments.report`  -- plain-text rendering;
* :mod:`repro.experiments.cli`     -- ``python -m repro.experiments``.
"""

from repro.experiments.config import (
    CASES,
    CRC_BITS,
    ID_BITS,
    STRENGTHS,
    TAU,
    SimulationCase,
)
from repro.experiments.runner import AggregateStats, ExperimentSuite

__all__ = [
    "SimulationCase",
    "CASES",
    "STRENGTHS",
    "ID_BITS",
    "CRC_BITS",
    "TAU",
    "ExperimentSuite",
    "AggregateStats",
]
