"""Monte-Carlo experiment runners with shared, memoized results.

The paper's tables and figures all derive from the same grid of runs:
{case I..IV} × {FSA, BT} × {CRC-CD, QCD-4, QCD-8, QCD-16}, averaged over
``rounds`` repetitions.  :class:`ExperimentSuite` runs each grid point at
most once (via the vectorized kernels of :mod:`repro.sim.fast`, which are
validated against the exact reader) and serves every generator from the
cache.

Two optional layers extend the in-memory memoization:

* ``workers > 1`` shards each grid point's rounds over a process pool
  (:mod:`repro.experiments.parallel`).  The per-round ``SeedSequence``
  children are spawned up front exactly as the serial path spawns them,
  so the aggregated result is bit-identical for any worker count.
* ``cache_dir`` persists every aggregated grid point to disk
  (:mod:`repro.experiments.cache`), keyed by a content hash of all
  inputs, so repeated table/figure generation across CLI invocations
  skips completed points entirely.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.core.timing import TimingModel
from repro.obs import instruments as _inst
from repro.obs.profiling import profile
from repro.obs.state import STATE as _OBS
from repro.experiments.cache import (
    SCHEMA_VERSION,
    ResultCache,
    grid_point_params,
)
from repro.experiments.config import (
    CASES,
    CRC_BITS,
    DEFAULT_ROUNDS,
    ID_BITS,
    TAU,
    SimulationCase,
)
from repro.experiments.parallel import (
    GridPointJob,
    make_detector,
    make_executor,
)
from repro.sim.metrics import InventoryStats

__all__ = ["AggregateStats", "ExperimentSuite", "make_detector"]


@dataclass(frozen=True)
class AggregateStats:
    """Round-averaged inventory statistics (means, plus delay spread)."""

    rounds: int
    n_tags: int
    frames: float
    idle: float
    single: float
    collided: float
    throughput: float
    total_time: float
    accuracy: float
    delay_mean: float
    delay_std: float
    utilization: float
    missed_collisions: float

    @property
    def total_slots(self) -> float:
        return self.idle + self.single + self.collided

    @staticmethod
    def from_runs(runs: list[InventoryStats]) -> "AggregateStats":
        if not runs:
            raise ValueError("no runs to aggregate")

        def mean(f: Callable[[InventoryStats], float]) -> float:
            return sum(f(s) for s in runs) / len(runs)

        def nan_mean(f: Callable[[InventoryStats], float]) -> float:
            # A round that identifies no tags has NaN delay stats; it
            # carries no delay information, so it is excluded rather than
            # averaged in as 0.0 (which silently biased the mean toward
            # zero).  All-NaN rounds -> NaN, not a fabricated number.
            values = [v for v in (f(s) for s in runs) if not math.isnan(v)]
            return sum(values) / len(values) if values else math.nan

        return AggregateStats(
            rounds=len(runs),
            n_tags=runs[0].n_tags,
            frames=mean(lambda s: s.frames),
            idle=mean(lambda s: s.true_counts.idle),
            single=mean(lambda s: s.true_counts.single),
            collided=mean(lambda s: s.true_counts.collided),
            throughput=mean(lambda s: s.throughput),
            total_time=mean(lambda s: s.total_time),
            accuracy=mean(lambda s: s.accuracy),
            delay_mean=nan_mean(lambda s: s.delay.mean),
            delay_std=nan_mean(lambda s: s.delay.std),
            utilization=mean(lambda s: s.utilization),
            missed_collisions=mean(lambda s: s.missed_collisions),
        )


class ExperimentSuite:
    """Memoized access to the evaluation grid.

    Parameters
    ----------
    rounds:
        Monte-Carlo repetitions per grid point (the paper uses 100).
    seed:
        Root seed; grid points get deterministic, independent substreams.
    tau / id_bits / crc_bits:
        Paper constants, overridable for sensitivity studies.
    workers:
        Processes to shard each grid point's rounds across; 1 (default)
        runs in-process.  Results are bit-identical either way.
    cache_dir:
        Directory for the on-disk result cache; ``None`` (default)
        disables persistence.
    executor:
        Pluggable round executor (anything with ``run(job)`` / ``close()``
        / ``workers``); overrides ``workers`` when given.
    batched:
        Run each grid point (or shard) as one round-batched kernel call
        (:mod:`repro.sim.batch`; the default) instead of a per-round
        loop.  Results are bit-identical either way, so the flag is not
        part of the cache key.

    Suites hold a worker pool when ``workers > 1``; call :meth:`close`
    when done, or use the suite as a context manager.
    """

    def __init__(
        self,
        rounds: int = DEFAULT_ROUNDS,
        seed: int = 2010,
        tau: float = TAU,
        id_bits: int = ID_BITS,
        crc_bits: int = CRC_BITS,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        executor=None,
        batched: bool = True,
    ) -> None:
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = rounds
        self.seed = seed
        self.batched = batched
        self.timing = TimingModel(tau=tau, id_bits=id_bits, crc_bits=crc_bits)
        self._executor = executor if executor is not None else make_executor(workers)
        self.workers = self._executor.workers
        self._disk = ResultCache(cache_dir) if cache_dir is not None else None
        self._cache: dict[
            tuple[SimulationCase, str, str], AggregateStats
        ] = {}

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the executor's worker pool (no-op for serial)."""
        self._executor.close()

    def __enter__(self) -> "ExperimentSuite":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def run(
        self, case: SimulationCase | str, protocol: str, scheme: str
    ) -> AggregateStats:
        """Aggregate stats for one grid point.

        ``protocol`` is ``"fsa"`` or ``"bt"``; ``scheme`` is ``"crc"``,
        ``"qcd-4"``, ``"qcd-8"`` or ``"qcd-16"``.
        """
        if isinstance(case, str):
            case = CASES[case]
        # Memoize on the full case identity, not just its name: two ad-hoc
        # cases sharing a name but differing in n_tags/frame_size are
        # different grid points.
        key = (case, protocol, scheme)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        params = self._cache_params(case, protocol, scheme)
        stats = self._load_cached(params)
        if stats is None:
            stats = self._run_uncached(case, protocol, scheme)
            if self._disk is not None:
                self._disk.store(params, asdict(stats))
        self._cache[key] = stats
        return stats

    # -- disk cache ----------------------------------------------------

    def _cache_params(
        self, case: SimulationCase, protocol: str, scheme: str
    ) -> dict[str, object]:
        """Every input that determines a grid point's result.

        Delegates to :func:`repro.experiments.cache.grid_point_params`,
        the shared routing contract: the fleet router derives the same
        keys without constructing a suite.
        """
        return grid_point_params(
            rounds=self.rounds,
            seed=self.seed,
            tau=self.timing.tau,
            id_bits=self.timing.id_bits,
            crc_bits=self.timing.crc_bits,
            case_name=case.name,
            n_tags=case.n_tags,
            frame_size=case.frame_size,
            protocol=protocol,
            scheme=scheme,
        )

    def _load_cached(
        self, params: Mapping[str, object]
    ) -> AggregateStats | None:
        if self._disk is None:
            return None
        doc = self._disk.load(params)
        if doc is None:
            return None
        try:
            kwargs = {
                f.name: (math.nan if doc[f.name] is None else doc[f.name])
                for f in fields(AggregateStats)
            }
            return AggregateStats(**kwargs)
        except (KeyError, TypeError):
            return None  # stale/foreign entry: recompute

    # -- execution -----------------------------------------------------

    def _run_uncached(
        self, case: SimulationCase, protocol: str, scheme: str
    ) -> AggregateStats:
        obs_on = _OBS.enabled
        if obs_on:
            _OBS.tracer.start_span(
                "grid_point",
                case=case.name,
                protocol=protocol,
                scheme=scheme,
                rounds=self.rounds,
                workers=self.workers,
            )
        # One deterministic stream per grid point, independent of how
        # many other points have been run.  Every identity-bearing field
        # enters the entropy key: two cases that share a tag count but
        # differ in name or frame size get distinct substreams.
        seq = np.random.SeedSequence(
            [
                self.seed,
                _stable_hash(case.name),
                case.n_tags,
                case.frame_size,
                _stable_hash(protocol),
                _stable_hash(scheme),
            ]
        )
        # Children are spawned up front, once, in round order -- workers
        # receive contiguous chunks of this exact list, which is what
        # keeps the parallel path bit-identical to the serial one.
        job = GridPointJob(
            case=case,
            protocol=protocol,
            scheme=scheme,
            children=tuple(seq.spawn(self.rounds)),
            timing=self.timing,
            observe=obs_on,
            batched=self.batched,
        )
        runs: list[InventoryStats] = []
        try:
            with profile("runner.grid_point"):
                runs = self._executor.run(job)
        finally:
            if obs_on:
                _OBS.tracer.end_span(completed_rounds=len(runs))
        if obs_on:
            _OBS.registry.counter(
                _inst.GRID_POINTS,
                "Evaluation grid points completed",
                labelnames=("case", "protocol", "scheme"),
            ).labels(case=case.name, protocol=protocol, scheme=scheme).inc()
        return AggregateStats.from_runs(runs)

    # ------------------------------------------------------------------

    def grid(
        self,
        cases: Iterable[str] = ("I", "II", "III", "IV"),
        protocols: Iterable[str] = ("fsa", "bt"),
        schemes: Iterable[str] = ("crc", "qcd-4", "qcd-8", "qcd-16"),
    ) -> dict[tuple[str, str, str], AggregateStats]:
        """Run (or fetch) a sub-grid; returns {(case, protocol, scheme): stats}."""
        out = {}
        for c in cases:
            for p in protocols:
                for s in schemes:
                    out[(c, p, s)] = self.run(c, p, s)
        return out


def _stable_hash(text: str) -> int:
    """Deterministic small hash (Python's ``hash`` is salted per process)."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % (1 << 31)
    return value
