"""Monte-Carlo experiment runners with shared, memoized results.

The paper's tables and figures all derive from the same grid of runs:
{case I..IV} × {FSA, BT} × {CRC-CD, QCD-4, QCD-8, QCD-16}, averaged over
``rounds`` repetitions.  :class:`ExperimentSuite` runs each grid point at
most once (via the vectorized kernels of :mod:`repro.sim.fast`, which are
validated against the exact reader) and serves every generator from the
cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.core.crc_cd import CRCCDDetector
from repro.core.detector import CollisionDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.obs import instruments as _inst
from repro.obs.profiling import profile
from repro.obs.state import STATE as _OBS
from repro.experiments.config import (
    CASES,
    CRC_BITS,
    DEFAULT_ROUNDS,
    ID_BITS,
    TAU,
    SimulationCase,
)
from repro.sim.fast import bt_fast, fsa_fast
from repro.sim.metrics import InventoryStats

__all__ = ["AggregateStats", "ExperimentSuite", "make_detector"]


@dataclass(frozen=True)
class AggregateStats:
    """Round-averaged inventory statistics (means, plus delay spread)."""

    rounds: int
    n_tags: int
    frames: float
    idle: float
    single: float
    collided: float
    throughput: float
    total_time: float
    accuracy: float
    delay_mean: float
    delay_std: float
    utilization: float
    missed_collisions: float

    @property
    def total_slots(self) -> float:
        return self.idle + self.single + self.collided

    @staticmethod
    def from_runs(runs: list[InventoryStats]) -> "AggregateStats":
        if not runs:
            raise ValueError("no runs to aggregate")

        def mean(f: Callable[[InventoryStats], float]) -> float:
            return sum(f(s) for s in runs) / len(runs)

        return AggregateStats(
            rounds=len(runs),
            n_tags=runs[0].n_tags,
            frames=mean(lambda s: s.frames),
            idle=mean(lambda s: s.true_counts.idle),
            single=mean(lambda s: s.true_counts.single),
            collided=mean(lambda s: s.true_counts.collided),
            throughput=mean(lambda s: s.throughput),
            total_time=mean(lambda s: s.total_time),
            accuracy=mean(lambda s: s.accuracy),
            delay_mean=mean(
                lambda s: s.delay.mean if not math.isnan(s.delay.mean) else 0.0
            ),
            delay_std=mean(
                lambda s: s.delay.std if not math.isnan(s.delay.std) else 0.0
            ),
            utilization=mean(lambda s: s.utilization),
            missed_collisions=mean(lambda s: s.missed_collisions),
        )


def make_detector(scheme: str, id_bits: int = ID_BITS) -> CollisionDetector:
    """Detector factory for grid keys: ``"crc"`` or ``"qcd-<strength>"``."""
    if scheme == "crc":
        return CRCCDDetector(id_bits=id_bits)
    if scheme.startswith("qcd-"):
        return QCDDetector(strength=int(scheme.split("-", 1)[1]))
    raise ValueError(f"unknown scheme {scheme!r}")


class ExperimentSuite:
    """Memoized access to the evaluation grid.

    Parameters
    ----------
    rounds:
        Monte-Carlo repetitions per grid point (the paper uses 100).
    seed:
        Root seed; grid points get deterministic, independent substreams.
    tau / id_bits / crc_bits:
        Paper constants, overridable for sensitivity studies.
    """

    def __init__(
        self,
        rounds: int = DEFAULT_ROUNDS,
        seed: int = 2010,
        tau: float = TAU,
        id_bits: int = ID_BITS,
        crc_bits: int = CRC_BITS,
    ) -> None:
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = rounds
        self.seed = seed
        self.timing = TimingModel(tau=tau, id_bits=id_bits, crc_bits=crc_bits)
        self._cache: dict[tuple[str, str, str], AggregateStats] = {}

    # ------------------------------------------------------------------

    def run(
        self, case: SimulationCase | str, protocol: str, scheme: str
    ) -> AggregateStats:
        """Aggregate stats for one grid point.

        ``protocol`` is ``"fsa"`` or ``"bt"``; ``scheme`` is ``"crc"``,
        ``"qcd-4"``, ``"qcd-8"`` or ``"qcd-16"``.
        """
        if isinstance(case, str):
            case = CASES[case]
        key = (case.name, protocol, scheme)
        if key not in self._cache:
            self._cache[key] = self._run_uncached(case, protocol, scheme)
        return self._cache[key]

    def _run_uncached(
        self, case: SimulationCase, protocol: str, scheme: str
    ) -> AggregateStats:
        detector = make_detector(scheme, id_bits=self.timing.id_bits)
        obs_on = _OBS.enabled
        if obs_on:
            _OBS.tracer.start_span(
                "grid_point",
                case=case.name,
                protocol=protocol,
                scheme=scheme,
                rounds=self.rounds,
            )
        # One deterministic stream per grid point, independent of how many
        # other points have been run.
        seq = np.random.SeedSequence(
            [self.seed, case.n_tags, _stable_hash(protocol), _stable_hash(scheme)]
        )
        runs: list[InventoryStats] = []
        try:
            with profile("runner.grid_point"):
                for child in seq.spawn(self.rounds):
                    rng = np.random.Generator(np.random.PCG64(child))
                    if protocol == "fsa":
                        stats = fsa_fast(
                            case.n_tags,
                            case.frame_size,
                            detector,
                            self.timing,
                            rng,
                        )
                    elif protocol == "bt":
                        stats = bt_fast(case.n_tags, detector, self.timing, rng)
                    else:
                        raise ValueError(f"unknown protocol {protocol!r}")
                    runs.append(stats)
                    if obs_on:
                        _OBS.registry.counter(
                            _inst.MC_ROUNDS, "Monte-Carlo rounds completed"
                        ).inc()
        finally:
            if obs_on:
                _OBS.tracer.end_span(completed_rounds=len(runs))
        if obs_on:
            _OBS.registry.counter(
                _inst.GRID_POINTS,
                "Evaluation grid points completed",
                labelnames=("case", "protocol", "scheme"),
            ).labels(case=case.name, protocol=protocol, scheme=scheme).inc()
        return AggregateStats.from_runs(runs)

    # ------------------------------------------------------------------

    def grid(
        self,
        cases: Iterable[str] = ("I", "II", "III", "IV"),
        protocols: Iterable[str] = ("fsa", "bt"),
        schemes: Iterable[str] = ("crc", "qcd-4", "qcd-8", "qcd-16"),
    ) -> dict[tuple[str, str, str], AggregateStats]:
        """Run (or fetch) a sub-grid; returns {(case, protocol, scheme): stats}."""
        out = {}
        for c in cases:
            for p in protocols:
                for s in schemes:
                    out[(c, p, s)] = self.run(c, p, s)
        return out


def _stable_hash(text: str) -> int:
    """Deterministic small hash (Python's ``hash`` is salted per process)."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % (1 << 31)
    return value
