"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.experiments table7 --rounds 100 --seed 2010
    python -m repro.experiments all --rounds 20
    repro-experiments fig8

Paper experiments: table2 table3 table4 table7 table8 table9 fig5 fig6
fig7 fig8 (``all`` runs these).  Beyond-the-paper studies: gen2 energy
estimators noise neighbor coverage missing (``extensions`` runs these;
see also the asserted versions under ``benchmarks/``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Mapping, Sequence

from repro.experiments import extensions, figures, tables
from repro.experiments.config import DEFAULT_ROUNDS
from repro.experiments.report import render_table
from repro.experiments.runner import ExperimentSuite

__all__ = ["main", "EXPERIMENTS", "EXTENSIONS"]

#: experiment id -> (needs_suite, generator, title)
EXPERIMENTS: dict[str, tuple[bool, Callable, str]] = {
    "table2": (False, tables.table2, "Table II: minimum EI on FSA (theory)"),
    "table3": (False, tables.table3, "Table III: average EI on BT (theory)"),
    "table4": (False, tables.table4, "Table IV: CRC-CD vs QCD cost (measured)"),
    "table7": (True, tables.table7, "Table VII: FSA simulation"),
    "table8": (True, tables.table8, "Table VIII: BT simulation"),
    "table9": (True, tables.table9, "Table IX: QCD utilization rate (FSA)"),
    "fig5": (True, figures.fig5, "Figure 5: QCD detection accuracy (FSA)"),
    "fig6": (True, figures.fig6, "Figure 6: identification delay (FSA)"),
    "fig7": (True, figures.fig7, "Figure 7: transmission time"),
    "fig8": (True, figures.fig8, "Figure 8: measured EI"),
}

#: beyond-the-paper study id -> (generator(seed=...), title)
EXTENSIONS: dict[str, tuple[Callable, str]] = {
    "gen2": (extensions.ext_gen2, "Extension: EI under Gen2 link timing"),
    "energy": (extensions.ext_energy, "Extension: energy budget per inventory"),
    "estimators": (
        extensions.ext_estimators,
        "Extension: DFSA estimator race (n=5000)",
    ),
    "noise": (extensions.ext_noise, "Extension: bit-error robustness sweep"),
    "neighbor": (
        extensions.ext_neighbor,
        "Extension: neighbor discovery (paper §VII)",
    ),
    "coverage": (
        extensions.ext_coverage,
        "Extension: sensor-field coverage (paper §VII)",
    ),
    "missing": (
        extensions.ext_missing,
        "Extension: missing-tag verification",
    ),
}


def run_experiment(
    exp_id: str, suite: ExperimentSuite
) -> Sequence[Mapping[str, str]]:
    """Run one experiment and return its rows."""
    if exp_id in EXPERIMENTS:
        needs_suite, fn, _ = EXPERIMENTS[exp_id]
        return fn(suite) if needs_suite else fn()
    fn, _ = EXTENSIONS[exp_id]
    return fn(seed=suite.seed)


def _title(exp_id: str) -> str:
    if exp_id in EXPERIMENTS:
        return EXPERIMENTS[exp_id][2]
    return EXTENSIONS[exp_id][1]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures, plus the "
        "beyond-the-paper extension studies.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, *EXTENSIONS, "all", "extensions"],
        help="experiment id, 'all' (paper) or 'extensions'",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=DEFAULT_ROUNDS,
        help=f"Monte-Carlo rounds per grid point (default {DEFAULT_ROUNDS})",
    )
    parser.add_argument("--seed", type=int, default=2010, help="root seed")
    args = parser.parse_args(argv)

    suite = ExperimentSuite(rounds=args.rounds, seed=args.seed)
    if args.experiment == "all":
        ids = list(EXPERIMENTS)
    elif args.experiment == "extensions":
        ids = list(EXTENSIONS)
    else:
        ids = [args.experiment]
    for exp_id in ids:
        rows = run_experiment(exp_id, suite)
        print(render_table(rows, title=_title(exp_id)))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
