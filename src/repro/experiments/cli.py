"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.experiments table7 --rounds 100 --seed 2010
    python -m repro.experiments all --rounds 20
    repro-experiments fig8
    repro-experiments table7 --workers 4 --cache-dir results/.mc-cache
    repro-experiments table7 --metrics-out metrics.json
    repro-experiments obs-report

``--workers N`` shards every grid point's Monte-Carlo rounds across N
processes (bit-identical results; see EXPERIMENTS.md).  ``--cache-dir
DIR`` reuses aggregated grid points across invocations; ``--no-cache``
ignores the cache for one run.

Paper experiments: table2 table3 table4 table7 table8 table9 fig5 fig6
fig7 fig8 (``all`` runs these).  Beyond-the-paper studies: gen2 energy
estimators noise neighbor coverage missing (``extensions`` runs these;
see also the asserted versions under ``benchmarks/``).

Observability (``docs/OBSERVABILITY.md``): ``--metrics-out FILE`` enables
the :mod:`repro.obs` instrumentation for the run and dumps the metrics
registry afterwards as JSON plus a Prometheus-text sibling; ``--trace-out
FILE`` streams span/event records as JSON lines while the run executes;
``obs-report`` runs a small seeded, fully instrumented demo and prints
the registry next to the trace-derived ground truth.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro import obs
from repro.obs.report import metrics_percentile_rows
from repro.experiments import extensions, figures, tables
from repro.experiments.config import DEFAULT_ROUNDS
from repro.experiments.report import render_table
from repro.experiments.runner import ExperimentSuite

__all__ = ["main", "run_obs_report", "EXPERIMENTS", "EXTENSIONS"]

#: experiment id -> (needs_suite, generator, title)
EXPERIMENTS: dict[str, tuple[bool, Callable, str]] = {
    "table2": (False, tables.table2, "Table II: minimum EI on FSA (theory)"),
    "table3": (False, tables.table3, "Table III: average EI on BT (theory)"),
    "table4": (False, tables.table4, "Table IV: CRC-CD vs QCD cost (measured)"),
    "table7": (True, tables.table7, "Table VII: FSA simulation"),
    "table8": (True, tables.table8, "Table VIII: BT simulation"),
    "table9": (True, tables.table9, "Table IX: QCD utilization rate (FSA)"),
    "fig5": (True, figures.fig5, "Figure 5: QCD detection accuracy (FSA)"),
    "fig6": (True, figures.fig6, "Figure 6: identification delay (FSA)"),
    "fig7": (True, figures.fig7, "Figure 7: transmission time"),
    "fig8": (True, figures.fig8, "Figure 8: measured EI"),
}

#: beyond-the-paper study id -> (generator(seed=...), title)
EXTENSIONS: dict[str, tuple[Callable, str]] = {
    "gen2": (extensions.ext_gen2, "Extension: EI under Gen2 link timing"),
    "energy": (extensions.ext_energy, "Extension: energy budget per inventory"),
    "estimators": (
        extensions.ext_estimators,
        "Extension: DFSA estimator race (n=5000)",
    ),
    "noise": (extensions.ext_noise, "Extension: bit-error robustness sweep"),
    "neighbor": (
        extensions.ext_neighbor,
        "Extension: neighbor discovery (paper §VII)",
    ),
    "coverage": (
        extensions.ext_coverage,
        "Extension: sensor-field coverage (paper §VII)",
    ),
    "missing": (
        extensions.ext_missing,
        "Extension: missing-tag verification",
    ),
}


def run_experiment(
    exp_id: str, suite: ExperimentSuite
) -> Sequence[Mapping[str, str]]:
    """Run one experiment and return its rows."""
    if exp_id in EXPERIMENTS:
        needs_suite, fn, _ = EXPERIMENTS[exp_id]
        return fn(suite) if needs_suite else fn()
    fn, _ = EXTENSIONS[exp_id]
    return fn(seed=suite.seed)


def _title(exp_id: str) -> str:
    if exp_id in EXPERIMENTS:
        return EXPERIMENTS[exp_id][2]
    return EXTENSIONS[exp_id][1]


# ----------------------------------------------------------------------
# Observability


def run_obs_report(suite: ExperimentSuite) -> list[dict[str, str]]:
    """Instrumented seeded demo; returns registry-vs-ground-truth rows.

    Runs one exact-reader inventory and one vectorized FSA kernel with
    observability enabled, then cross-checks the registry's slot-outcome
    counters against the trace/stats the runs returned.  Requires
    :mod:`repro.obs` to be enabled (``main`` guarantees it) and assumes a
    freshly reset registry.
    """
    import numpy as np

    from repro.bits.rng import make_rng
    from repro.core.qcd import QCDDetector
    from repro.protocols.fsa import FramedSlottedAloha
    from repro.sim.fast import fsa_fast
    from repro.sim.metrics import slot_counts
    from repro.sim.reader import Reader

    from repro.tags.population import TagPopulation

    pop = TagPopulation(100, id_bits=64, rng=make_rng(suite.seed))
    reader = Reader(QCDDetector(8), suite.timing)
    result = reader.run_inventory(pop.tags, FramedSlottedAloha(64))
    kernel = fsa_fast(
        1000,
        600,
        QCDDetector(8),
        suite.timing,
        np.random.Generator(np.random.PCG64(suite.seed)),
    )

    exact_true = slot_counts(result.trace)
    exact_det = slot_counts(result.trace, detected=True)
    truth_true = {
        "IDLE": exact_true.idle + kernel.true_counts.idle,
        "SINGLE": exact_true.single + kernel.true_counts.single,
        "COLLIDED": exact_true.collided + kernel.true_counts.collided,
    }
    truth_det = {
        "IDLE": exact_det.idle + kernel.detected_counts.idle,
        "SINGLE": exact_det.single + kernel.detected_counts.single,
        "COLLIDED": exact_det.collided + kernel.detected_counts.collided,
    }
    rows: list[dict[str, str]] = []
    for by, truth in (("true_type", truth_true), ("detected_type", truth_det)):
        observed = obs.slot_totals(by=by)
        for outcome in ("IDLE", "SINGLE", "COLLIDED"):
            got = int(observed.get(outcome, 0))
            want = truth[outcome]
            rows.append(
                {
                    "counter": f"repro_slots_total[{by}={outcome}]",
                    "registry": str(got),
                    "trace ground truth": str(want),
                    "match": "yes" if got == want else "NO",
                }
            )
    return rows


def _dump_metrics(path: Path) -> tuple[Path, Path]:
    """Write the registry as JSON to ``path`` and Prometheus text next to
    it (the ``.prom`` sibling); if ``path`` ends in ``.prom`` the roles
    swap.  Returns (json_path, prom_path)."""
    if path.suffix == ".prom":
        prom_path = path
        json_path = path.with_suffix(".json")
    else:
        json_path = path
        prom_path = path.with_suffix(".prom")
    json_path.parent.mkdir(parents=True, exist_ok=True)
    registry = obs.STATE.registry
    json_path.write_text(registry.to_json() + "\n")
    prom_path.write_text(registry.to_prometheus())
    return json_path, prom_path


# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures, plus the "
        "beyond-the-paper extension studies.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, *EXTENSIONS, "all", "extensions", "obs-report"],
        help="experiment id, 'all' (paper), 'extensions', or 'obs-report' "
        "(instrumented demo + registry dump)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=DEFAULT_ROUNDS,
        help=f"Monte-Carlo rounds per grid point (default {DEFAULT_ROUNDS})",
    )
    parser.add_argument("--seed", type=int, default=2010, help="root seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard each grid point's Monte-Carlo rounds across N "
        "processes (default 1 = in-process); results are bit-identical "
        "for any worker count",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="persist aggregated grid points to DIR and reuse them on "
        "later invocations (keyed by rounds/seed/timing/case/protocol/"
        "scheme plus a schema version)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir for this run (neither read nor write)",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="enable repro.obs for the run and dump the metrics registry "
        "afterwards: JSON to FILE plus Prometheus text to FILE's .prom "
        "sibling",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="enable repro.obs and stream span/event records to FILE as "
        "JSON lines while the run executes",
    )
    args = parser.parse_args(argv)

    observing = (
        args.metrics_out is not None
        or args.trace_out is not None
        or args.experiment == "obs-report"
    )
    # The suite context-manages the executor pool: every exit path below
    # (including a failing JsonlSink or a raising experiment) releases
    # the worker processes.
    with ExperimentSuite(
        rounds=args.rounds,
        seed=args.seed,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
    ) as suite:
        enabled = False
        try:
            if observing:
                obs.reset()
                sink = obs.JsonlSink(args.trace_out) if args.trace_out else None
                obs.enable(sink=sink)
                enabled = True
            if args.experiment == "obs-report":
                rows = run_obs_report(suite)
                print(
                    render_table(
                        rows,
                        title="Observability self-check "
                        "(registry vs trace ground truth)",
                    )
                )
                print()
                print(obs.STATE.registry.to_prometheus())
                pct_rows = metrics_percentile_rows(
                    obs.STATE.registry.to_dict()
                )
                if pct_rows:
                    print(
                        render_table(
                            pct_rows,
                            title="Histogram percentiles "
                            "(bucket interpolation)",
                        )
                    )
                if not all(r["match"] == "yes" for r in rows):
                    return 1
            else:
                if args.experiment == "all":
                    ids = list(EXPERIMENTS)
                elif args.experiment == "extensions":
                    ids = list(EXTENSIONS)
                else:
                    ids = [args.experiment]
                for exp_id in ids:
                    rows = run_experiment(exp_id, suite)
                    print(render_table(rows, title=_title(exp_id)))
                    print()
        finally:
            if enabled:
                if args.metrics_out is not None:
                    json_path, prom_path = _dump_metrics(args.metrics_out)
                    print(f"metrics written to {json_path} and {prom_path}")
                if args.trace_out is not None:
                    print(f"trace written to {args.trace_out}")
                obs.disable(close_sink=args.trace_out is not None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
