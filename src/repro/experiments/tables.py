"""Generators for the paper's tables (II, III, IV, VII, VIII, IX).

Each function returns a list of row dicts ready for
:func:`repro.experiments.report.render_table`, with "paper" columns where
the original reports a number, so paper-vs-measured is visible in one
place.
"""

from __future__ import annotations

from repro.analysis.comparison import table4_rows
from repro.analysis.ei import bt_ei_average, fsa_ei_lower_bound
from repro.experiments.config import (
    CASES,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE7,
    PAPER_TABLE8,
    PAPER_TABLE9,
    STRENGTHS,
)
from repro.experiments.runner import ExperimentSuite

__all__ = [
    "table2",
    "table3",
    "table4",
    "table7",
    "table8",
    "table9",
]


def table2() -> list[dict[str, str]]:
    """Table II: theoretical minimum EI on FSA per QCD strength."""
    rows = []
    for strength in STRENGTHS:
        rows.append(
            {
                "strength": f"{strength}-bit",
                "EI (ours)": f"{fsa_ei_lower_bound(strength):.4f}",
                "EI (paper)": f"{PAPER_TABLE2[strength]:.4f}",
            }
        )
    return rows


def table3() -> list[dict[str, str]]:
    """Table III: average EI on BT per QCD strength."""
    rows = []
    for strength in STRENGTHS:
        rows.append(
            {
                "strength": f"{strength}-bit",
                "EI (ours)": f"{bt_ei_average(strength):.4f}",
                "EI (paper)": f"{PAPER_TABLE3[strength]:.4f}",
            }
        )
    return rows


def table4() -> list[dict[str, str]]:
    """Table IV: CRC-CD vs QCD cost comparison (measured)."""
    return table4_rows()


def table7(suite: ExperimentSuite) -> list[dict[str, str]]:
    """Table VII: FSA slot distribution and throughput per case.

    Slot counts are detector-independent (the identification process
    follows ground truth); the suite's QCD-8 runs supply them.
    """
    rows = []
    for name, case in CASES.items():
        agg = suite.run(case, "fsa", "qcd-8")
        paper = PAPER_TABLE7[name]
        rows.append(
            {
                "case": f"{case.n_tags}",
                "# of frame": f"{agg.frames:.1f} (paper {paper['frames']})",
                "idle": f"{agg.idle:.0f} (paper {paper['idle']})",
                "single": f"{agg.single:.0f} (paper {paper['single']})",
                "collided": f"{agg.collided:.0f} (paper {paper['collided']})",
                "throughput": f"{agg.throughput:.2f} (paper {paper['throughput']:.2f})",
            }
        )
    return rows


def table8(suite: ExperimentSuite) -> list[dict[str, str]]:
    """Table VIII: BT slot distribution and throughput per case."""
    rows = []
    for name, case in CASES.items():
        agg = suite.run(case, "bt", "qcd-8")
        paper = PAPER_TABLE8[name]
        rows.append(
            {
                "case": f"{case.n_tags}",
                "# of slots": f"{agg.total_slots:.0f} (paper {paper['frames']})",
                "idle": f"{agg.idle:.0f} (paper {paper['idle']})",
                "single": f"{agg.single:.0f} (paper {paper['single']})",
                "collided": f"{agg.collided:.0f} (paper {paper['collided']})",
                "throughput": f"{agg.throughput:.2f} (paper {paper['throughput']:.2f})",
            }
        )
    return rows


def table9(suite: ExperimentSuite) -> list[dict[str, str]]:
    """Table IX: utilization rate of QCD per strength per case (FSA)."""
    rows = []
    for name, case in CASES.items():
        row: dict[str, str] = {"case": f"{case.n_tags}"}
        for strength in STRENGTHS:
            agg = suite.run(case, "fsa", f"qcd-{strength}")
            paper = PAPER_TABLE9[name][strength]
            row[f"{strength}-bit"] = (
                f"{agg.utilization:.2%} (paper {paper:.2%})"
            )
        rows.append(row)
    return rows
