"""On-disk result cache for Monte-Carlo grid points.

Regenerating the paper's tables and figures re-runs the same grid; this
cache lets repeated CLI invocations (and the benchmark harness) skip
grid points that were already simulated.  One JSON document per grid
point, under the directory handed to ``--cache-dir``:

* the **key** is a SHA-256 content hash over every input that determines
  the result -- schema version, rounds, root seed, the timing model
  (tau / id_bits / crc_bits), the case (name, n_tags, frame_size),
  protocol and scheme.  Changing *any* of them changes the key, so a
  cache never has to be manually invalidated; bumping
  :data:`SCHEMA_VERSION` orphans every old entry at once.
* the **value** is the aggregated stats mapping (the caller serializes
  its dataclass; this module stays payload-agnostic), written RFC-8259
  clean: NaN is stored as ``null`` and restored by the caller.

Writes are atomic (temp file + ``os.replace``) so concurrent runners
sharing a cache directory never observe torn entries; unreadable,
mismatched or stale-schema entries read as misses, never as errors.
The temp-file name is unique per *call* (pid + per-process counter), not
just per process, so two threads storing the same key concurrently can
never clobber each other's half-written temp file; a crashed writer's
orphaned ``*.tmp.*`` files are swept on the next cache open (only ones
old enough that no live writer can still own them).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from pathlib import Path
from typing import Mapping

from repro.sim.export import nan_to_none

__all__ = [
    "SCHEMA_VERSION",
    "ResultCache",
    "cache_key",
    "grid_point_params",
]

#: Orphaned temp files younger than this many seconds are left alone on
#: cache open: they may belong to a concurrent writer that is still
#: between ``write_text`` and ``os.replace``.
STALE_TMP_SECONDS = 3600.0

#: Per-process monotonic id: combined with the pid it makes every store()
#: call's temp file unique, even across threads racing on one key.
_TMP_IDS = itertools.count()

#: Bump when the cached payload's meaning changes (new AggregateStats
#: fields, different aggregation semantics, ...); every existing entry
#: then misses.
SCHEMA_VERSION = 1


def cache_key(params: Mapping[str, object]) -> str:
    """Content hash of one grid point's inputs (hex, stable across runs)."""
    canonical = json.dumps(
        nan_to_none(dict(params)), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def grid_point_params(
    *,
    rounds: int,
    seed: int,
    tau: float,
    id_bits: int,
    crc_bits: int,
    case_name: str,
    n_tags: int,
    frame_size: int,
    protocol: str,
    scheme: str,
) -> dict[str, object]:
    """The canonical cache-key parameter document of one grid point.

    This is the *routing contract* of the fleet: the single-process
    suite (:meth:`repro.experiments.runner.ExperimentSuite._cache_params`)
    and the front router (:mod:`repro.serve.router`) both derive cache
    keys through this one function, so a grid point's placement on the
    consistent-hash ring always agrees with the backend's own memo/L2
    key -- without the router having to build an ``ExperimentSuite``.
    """
    return {
        "schema": SCHEMA_VERSION,
        "rounds": rounds,
        "seed": seed,
        "tau": tau,
        "id_bits": id_bits,
        "crc_bits": crc_bits,
        "case": {
            "name": case_name,
            "n_tags": n_tags,
            "frame_size": frame_size,
        },
        "protocol": protocol,
        "scheme": scheme,
    }


class ResultCache:
    """Directory of ``<key>.json`` grid-point results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_orphaned_tmp()

    def _sweep_orphaned_tmp(self, max_age_s: float = STALE_TMP_SECONDS) -> int:
        """Delete ``*.tmp.*`` files older than ``max_age_s``; return count.

        Recent temp files are spared: a concurrent writer in another
        process may be about to ``os.replace`` one of them.  Only files a
        crashed writer left behind long ago are reclaimed.
        """
        removed = 0
        cutoff = time.time() - max_age_s
        for tmp in self.root.glob("*.tmp.*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue  # raced with another sweeper or the owner
        return removed

    def path_for(self, params: Mapping[str, object]) -> Path:
        return self.root / f"{cache_key(params)[:32]}.json"

    def load(self, params: Mapping[str, object]) -> dict | None:
        """The cached stats mapping, or ``None`` on any kind of miss.

        A hit requires a parseable document, a matching schema version
        and byte-equal parameters (belt and braces on top of the hashed
        filename); anything else -- including a corrupt or truncated
        file -- is treated as a miss.
        """
        path = self.path_for(params)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict):
            return None
        if doc.get("schema") != SCHEMA_VERSION:
            return None
        if doc.get("params") != nan_to_none(dict(params)):
            return None
        stats = doc.get("stats")
        return stats if isinstance(stats, dict) else None

    def store(
        self, params: Mapping[str, object], stats: Mapping[str, object]
    ) -> Path:
        """Atomically persist one grid point; returns the entry's path."""
        path = self.path_for(params)
        doc = {
            "schema": SCHEMA_VERSION,
            "params": nan_to_none(dict(params)),
            "stats": nan_to_none(dict(stats)),
        }
        payload = json.dumps(doc, indent=2, sort_keys=True, allow_nan=False)
        # pid + per-process counter: unique per call, so threads racing on
        # one key each write (and atomically promote) their own temp file.
        tmp = path.with_name(
            f"{path.name}.tmp.{os.getpid()}.{next(_TMP_IDS)}"
        )
        try:
            tmp.write_text(payload + "\n")
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path
