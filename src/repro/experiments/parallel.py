"""Parallel execution of Monte-Carlo rounds (deterministic sharding).

The evaluation grid's rounds are embarrassingly parallel: every round of
a grid point draws from its own pre-spawned ``SeedSequence`` child, so
the *work list* -- not the RNG -- is the unit of distribution.  This
module owns that execution layer:

* :func:`run_rounds` -- the single execution funnel both paths share:
  by default one round-batched kernel call per shard
  (:mod:`repro.sim.batch`), or -- with ``batched=False`` on the job --
  the historical loop of one streamed kernel call per seed child.  The
  two are bit-identical (the batch engine replays the streamed per-round
  RNG draw order), so flipping the flag never changes results;
* :class:`SerialExecutor` -- runs the loop inline (the default; identical
  to the historical single-process behaviour);
* :class:`ProcessExecutor` -- shards the children into contiguous chunks
  and fans them out over a ``ProcessPoolExecutor``, then concatenates
  shard results *in shard order*.

Because the children are spawned once by the caller and each round's
generator depends only on its child, the concatenated run list -- and
therefore :class:`~repro.experiments.runner.AggregateStats` -- is
bit-identical for any worker count (asserted by
``tests/experiments/test_parallel.py``).

Observability: workers cannot increment the parent's registry, so each
worker runs with a fresh enabled registry of its own and ships it back
with the shard; the executor folds the shards into the parent via
:meth:`repro.obs.registry.MetricsRegistry.merge`.  Span *tracing* inside
workers is not forwarded (the parent still emits its own ``grid_point``
spans).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.core.crc_cd import CRCCDDetector
from repro.core.detector import CollisionDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.experiments.config import ID_BITS, SimulationCase
from repro.obs import instruments as _inst
from repro.obs.registry import MetricsRegistry
from repro.obs.state import STATE as _OBS
from repro.sim.fast import bt_fast, fsa_fast
from repro.sim.metrics import InventoryStats

__all__ = [
    "GridPointJob",
    "ShardResult",
    "SerialExecutor",
    "ProcessExecutor",
    "make_detector",
    "make_executor",
    "run_rounds",
    "shard_rounds",
]


def make_detector(scheme: str, id_bits: int = ID_BITS) -> CollisionDetector:
    """Detector factory for grid keys: ``"crc"`` or ``"qcd-<strength>"``."""
    if scheme == "crc":
        return CRCCDDetector(id_bits=id_bits)
    if scheme.startswith("qcd-"):
        return QCDDetector(strength=int(scheme.split("-", 1)[1]))
    raise ValueError(f"unknown scheme {scheme!r}")


@dataclass(frozen=True)
class GridPointJob:
    """Everything a worker needs to run (a shard of) one grid point.

    ``children`` are the pre-spawned per-round ``SeedSequence`` children,
    in round order.  ``observe`` mirrors the parent's ``repro.obs``
    enabled flag at submission time.  ``batched`` selects the
    round-batched engine (the default; bit-identical to the streamed
    loop, so cache keys do not include it).
    """

    case: SimulationCase
    protocol: str
    scheme: str
    children: tuple[np.random.SeedSequence, ...]
    timing: TimingModel
    observe: bool = False
    batched: bool = True


@dataclass
class ShardResult:
    """One shard's rounds plus the worker-local metrics registry."""

    runs: list[InventoryStats]
    registry: MetricsRegistry | None = None


def run_rounds(job: GridPointJob) -> list[InventoryStats]:
    """Execute a job's rounds: one batched call, or a streamed loop.

    This is the only place rounds execute -- serial path, worker
    processes and tests all funnel through it, which is what makes the
    parallel results bit-identical to the serial ones.  A shard is one
    batched kernel call by default; ``batched=False`` replays the
    historical per-round loop (same results, round for round).
    """
    detector = make_detector(job.scheme, id_bits=job.timing.id_bits)
    obs_on = _OBS.enabled
    if job.batched:
        from repro.sim.batch import bt_fast_batch, fsa_fast_batch

        if job.protocol == "fsa":
            result = fsa_fast_batch(
                job.case.n_tags,
                job.case.frame_size,
                detector,
                job.timing,
                job.children,
            )
        elif job.protocol == "bt":
            result = bt_fast_batch(
                job.case.n_tags, detector, job.timing, job.children
            )
        else:
            raise ValueError(f"unknown protocol {job.protocol!r}")
        runs = list(result.runs)
        if obs_on and runs:
            _OBS.registry.counter(
                _inst.MC_ROUNDS, "Monte-Carlo rounds completed"
            ).inc(len(runs))
        return runs
    runs = []
    for child in job.children:
        rng = np.random.Generator(np.random.PCG64(child))
        if job.protocol == "fsa":
            stats = fsa_fast(
                job.case.n_tags,
                job.case.frame_size,
                detector,
                job.timing,
                rng,
            )
        elif job.protocol == "bt":
            stats = bt_fast(job.case.n_tags, detector, job.timing, rng)
        else:
            raise ValueError(f"unknown protocol {job.protocol!r}")
        runs.append(stats)
        if obs_on:
            _OBS.registry.counter(
                _inst.MC_ROUNDS, "Monte-Carlo rounds completed"
            ).inc()
    return runs


def shard_rounds(
    children: Sequence[np.random.SeedSequence], shards: int
) -> list[tuple[np.random.SeedSequence, ...]]:
    """Split the round children into <= ``shards`` contiguous chunks.

    Order is preserved and chunk sizes differ by at most one, so
    concatenating shard results reproduces the serial round order
    exactly.  Never returns an empty chunk (fewer chunks instead).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    n = len(children)
    shards = min(shards, n)
    base, extra = divmod(n, shards)
    out: list[tuple[np.random.SeedSequence, ...]] = []
    start = 0
    for k in range(shards):
        size = base + (1 if k < extra else 0)
        out.append(tuple(children[start : start + size]))
        start += size
    return out


def _run_shard_in_worker(job: GridPointJob) -> ShardResult:
    """Worker entry point: run a shard with worker-local obs state.

    Worker processes may be forked with the parent's observability state
    (flag and registry) already set, so this always installs a fresh
    registry first: with ``observe`` the shard counts into it and ships
    it home, without it the inherited flag is cleared so nothing counts
    twice.
    """
    from repro.obs import state as _obs_state

    if not job.observe:
        _obs_state.STATE.enabled = False
        return ShardResult(runs=run_rounds(job))
    _obs_state.STATE.registry = MetricsRegistry()
    _obs_state.STATE.enabled = True
    try:
        runs = run_rounds(job)
    finally:
        registry = _obs_state.STATE.registry
        _obs_state.STATE.registry = MetricsRegistry()
        _obs_state.STATE.enabled = False
    return ShardResult(runs=runs, registry=registry)


class SerialExecutor:
    """Inline executor: the historical single-process behaviour.

    Obs increments land directly on the caller's registry, so no merge
    step is needed.
    """

    workers = 1

    def run(self, job: GridPointJob) -> list[InventoryStats]:
        return run_rounds(job)

    def close(self) -> None:  # symmetric with ProcessExecutor
        pass


class ProcessExecutor:
    """``ProcessPoolExecutor``-backed executor.

    The pool is created lazily on first use and reused across grid
    points; call :meth:`close` (or use the owning suite as a context
    manager) to release the workers.
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError("ProcessExecutor needs workers >= 2")
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def run(self, job: GridPointJob) -> list[InventoryStats]:
        shards = shard_rounds(job.children, self.workers)
        if len(shards) == 1:
            # One round: not worth a process hop.
            return run_rounds(job)
        jobs = [replace(job, children=chunk) for chunk in shards]
        results = list(self._ensure_pool().map(_run_shard_in_worker, jobs))
        runs: list[InventoryStats] = []
        for shard in results:
            runs.extend(shard.runs)
            if shard.registry is not None:
                _OBS.registry.merge(shard.registry)
        return runs

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def make_executor(workers: int) -> SerialExecutor | ProcessExecutor:
    """Executor for ``workers`` processes (1 -> serial, N -> pool)."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1:
        return SerialExecutor()
    return ProcessExecutor(workers)
