"""Generators for the paper's figures (5, 6, 7, 8) as numeric series.

We regenerate the *data* each figure plots (the repository is plot-library
free); every function returns row dicts with the same series the paper
draws, so shapes and crossovers can be checked numerically and rendered by
any front end.
"""

from __future__ import annotations

from repro.analysis.ei import measured_ei
from repro.experiments.config import CASES, PAPER_FIG8_FSA, STRENGTHS
from repro.experiments.runner import ExperimentSuite

__all__ = ["fig5", "fig6", "fig7", "fig8"]


def fig5(suite: ExperimentSuite) -> list[dict[str, str]]:
    """Figure 5: QCD collision-detection accuracy per strength per case
    (FSA identification, Section VI-B)."""
    rows = []
    for name, case in CASES.items():
        row: dict[str, str] = {"case": f"{case.n_tags}"}
        for strength in STRENGTHS:
            agg = suite.run(case, "fsa", f"qcd-{strength}")
            row[f"{strength}-bit"] = f"{agg.accuracy:.6f}"
        rows.append(row)
    return rows


def fig6(suite: ExperimentSuite) -> list[dict[str, str]]:
    """Figure 6: average identification delay (and spread), CRC-CD vs
    QCD-8, per case.  The paper reports >80 % delay reduction and a
    tighter concentration for QCD."""
    rows = []
    for name, case in CASES.items():
        crc = suite.run(case, "fsa", "crc")
        qcd = suite.run(case, "fsa", "qcd-8")
        reduction = 1.0 - qcd.delay_mean / crc.delay_mean
        rows.append(
            {
                "case": f"{case.n_tags}",
                "CRC-CD delay (µs)": f"{crc.delay_mean:,.0f} ± {crc.delay_std:,.0f}",
                "QCD delay (µs)": f"{qcd.delay_mean:,.0f} ± {qcd.delay_std:,.0f}",
                "reduction": f"{reduction:.1%}",
            }
        )
    return rows


def fig7(suite: ExperimentSuite) -> list[dict[str, str]]:
    """Figure 7: total transmission time (µs), CRC-CD vs QCD-8, on FSA
    (panel a) and BT (panel b), per case."""
    rows = []
    for protocol in ("fsa", "bt"):
        for name, case in CASES.items():
            crc = suite.run(case, protocol, "crc")
            qcd = suite.run(case, protocol, "qcd-8")
            rows.append(
                {
                    "panel": "7(a) FSA" if protocol == "fsa" else "7(b) BT",
                    "case": f"{case.n_tags}",
                    "CRC-CD time (µs)": f"{crc.total_time:,.0f}",
                    "QCD time (µs)": f"{qcd.total_time:,.0f}",
                    "ratio": f"{qcd.total_time / crc.total_time:.3f}",
                }
            )
    return rows


def fig8(suite: ExperimentSuite) -> list[dict[str, str]]:
    """Figure 8: measured EI of QCD over CRC-CD per case per strength,
    on FSA (panel a) and BT (panel b)."""
    rows = []
    for protocol in ("fsa", "bt"):
        for name, case in CASES.items():
            crc = suite.run(case, protocol, "crc")
            row: dict[str, str] = {
                "panel": "8(a) FSA" if protocol == "fsa" else "8(b) BT",
                "case": f"{case.n_tags}",
            }
            for strength in STRENGTHS:
                qcd = suite.run(case, protocol, f"qcd-{strength}")
                ei = measured_ei(crc.total_time, qcd.total_time)
                row[f"strength={strength}"] = f"{ei:.4f}"
            if protocol == "fsa":
                row["paper (8-bit)"] = f"{PAPER_FIG8_FSA[name]:.2f}"
            rows.append(row)
    return rows
