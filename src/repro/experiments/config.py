"""Simulation cases and paper constants (Tables V and VI).

Parameters follow Section VI-A: 64-bit IDs with 32-bit CRCs (the paper's
Table V also mentions 96-bit EPCs; the timing analysis and all results use
64 + 32 = 96 transmitted bits), τ = 1 µs per bit, strengths 4/8/16, 100
Monte-Carlo rounds.

Case IV is 50 000 tags: Table VI prints "5000", but Table VII/VIII and the
text report 50 000 (see DESIGN.md, "known paper inconsistencies").

``PAPER_*`` dicts carry the published numbers so EXPERIMENTS.md and the
benchmarks can print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SimulationCase",
    "CASES",
    "STRENGTHS",
    "ID_BITS",
    "CRC_BITS",
    "TAU",
    "DEFAULT_ROUNDS",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE7",
    "PAPER_TABLE8",
    "PAPER_TABLE9",
    "PAPER_FIG8_FSA",
]

ID_BITS = 64
CRC_BITS = 32
TAU = 1.0  # µs per bit
STRENGTHS = (4, 8, 16)
DEFAULT_ROUNDS = 100


@dataclass(frozen=True)
class SimulationCase:
    """One column of Table VI."""

    name: str
    n_tags: int
    frame_size: int


CASES: dict[str, SimulationCase] = {
    "I": SimulationCase("I", 50, 30),
    "II": SimulationCase("II", 500, 300),
    "III": SimulationCase("III", 5000, 3000),
    "IV": SimulationCase("IV", 50_000, 30_000),
}

#: Table II: theoretical minimum EI on FSA per strength.
PAPER_TABLE2 = {4: 0.6698, 8: 0.5864, 16: 0.4198}

#: Table III: average EI on BT per strength.
PAPER_TABLE3 = {4: 0.6856, 8: 0.6023, 16: 0.4356}

#: Table VII: FSA slot distribution (frames, idle, single, collided,
#: throughput).  NOTE: case I's idle/collided appear swapped in the paper
#: (see DESIGN.md); values are reproduced verbatim here.
PAPER_TABLE7 = {
    "I": {"frames": 6, "idle": 39, "single": 50, "collided": 110, "throughput": 0.25},
    "II": {"frames": 7, "idle": 1376, "single": 500, "collided": 394, "throughput": 0.22},
    "III": {"frames": 8, "idle": 15217, "single": 5000, "collided": 3962, "throughput": 0.20},
    "IV": {"frames": 8, "idle": 164477, "single": 50000, "collided": 39622, "throughput": 0.20},
}

#: Table VIII: BT slot distribution ("frames" column = total slots).
PAPER_TABLE8 = {
    "I": {"frames": 137, "idle": 19, "single": 50, "collided": 68, "throughput": 0.36},
    "II": {"frames": 1426, "idle": 214, "single": 500, "collided": 712, "throughput": 0.35},
    "III": {"frames": 14374, "idle": 2187, "single": 5000, "collided": 7187, "throughput": 0.34},
    "IV": {"frames": 143998, "idle": 21999, "single": 50000, "collided": 71999, "throughput": 0.34},
}

#: Table IX: QCD utilization rate per strength per case (FSA).
PAPER_TABLE9 = {
    "I": {4: 0.6678, 8: 0.5013, 16: 0.3344},
    "II": {4: 0.6380, 8: 0.4684, 16: 0.3058},
    "III": {4: 0.6233, 8: 0.4527, 16: 0.2926},
    "IV": {4: 0.6115, 8: 0.4403, 16: 0.2824},
}

#: Figure 8(a): measured EI of QCD-8 over CRC-CD on FSA per case (text of
#: Section VI-E).
PAPER_FIG8_FSA = {"I": 0.65, "II": 0.68, "III": 0.69, "IV": 0.70}
