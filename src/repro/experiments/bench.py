"""``repro-bench`` -- kernel throughput measurement and regression gate.

Measures wall-clock per Monte-Carlo round for the streamed kernels
(:mod:`repro.sim.fast`), the round-batched kernels
(:mod:`repro.sim.batch`) and the exact Reader's three tiers -- object,
per-slot uint64 packed, and frame-batched -- then writes a
machine-readable ``BENCH_kernels.json`` (and, with ``--reader-out``, a
reader-only document matching ``benchmarks/BENCH_reader.json``).

Because absolute timings are machine-bound, the regression gate compares
*within-run speedup ratios* (batched over streamed, packed/frame-batched
over object), which transfer across machines::

    repro-bench --quick --out BENCH_kernels.json \\
                --baseline benchmarks/BENCH_kernels.json \\
                --reader-out BENCH_reader.json \\
                --reader-baseline benchmarks/BENCH_reader.json

fails (exit 1) when a batched kernel drops below streamed throughput or
when any speedup ratio regresses more than ``--tolerance`` (default 25%)
against the committed baseline.  When a ``--frozen-dir`` containing the
vendored pre-batching kernels (``benchmarks/_reference_kernels.py``) is
present, the frozen engines are measured too, so the report carries the
full ablation story; the gate never depends on them.

The committed baseline is regenerated after an *intentional* perf change
with the same command CI runs (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
import time
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.protocols.estimators import SchouteEstimator
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.batch import bt_fast_batch, dfsa_fast_batch, fsa_fast_batch
from repro.sim.fast import bt_fast, dfsa_fast, fsa_fast
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation
from repro.bits.rng import make_rng

__all__ = [
    "main",
    "build_parser",
    "run_bench",
    "check_against_baseline",
    "check_reader_against_baseline",
]

#: Case IV of the paper's evaluation (50 000 tags), the ISSUE's reference
#: point; ``--quick`` scales it down with the same n/F ratio for CI.
FULL = {"n_tags": 50_000, "frame_size": 30_000, "rounds": 10, "repeats": 3,
        "reader_tags": 1_000}
QUICK = {"n_tags": 4_000, "frame_size": 2_400, "rounds": 6, "repeats": 2,
         "reader_tags": 300}


def _time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time in seconds (min rejects noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _children(salt: int, rounds: int):
    return np.random.SeedSequence([20_100, salt]).spawn(rounds)


def _gens(kids):
    return [np.random.Generator(np.random.PCG64(c)) for c in kids]


def _load_frozen(frozen_dir: str | None):
    """The vendored pre-batching kernels, or None outside a checkout."""
    if not frozen_dir:
        return None
    path = Path(frozen_dir)
    if not (path / "_reference_kernels.py").is_file():
        return None
    sys.path.insert(0, str(path))
    try:
        return importlib.import_module("_reference_kernels")
    finally:
        sys.path.remove(str(path))


def run_bench(
    n_tags: int,
    frame_size: int,
    rounds: int,
    repeats: int,
    reader_tags: int,
    frozen=None,
) -> dict:
    """Measure every engine and return the report document."""
    timing = TimingModel()
    det = QCDDetector(8)
    kernels: dict[str, dict[str, float]] = {}

    variants: dict[str, dict[str, Callable[[], object]]] = {
        "fsa": {
            "streamed": lambda: [
                fsa_fast(n_tags, frame_size, det, timing, g)
                for g in _gens(_children(1, rounds))
            ],
            "batched": lambda: fsa_fast_batch(
                n_tags, frame_size, det, timing, _children(1, rounds)
            ),
        },
        "dfsa": {
            "streamed": lambda: [
                dfsa_fast(
                    n_tags, frame_size, SchouteEstimator(), det, timing, g,
                    max_frame_size=1 << 17,
                )
                for g in _gens(_children(2, rounds))
            ],
            "batched": lambda: dfsa_fast_batch(
                n_tags, frame_size, SchouteEstimator(), det, timing,
                _children(2, rounds), max_frame_size=1 << 17,
            ),
        },
        "bt": {
            "streamed": lambda: [
                bt_fast(n_tags, det, timing, g)
                for g in _gens(_children(3, rounds))
            ],
            "batched": lambda: bt_fast_batch(
                n_tags, det, timing, _children(3, rounds)
            ),
        },
    }
    if frozen is not None:
        variants["fsa"]["frozen"] = lambda: [
            frozen.fsa_fast(n_tags, frame_size, det, timing, g)
            for g in _gens(_children(1, rounds))
        ]
        variants["dfsa"]["frozen"] = lambda: [
            frozen.dfsa_fast(
                n_tags, frame_size, SchouteEstimator(), det, timing, g,
                max_frame_size=1 << 17,
            )
            for g in _gens(_children(2, rounds))
        ]
        # The frozen BT walker is ~10x slower; one round is plenty.
        variants["bt"]["frozen"] = lambda: [
            frozen.bt_fast(n_tags, det, timing, g)
            for g in _gens(_children(3, 1))
        ]

    for proto, engines in variants.items():
        # Interleave the engines within each repeat (and take at least
        # best-of-5): the gate compares ratios, and alternating keeps a
        # sustained noise spike from biasing one engine only.
        best = {name: float("inf") for name in engines}
        for _ in range(max(repeats, 5)):
            for name, fn in engines.items():
                best[name] = min(best[name], _time(fn, 1))
        entry: dict[str, float] = {}
        for engine in engines:
            n_r = 1 if engine == "frozen" and proto == "bt" else rounds
            entry[f"{engine}_ms_per_round"] = best[engine] / n_r * 1_000.0
        entry["batch_speedup_vs_streamed"] = (
            entry["streamed_ms_per_round"] / entry["batched_ms_per_round"]
        )
        if "frozen_ms_per_round" in entry:
            entry["batch_speedup_vs_frozen"] = (
                entry["frozen_ms_per_round"] / entry["batched_ms_per_round"]
            )
        kernels[proto] = entry

    def reader_once(packed: bool, frame_batched: bool = True) -> float:
        # A fresh population per run is required (identification is
        # destructive), but spawning its per-tag RNG streams is setup,
        # not Reader work -- keep it outside the timed window so the
        # tier ratios measure the inventory loop itself.
        pop = TagPopulation(
            reader_tags, id_bits=timing.id_bits, rng=make_rng(99)
        )
        reader = Reader(
            QCDDetector(8), timing, packed=packed,
            frame_batched=frame_batched,
        )
        t0 = time.perf_counter()
        reader.run_inventory(pop.tags, FramedSlottedAloha(max(1, reader_tags)))
        return time.perf_counter() - t0

    # Interleave the three reader tiers within each repeat (and take at
    # least best-of-5): the ratios are what the gate compares, and
    # alternating keeps a sustained noise spike from biasing one tier.
    t_obj = t_packed = t_batched = float("inf")
    for _ in range(max(repeats, 5)):
        t_obj = min(t_obj, reader_once(False))
        t_packed = min(t_packed, reader_once(True, frame_batched=False))
        t_batched = min(t_batched, reader_once(True))
    return {
        "config": {
            "n_tags": n_tags,
            "frame_size": frame_size,
            "rounds": rounds,
            "repeats": repeats,
            "reader_tags": reader_tags,
            "scheme": "qcd-8",
            "frozen_measured": frozen is not None,
        },
        "kernels": kernels,
        "reader": {
            "object_ms": t_obj * 1_000.0,
            "packed_ms": t_packed * 1_000.0,
            "batched_ms": t_batched * 1_000.0,
            "packed_speedup": t_obj / t_packed,
            "batched_speedup": t_obj / t_batched,
            "batched_speedup_vs_packed": t_packed / t_batched,
        },
    }


def check_against_baseline(
    report: dict, baseline: dict, tolerance: float
) -> list[str]:
    """Ratio-based regression findings (empty when the gate passes)."""
    problems: list[str] = []
    for proto, entry in report["kernels"].items():
        ratio = entry["batch_speedup_vs_streamed"]
        if ratio < 1.0:
            problems.append(
                f"{proto}: batched kernel is slower than streamed "
                f"(speedup {ratio:.2f}x < 1.0x)"
            )
        base = baseline.get("kernels", {}).get(proto, {}).get(
            "batch_speedup_vs_streamed"
        )
        if base is not None and ratio < base * (1.0 - tolerance):
            problems.append(
                f"{proto}: batch speedup regressed {ratio:.2f}x vs "
                f"baseline {base:.2f}x (> {tolerance:.0%} drop)"
            )
    problems.extend(
        check_reader_against_baseline(report, baseline, tolerance)
    )
    cur_b = report["reader"].get("batched_speedup")
    if cur_b is not None and cur_b < 1.0:
        problems.append(
            "reader: frame-batched path is slower than the object path "
            f"(speedup {cur_b:.2f}x < 1.0x)"
        )
    return problems


def check_reader_against_baseline(
    report: dict, baseline: dict, tolerance: float
) -> list[str]:
    """Reader-tier ratio regressions vs a baseline document.

    Accepts either the full kernel report or the reader-only
    ``BENCH_reader.json`` document as ``baseline`` -- both carry a
    ``"reader"`` mapping.  Ratios missing on either side are skipped, so
    a pre-frame-batching baseline still gates the per-slot ratio.
    """
    problems: list[str] = []
    base_reader = baseline.get("reader", {})
    reader = report["reader"]
    for key, label in (
        ("packed_speedup", "packed"),
        ("batched_speedup", "frame-batched"),
    ):
        base = base_reader.get(key)
        cur = reader.get(key)
        if base is not None and cur is not None and cur < base * (
            1.0 - tolerance
        ):
            problems.append(
                f"reader: {label} speedup regressed {cur:.2f}x vs "
                f"baseline {base:.2f}x (> {tolerance:.0%} drop)"
            )
    return problems


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Measure streamed vs round-batched kernel throughput and the "
            "Reader's object vs uint64 paths; gate CI on speedup ratios."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizes (scaled-down case IV, same n/F ratio)",
    )
    parser.add_argument("--n-tags", type=int, default=None)
    parser.add_argument("--frame-size", type=int, default=None)
    parser.add_argument(
        "--rounds", type=int, default=None, help="rounds per measurement"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="measurements per engine (best-of)",
    )
    parser.add_argument("--reader-tags", type=int, default=None)
    parser.add_argument(
        "--out",
        default="BENCH_kernels.json",
        metavar="FILE",
        help="report path (default BENCH_kernels.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="committed baseline to gate speedup ratios against",
    )
    parser.add_argument(
        "--reader-out",
        default=None,
        metavar="FILE",
        help=(
            "also write a reader-only document (config + reader tiers), "
            "the shape committed as benchmarks/BENCH_reader.json"
        ),
    )
    parser.add_argument(
        "--reader-baseline",
        default=None,
        metavar="FILE",
        help=(
            "committed reader baseline (BENCH_reader.json) to gate the "
            "reader speedup ratios against"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional ratio regression vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--frozen-dir",
        default="benchmarks",
        metavar="DIR",
        help=(
            "directory holding _reference_kernels.py (the vendored "
            "pre-batching engines); skipped silently when absent"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    params = dict(QUICK if args.quick else FULL)
    for key in params:
        override = getattr(args, key)
        if override is not None:
            params[key] = override
    frozen = _load_frozen(args.frozen_dir)
    report = run_bench(frozen=frozen, **params)

    for proto, entry in report["kernels"].items():
        line = (
            f"{proto:>5}: streamed {entry['streamed_ms_per_round']:8.2f} "
            f"ms/round | batched {entry['batched_ms_per_round']:8.2f} "
            f"ms/round | {entry['batch_speedup_vs_streamed']:.2f}x"
        )
        if "batch_speedup_vs_frozen" in entry:
            line += f" ({entry['batch_speedup_vs_frozen']:.2f}x vs frozen)"
        print(line)
    rd = report["reader"]
    print(
        f"reader: object {rd['object_ms']:8.2f} ms | packed "
        f"{rd['packed_ms']:8.2f} ms | batched {rd['batched_ms']:8.2f} ms "
        f"| {rd['packed_speedup']:.2f}x / {rd['batched_speedup']:.2f}x"
    )

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    if args.reader_out:
        reader_out = Path(args.reader_out)
        reader_doc = {"config": report["config"], "reader": report["reader"]}
        reader_out.write_text(
            json.dumps(reader_doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {reader_out}")

    problems: list[str] = []
    gates: list[str] = []
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        problems += check_against_baseline(report, baseline, args.tolerance)
        gates.append(args.baseline)
    if args.reader_baseline:
        reader_baseline = json.loads(Path(args.reader_baseline).read_text())
        problems += check_reader_against_baseline(
            report, reader_baseline, args.tolerance
        )
        gates.append(args.reader_baseline)
    if gates:
        for p in problems:
            print(f"REGRESSION: {p}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"gate OK vs {', '.join(gates)} "
            f"(tolerance {args.tolerance:.0%})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
