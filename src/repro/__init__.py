"""repro -- reproduction of *Revisiting Tag Collision Problem in RFID
Systems* (Yang et al., ICPP 2010).

The paper proposes **QCD (Quick Collision Detection)**: RFID tags prepend a
collision preamble ``r ⊕ r̄`` (a random integer and its bitwise complement)
to their replies, letting the reader classify idle / single / collided
slots from a 16-bit signal instead of a 96-bit ID+CRC, cutting the
identification time of standard anti-collision protocols by more than 40 %.

Quick start
-----------

>>> from repro import (
...     QCDDetector, CRCCDDetector, FramedSlottedAloha, Reader,
...     TagPopulation, TimingModel, make_rng,
... )
>>> rng = make_rng(42)
>>> tags = TagPopulation(50, id_bits=64, rng=rng)
>>> reader = Reader(QCDDetector(strength=8), TimingModel())
>>> result = reader.run_inventory(tags.tags, FramedSlottedAloha(frame_size=30))
>>> result.stats.true_counts.single
50

Package layout
--------------

====================  ===================================================
``repro.core``        QCD, CRC-CD, timing & cost models (the contribution)
``repro.bits``        bit vectors, Boolean-sum channel, CRC engines, RNG
``repro.tags``        EPC IDs, tag state, populations, mobility
``repro.protocols``   FSA / DFSA / Q-adaptive / BT / QT / ABS / AQS
``repro.sim``         reader, metrics, mobility engine, deployment, kernels
``repro.analysis``    Lemmas 1-2, EI formulas, accuracy & cost models
``repro.security``    blocker tags, backward-channel protection, entropy
``repro.experiments`` table/figure regeneration harness + CLI
``repro.obs``         metrics registry, span tracing, profiling timers
====================  ===================================================
"""

from repro.bits import BitVector, Channel, CrcEngine, make_rng
from repro.core import (
    CRCCDDetector,
    IdealDetector,
    QCDDetector,
    SlotType,
    TimingModel,
)
from repro.protocols import (
    AdaptiveBinarySplitting,
    AdaptiveQuerySplitting,
    BinaryTree,
    DynamicFSA,
    FramedSlottedAloha,
    QAdaptive,
    QueryTree,
)
from repro.sim import (
    Deployment,
    InventoryStats,
    MobileInventoryEngine,
    Reader,
    run_multireader_inventory,
)
from repro.tags import Tag, TagPopulation

__version__ = "1.0.0"

__all__ = [
    "BitVector",
    "Channel",
    "CrcEngine",
    "make_rng",
    "SlotType",
    "QCDDetector",
    "CRCCDDetector",
    "IdealDetector",
    "TimingModel",
    "Tag",
    "TagPopulation",
    "FramedSlottedAloha",
    "DynamicFSA",
    "QAdaptive",
    "BinaryTree",
    "QueryTree",
    "AdaptiveBinarySplitting",
    "AdaptiveQuerySplitting",
    "Reader",
    "InventoryStats",
    "MobileInventoryEngine",
    "Deployment",
    "run_multireader_inventory",
    "__version__",
]
