"""Application-level protocols built on the identification substrate.

The paper motivates RFID with logistics, retail and asset management --
applications that, beyond inventorying unknown tags, routinely ask
*verification* questions against a known manifest.

* :mod:`repro.apps.missing_tags` -- missing-tag detection: given the
  expected ID list, find which tags are absent without reading a single
  full ID, using hash-scheduled presence slots.  Like cardinality
  estimation, every slot is an overhead slot, so QCD's short preambles
  yield their full 6x airtime advantage.
* :mod:`repro.apps.unknown_tags` -- the dual: detect (or certify the
  absence of) *alien* tags that are present but not on the manifest,
  from energy in slots the manifest predicts silent.
"""

from repro.apps.missing_tags import (
    MissingTagResult,
    detect_missing_tags,
    expected_rounds,
)
from repro.apps.unknown_tags import (
    UnknownTagResult,
    detect_unknown_tags,
    rounds_for_confidence,
)

__all__ = [
    "detect_missing_tags",
    "MissingTagResult",
    "expected_rounds",
    "detect_unknown_tags",
    "UnknownTagResult",
    "rounds_for_confidence",
]
