"""Unknown-tag (alien) detection against a known manifest.

The dual of :mod:`repro.apps.missing_tags`: everything on the pallet is
supposed to be on the manifest -- is anything *extra* present (misplaced
stock, counterfeit, a foreign pallet bleeding over)?

Hash-scheduled presence slots answer this from pure energy observations
too, just with the opposite inference: the reader precomputes which slots
its expected tags occupy; an alien tag hashes into a slot uniformly, so
with probability ``≈ e^{-load}`` it lands in a slot the reader expects to
be **silent** -- any energy there is an alien, full stop.  Each fresh
round re-rolls the hash, so an alien that hid under expected energy in
one round is exposed geometrically fast:

    P(alien still hidden after k rounds) = (1 − p0)^k,   p0 ≈ e^{-load}

The reader either stops at first evidence (``mode="detect"``) or runs the
rounds needed to *certify cleanliness* at a target confidence
(``mode="certify"``).  As with all identification-free workloads, QCD's
2l-bit presence replies realize their full airtime factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.detector import CollisionDetector, SlotType
from repro.core.timing import TimingModel

__all__ = ["UnknownTagResult", "detect_unknown_tags", "rounds_for_confidence"]


@dataclass(frozen=True)
class UnknownTagResult:
    """Outcome of an alien-detection sweep."""

    expected: int
    aliens_present: int
    alien_detected: bool
    rounds: int
    slots: int
    airtime: float
    #: Probability that a single alien would have evaded every round run
    #: (the residual risk when nothing was detected).
    evasion_probability: float

    @property
    def clean_confidence(self) -> float:
        """Confidence that no alien is present, given none was detected."""
        return 1.0 - self.evasion_probability


def rounds_for_confidence(confidence: float, load: float = 1.0) -> int:
    """Rounds needed so one alien evades with probability < 1 − confidence."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    p0 = math.exp(-load)
    return max(1, math.ceil(math.log(1.0 - confidence) / math.log(1.0 - p0)))


def detect_unknown_tags(
    expected_count: int,
    alien_count: int,
    detector: CollisionDetector,
    timing: TimingModel,
    rng: np.random.Generator,
    load: float = 1.0,
    mode: str = "detect",
    confidence: float = 0.999,
    max_rounds: int = 10_000,
) -> UnknownTagResult:
    """Run alien-detection rounds over a population.

    Parameters
    ----------
    expected_count / alien_count:
        Sizes of the manifest and of the aliens actually present (the
        simulation needs only the counts: slot choices are uniform).
    mode:
        ``"detect"`` stops at the first alien evidence;
        ``"certify"`` always runs :func:`rounds_for_confidence` rounds and
        reports whether anything showed up.
    """
    if expected_count < 0 or alien_count < 0:
        raise ValueError("counts must be non-negative")
    if load <= 0:
        raise ValueError("load must be positive")
    if mode not in ("detect", "certify"):
        raise ValueError("mode must be 'detect' or 'certify'")
    frame = max(2, int(math.ceil(max(1, expected_count) / load)))
    dur_idle = timing.slot_duration(detector, SlotType.IDLE)
    reply_cost = detector.contention_bits * timing.tau
    target_rounds = (
        rounds_for_confidence(confidence, load) if mode == "certify" else max_rounds
    )
    detected = False
    rounds = 0
    slots = 0
    airtime = 0.0
    p0 = math.exp(-load)
    while rounds < target_rounds:
        rounds += 1
        slots += frame
        expected_slots = rng.integers(0, frame, expected_count)
        occupancy = np.bincount(expected_slots, minlength=frame)
        energy = occupancy > 0
        if alien_count:
            alien_slots = rng.integers(0, frame, alien_count)
            exposed = ~energy[alien_slots]
            np.logical_or.at(energy, alien_slots, True)
            if exposed.any():
                detected = True
        airtime += float((~energy).sum()) * dur_idle
        airtime += float(energy.sum()) * reply_cost
        if detected and mode == "detect":
            break
    return UnknownTagResult(
        expected=expected_count,
        aliens_present=alien_count,
        alien_detected=detected,
        rounds=rounds,
        slots=slots,
        airtime=airtime,
        evasion_probability=(1.0 - p0) ** rounds,
    )
