"""Missing-tag detection against a known manifest.

Setting (Tan-Sheng-Li "Trusted Reader" lineage, the verification twin of
the paper's identification problem): the reader holds the *expected* ID
list -- a shipping manifest, a shelf plan -- and must determine which tags
are absent, fast.  Because the reader knows the IDs, no tag ever needs to
transmit one:

1. the reader broadcasts a frame size ℱ and a round seed; every expected
   tag derives its slot as ``hash(id, seed) mod ℱ`` -- the reader
   precomputes the full expected occupancy;
2. a slot expected to hold exactly **one** tag is a *presence test*: a
   reply proves that tag present, silence proves it missing;
3. a slot expected to hold **several** tags is informative only when it
   is silent -- then *all* of its tags are missing; any energy there
   leaves them unresolved;
4. resolved tags are muted (Gen2 SELECT) and the reader re-runs with a
   fresh seed over the remainder, so each round resolves ≈ e^{-1}·|rest|
   singleton slots plus all silent groups.

Collision detection is irrelevant to correctness here (the reader needs
only energy/no-energy per slot) but decides the *airtime*: replies are
whatever the framing prescribes -- a 2l-bit QCD preamble versus a 96-bit
``id ⊕ crc`` -- so QCD gets its full 6x, exactly as in cardinality
estimation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.detector import CollisionDetector, SlotType
from repro.core.timing import TimingModel

__all__ = ["MissingTagResult", "detect_missing_tags", "expected_rounds"]


@dataclass(frozen=True)
class MissingTagResult:
    """Outcome of a verification sweep."""

    expected: int
    present: int
    missing_ids: frozenset[int]
    rounds: int
    slots: int
    airtime: float

    @property
    def missing_count(self) -> int:
        return len(self.missing_ids)

    @property
    def slots_per_tag(self) -> float:
        return self.slots / self.expected if self.expected else 0.0


def expected_rounds(n: int, load: float = 1.0) -> float:
    """Rough round count: each round resolves the singleton fraction
    ``e^{-load}`` (plus silent groups), so unresolved mass shrinks
    geometrically: ``rounds ≈ ln(n) / -ln(1 − e^{-load})``."""
    if n <= 1:
        return 1.0
    resolve = math.exp(-load)
    return math.log(n) / -math.log(1.0 - resolve)


def detect_missing_tags(
    expected_ids: Sequence[int],
    present_ids: Sequence[int],
    detector: CollisionDetector,
    timing: TimingModel,
    rng: np.random.Generator,
    load: float = 1.0,
    max_rounds: int = 10_000,
) -> MissingTagResult:
    """Classify every expected tag as present or missing.

    Parameters
    ----------
    expected_ids / present_ids:
        The manifest and the tags actually in range; ``present_ids`` must
        be a subset of ``expected_ids`` (closed-world verification --
        alien tags are a SELECT mask away and out of scope here).
    load:
        Expected tags per slot (ℱ = ceil(unresolved / load)); 1.0 is the
        singleton-maximizing choice.
    """
    expected = np.asarray(sorted(set(expected_ids)), dtype=np.int64)
    present_set = set(present_ids)
    if not present_set <= set(expected_ids):
        raise ValueError("present_ids must be a subset of expected_ids")
    if load <= 0:
        raise ValueError("load must be positive")
    present = np.array([i in present_set for i in expected], dtype=bool)

    dur_idle = timing.slot_duration(detector, SlotType.IDLE)
    reply_cost = detector.contention_bits * timing.tau

    unresolved = np.ones(expected.shape[0], dtype=bool)
    missing: set[int] = set()
    slots = 0
    airtime = 0.0
    rounds = 0
    while unresolved.any():
        if rounds >= max_rounds:
            raise RuntimeError(f"verification exceeded max_rounds={max_rounds}")
        rounds += 1
        idx = np.nonzero(unresolved)[0]
        frame = max(1, int(math.ceil(idx.size / load)))
        # The shared hash: reader and tags derive the same slots.  In the
        # simulation one draw per unresolved tag stands in for
        # hash(id, seed) mod frame.
        tag_slots = rng.integers(0, frame, idx.size)
        occupancy = np.bincount(tag_slots, minlength=frame)
        energy = np.zeros(frame, dtype=bool)
        np.logical_or.at(energy, tag_slots[present[idx]], True)
        slots += frame
        # Airtime: silent slots cost the idle classification; energetic
        # slots carry superposed presence replies -- one contention window.
        airtime += float((~energy).sum()) * dur_idle
        airtime += float(energy.sum()) * reply_cost
        # Resolution rules.
        singleton = occupancy == 1
        for k, slot in enumerate(tag_slots):
            tag_index = idx[k]
            if singleton[slot]:
                if not energy[slot]:
                    missing.add(int(expected[tag_index]))
                unresolved[tag_index] = False
            elif not energy[slot]:
                # Silent group slot: everyone expected there is missing.
                missing.add(int(expected[tag_index]))
                unresolved[tag_index] = False
    return MissingTagResult(
        expected=int(expected.size),
        present=int(present.sum()),
        missing_ids=frozenset(missing),
        rounds=rounds,
        slots=slots,
        airtime=airtime,
    )
