"""Tag-report recorders for the gateway client (CSV / NDJSON).

The gateway streams :class:`~repro.gateway.codec.TagReport` frames;
these sinks persist them the way sllurp's ``csv_recorder`` persists
LLRP tag reads -- append-only, one row/line per report, flushed as
written so a tail of the file tracks a live inventory.

Both sinks share the same field set (:data:`FIELDS`), so a CSV row and
an NDJSON object of the same report carry identical information;
``tag_id_hex`` is the 64-bit id zero-padded to 16 hex digits (the
"EPC-looking" rendering).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.gateway.codec import TagReport

__all__ = ["FIELDS", "ReportSink", "CsvSink", "NdjsonSink", "fanout"]

#: Column / key order shared by every sink.
FIELDS = (
    "reader_id",
    "session",
    "slot",
    "frame",
    "tag_id",
    "tag_id_hex",
    "airtime",
)


def _row(report: TagReport) -> dict[str, object]:
    return {
        "reader_id": report.reader_id,
        "session": report.session,
        "slot": report.slot,
        "frame": report.frame,
        "tag_id": report.tag_id,
        "tag_id_hex": f"{report.tag_id:016x}",
        "airtime": report.airtime,
    }


class ReportSink:
    """Base class: ``write`` one report, ``close`` when done."""

    def write(self, report: TagReport) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "ReportSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CsvSink(ReportSink):
    """Append reports to a CSV file (header written once per file)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        write_header = (
            not self.path.exists() or self.path.stat().st_size == 0
        )
        self._fh = self.path.open("a", newline="")
        self._writer = csv.DictWriter(self._fh, fieldnames=FIELDS)
        if write_header:
            self._writer.writeheader()
            self._fh.flush()

    def write(self, report: TagReport) -> None:
        self._writer.writerow(_row(report))
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


class NdjsonSink(ReportSink):
    """Append reports as one JSON object per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = self.path.open("a")

    def write(self, report: TagReport) -> None:
        self._fh.write(
            json.dumps(_row(report), separators=(",", ":")) + "\n"
        )
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


def fanout(
    sinks: Sequence[ReportSink] | Iterable[ReportSink],
) -> Callable[[TagReport], None]:
    """An ``on_report`` callback writing each report to every sink."""
    sinks = list(sinks)

    def write(report: TagReport) -> None:
        for sink in sinks:
            sink.write(report)

    return write
