"""Blocking gateway client: connect, start inventories, stream reports.

The client side of :mod:`repro.gateway.codec`, built on a plain
``socket`` (no asyncio -- scripts, tests and the CI smoke job drive it
synchronously, the way sllurp's tools drive an LLRP reader):

* :class:`GatewayClient` -- one TCP connection with frame send/receive,
  request/reply helpers (:meth:`~GatewayClient.capabilities`,
  :meth:`~GatewayClient.ping`, :meth:`~GatewayClient.start_inventory`,
  :meth:`~GatewayClient.iter_reports`, :meth:`~GatewayClient.stop`) and
  typed errors (:class:`GatewayBusy`, :class:`GatewayRefused`, ...);
* :meth:`~GatewayClient.run_inventory` -- the resilient one-call flow:
  start, stream, and on a torn connection *reconnect with backoff and
  resume*.  Resume needs no server-side state: the same spec reruns the
  same deterministic simulation, so the client just deduplicates tag
  ids it has already seen (``same seed => same population => same
  trace``, the contract of :mod:`repro.gateway.readers`);
* a CLI (``python -m repro.gateway.client``) that runs one inventory
  and records reports through :mod:`repro.gateway.sinks`.

A subtlety worth naming: one ``recv`` can carry many frames, so the
client keeps the reassembler's surplus in a pending queue and always
drains it before touching the socket again -- otherwise frames already
buffered in userspace would wait on network bytes that may never come.
"""

from __future__ import annotations

import argparse
import socket
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.gateway import codec

__all__ = [
    "GatewayError",
    "GatewayClosed",
    "GatewayBusy",
    "GatewayRefused",
    "ReconnectPolicy",
    "InventorySummary",
    "GatewayClient",
    "main",
    "build_parser",
]


class GatewayError(Exception):
    """Base class for everything the client raises on purpose."""


class GatewayClosed(GatewayError):
    """The connection died (EOF, reset, timeout) -- retryable."""


class GatewayRefused(GatewayError):
    """The gateway answered with a typed ERROR frame."""

    def __init__(self, frame: codec.ErrorFrame) -> None:
        super().__init__(f"{frame.code}: {frame.message}")
        self.code = frame.code
        self.frame = frame


class GatewayBusy(GatewayRefused):
    """ERROR ``busy``: the reader has a running session -- retryable."""


def _refusal(frame: codec.ErrorFrame) -> GatewayRefused:
    if frame.code in ("busy", "draining"):
        return GatewayBusy(frame)
    return GatewayRefused(frame)


@dataclass(frozen=True)
class ReconnectPolicy:
    """Exponential backoff for :meth:`GatewayClient.run_inventory`.

    ``attempts`` bounds *consecutive* failures; any streamed report
    resets the budget, so a flaky link retries indefinitely only while
    it keeps making progress.
    """

    attempts: int = 5
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0

    def delays(self) -> Iterator[float]:
        delay = self.backoff_s
        for _ in range(self.attempts):
            yield delay
            delay = min(delay * self.multiplier, self.max_backoff_s)


@dataclass
class InventorySummary:
    """What :meth:`GatewayClient.run_inventory` hands back."""

    reports: list[codec.TagReport] = field(default_factory=list)
    complete: codec.InventoryComplete | None = None
    reconnects: int = 0

    @property
    def tag_ids(self) -> set[int]:
        return {r.tag_id for r in self.reports}


class GatewayClient:
    """A blocking client for one ``repro-gateway`` endpoint.

    Usable as a context manager; :meth:`connect` is implicit on first
    use and explicit after :class:`GatewayClosed`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout_s: float = 30.0,
        reconnect: ReconnectPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.reconnect = reconnect if reconnect is not None else ReconnectPolicy()
        self._sock: socket.socket | None = None
        self._reassembler = codec.FrameReassembler()
        self._pending: deque[codec.Frame] = deque()

    # -- connection -----------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> None:
        """(Re)open the TCP connection, resetting stream state."""
        self.close()
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        except OSError as exc:
            raise GatewayClosed(f"connect failed: {exc}") from exc
        self._reassembler = codec.FrameReassembler()
        self._pending.clear()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def __enter__(self) -> "GatewayClient":
        if not self.connected:
            self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- frame plumbing -------------------------------------------------

    def _require_sock(self) -> socket.socket:
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        return self._sock

    def send_frame(self, frame: codec.Frame) -> None:
        sock = self._require_sock()
        try:
            sock.sendall(codec.encode_frame(frame))
        except OSError as exc:
            self.close()
            raise GatewayClosed(f"send failed: {exc}") from exc

    def recv_frame(self) -> codec.Frame:
        """Next frame: drains the pending queue before reading the
        socket (one recv can carry many frames)."""
        while True:
            if self._pending:
                return self._pending.popleft()
            sock = self._require_sock()
            try:
                data = sock.recv(65536)
            except socket.timeout as exc:
                self.close()
                raise GatewayClosed("receive timed out") from exc
            except OSError as exc:
                self.close()
                raise GatewayClosed(f"receive failed: {exc}") from exc
            if not data:
                self.close()
                raise GatewayClosed("gateway closed the connection")
            for item in self._reassembler.feed(data):
                if isinstance(item, codec.FrameError):
                    # The gateway never emits malformed frames (the
                    # fuzz suite holds it to that), so this is a broken
                    # transport, not a protocol conversation.
                    self.close()
                    raise GatewayClosed(
                        f"undecodable frame from gateway: {item.message}"
                    )
                self._pending.append(item)

    def _recv_until(self, *types: type) -> codec.Frame:
        """Next frame of one of ``types``; answers keepalives, raises
        on ERROR, and rejects anything else as a protocol violation."""
        while True:
            frame = self.recv_frame()
            if isinstance(frame, types):
                return frame
            if isinstance(frame, codec.ErrorFrame):
                raise _refusal(frame)
            if isinstance(frame, codec.Keepalive):
                self.send_frame(codec.KeepaliveAck())
                continue
            if isinstance(frame, (codec.KeepaliveAck, codec.InventoryStopped)):
                continue  # late ack from a prior exchange
            raise GatewayError(
                f"unexpected {type(frame).__name__} "
                f"(wanted {'/'.join(t.__name__ for t in types)})"
            )

    # -- request/reply --------------------------------------------------

    def capabilities(self) -> codec.Capabilities:
        self.send_frame(codec.GetCapabilities())
        frame = self._recv_until(codec.Capabilities)
        assert isinstance(frame, codec.Capabilities)
        return frame

    def ping(self) -> None:
        self.send_frame(codec.Keepalive())
        self._recv_until(codec.KeepaliveAck)

    def start_inventory(
        self,
        reader_id: int,
        protocol: str,
        scheme: str,
        frame_size: int,
        n_tags: int,
        seed: int,
    ) -> codec.InventoryStarted:
        self.send_frame(
            codec.StartInventory(
                reader_id=reader_id,
                protocol=protocol,
                scheme=scheme,
                frame_size=frame_size,
                n_tags=n_tags,
                seed=seed,
            )
        )
        frame = self._recv_until(codec.InventoryStarted)
        assert isinstance(frame, codec.InventoryStarted)
        return frame

    def stop(self, reader_id: int) -> None:
        """Fire a STOP; the ack is collected by whatever reads next
        (:meth:`_recv_until` skips stray InventoryStopped frames)."""
        self.send_frame(codec.StopInventory(reader_id=reader_id))

    def iter_reports(self) -> Iterator[codec.TagReport]:
        """Yield TAG_REPORTs until the terminal INVENTORY_COMPLETE.

        The terminal frame is returned via ``StopIteration.value`` and
        also stashed on :attr:`last_complete`.
        """
        self.last_complete: codec.InventoryComplete | None = None
        while True:
            frame = self._recv_until(
                codec.TagReport, codec.InventoryComplete
            )
            if isinstance(frame, codec.InventoryComplete):
                self.last_complete = frame
                return frame
            assert isinstance(frame, codec.TagReport)
            yield frame

    # -- resilient one-call flow ----------------------------------------

    def run_inventory(
        self,
        reader_id: int,
        protocol: str,
        scheme: str,
        frame_size: int,
        n_tags: int,
        seed: int,
        *,
        on_report: Callable[[codec.TagReport], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> InventorySummary:
        """Start the inventory and stream it to completion, reconnecting
        and resuming through torn connections and busy readers.

        Resume = rerun: the spec is deterministic, so after a reconnect
        the gateway replays the identical trace and the client drops
        tag ids it already has.  ``on_report`` fires once per *new* tag.
        """
        summary = InventorySummary()
        seen: set[int] = set()
        retries = iter(self.reconnect.delays())
        while True:
            try:
                if not self.connected:
                    self.connect()
                self.start_inventory(
                    reader_id, protocol, scheme, frame_size, n_tags, seed
                )
                for report in self.iter_reports():
                    if report.tag_id in seen:
                        continue
                    seen.add(report.tag_id)
                    summary.reports.append(report)
                    if on_report is not None:
                        on_report(report)
                    # Forward progress: refill the retry budget.
                    retries = iter(self.reconnect.delays())
                summary.complete = self.last_complete
                return summary
            except GatewayBusy as exc:
                # Our previous session may still be winding down after
                # the disconnect; the reader frees as soon as its send
                # fails.  Same for a draining gateway mid-rollout.
                delay = next(retries, None)
                if delay is None:
                    raise
                sleep(delay)
            except GatewayClosed:
                delay = next(retries, None)
                if delay is None:
                    raise
                summary.reconnects += 1
                sleep(delay)
                try:
                    self.connect()
                except GatewayClosed:
                    pass  # next loop iteration retries the connect


# ----------------------------------------------------------------------
# CLI


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway.client",
        description=(
            "Run one inventory against a repro-gateway and record the "
            "tag reports (CSV/NDJSON; see docs/GATEWAY.md)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--reader", type=int, default=0, dest="reader_id")
    parser.add_argument(
        "--protocol", choices=("fsa", "dfsa"), default="dfsa"
    )
    parser.add_argument(
        "--scheme",
        default="qcd-16",
        help="collision detector: 'crc' or 'qcd-<1..64>' (default qcd-16)",
    )
    parser.add_argument("--frame-size", type=int, default=64)
    parser.add_argument("--n-tags", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--timeout", type=float, default=30.0, dest="timeout_s"
    )
    parser.add_argument(
        "--csv", type=str, default=None, help="append reports to a CSV file"
    )
    parser.add_argument(
        "--ndjson",
        type=str,
        default=None,
        help="append reports as NDJSON lines",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    from repro.gateway import sinks as sinks_mod

    args = build_parser().parse_args(argv)
    sinks: list = []
    if args.csv:
        sinks.append(sinks_mod.CsvSink(args.csv))
    if args.ndjson:
        sinks.append(sinks_mod.NdjsonSink(args.ndjson))
    fanout = sinks_mod.fanout(sinks)
    client = GatewayClient(args.host, args.port, timeout_s=args.timeout_s)
    try:
        with client:
            caps = client.capabilities()
            summary = client.run_inventory(
                args.reader_id,
                args.protocol,
                args.scheme,
                args.frame_size,
                args.n_tags,
                args.seed,
                on_report=fanout,
            )
    except GatewayError as exc:
        print(f"gateway error: {exc}", file=sys.stderr)
        return 1
    finally:
        for sink in sinks:
            sink.close()
    complete = summary.complete
    print(
        f"gateway v{caps.version}: {len(summary.reports)} tags from "
        f"reader {args.reader_id} "
        f"({args.protocol}/{args.scheme}, seed {args.seed}); "
        f"slots={complete.slots if complete else '?'} "
        f"frames={complete.frames if complete else '?'} "
        f"airtime={complete.airtime if complete else float('nan'):.1f} "
        f"reconnects={summary.reconnects}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
