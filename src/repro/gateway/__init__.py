"""``repro.gateway`` -- the binary wire plane for simulated reader fleets.

Real RFID readers speak compact binary TCP protocols (LLRP, or vendor
framings like the CL7206C2's ``0xAA`` packets), not JSON.  This package
adds that plane to the reproduction stack:

* :mod:`repro.gateway.codec`   -- the frame codec: typed commands,
  CRC-16/BUYPASS trailers, and an incremental reassembler that turns
  arbitrary byte streams (torn reads, garbage, bad CRCs) into frames
  and typed errors;
* :mod:`repro.gateway.readers` -- the spec -> deterministic inventory
  funnel shared by the gateway and the differential tests;
* :mod:`repro.gateway.gateway` -- ``repro-gateway``, the asyncio TCP
  server fronting N simulated readers running real
  :class:`~repro.sim.reader.Reader` inventories;
* :mod:`repro.gateway.client`  -- a blocking client with reconnect and
  report iteration;
* :mod:`repro.gateway.sinks`   -- CSV / NDJSON tag-report recorders.

See ``docs/GATEWAY.md`` for the frame format and a session walkthrough.
"""

from repro.gateway.codec import (
    Capabilities,
    ErrorFrame,
    Frame,
    FrameError,
    FrameReassembler,
    GetCapabilities,
    InventoryComplete,
    InventoryStarted,
    InventoryStopped,
    Keepalive,
    KeepaliveAck,
    StartInventory,
    StopInventory,
    TagReport,
    decode_frame,
    encode_frame,
)
from repro.gateway.gateway import GatewayApp, GatewayConfig

__all__ = [
    "Frame",
    "FrameError",
    "FrameReassembler",
    "GetCapabilities",
    "Capabilities",
    "StartInventory",
    "InventoryStarted",
    "StopInventory",
    "InventoryStopped",
    "Keepalive",
    "KeepaliveAck",
    "TagReport",
    "InventoryComplete",
    "ErrorFrame",
    "encode_frame",
    "decode_frame",
    "GatewayApp",
    "GatewayConfig",
]
