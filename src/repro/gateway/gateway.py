"""``repro-gateway`` -- the binary reader-gateway for simulated fleets.

An asyncio TCP server speaking the LLRP-shaped frame protocol of
:mod:`repro.gateway.codec`, fronting ``--readers`` simulated RFID
readers.  A client connects, asks for :class:`~repro.gateway.codec.Capabilities`,
and starts inventories on individual readers; each inventory runs the
*real* exact :class:`~repro.sim.reader.Reader` (same seed => same
population => same slot trace as a direct call, which is what the
differential acceptance test in ``tests/gateway/test_gateway.py``
asserts) on a worker thread and streams one
:class:`~repro.gateway.codec.TagReport` per identified slot, terminated
by :class:`~repro.gateway.codec.InventoryComplete`.

Robustness contract (mirroring ``repro-serve``, but on the binary
plane):

* malformed input never kills anything: the reassembler turns garbage
  into typed :class:`~repro.gateway.codec.FrameError` values, the
  gateway answers each with an ERROR frame (valid CRC) and keeps the
  connection; a peer that sends nothing but junk is cut off after
  :data:`MAX_CONSECUTIVE_ERRORS` strikes -- a clean close, not a crash;
* per-connection outbound queues are bounded
  (``GatewayConfig.outbox_frames``); a client that stops reading
  backpressures its own sessions, never the process;
* SIGTERM/SIGINT enter *drain*: new START_INVENTORY gets a typed
  ``draining`` ERROR, running sessions finish streaming, then the
  process exits 0 (and ``--metrics-out`` snapshots the registry).

Observability: ``GATEWAY_*`` metrics (frames in/out, CRC failures,
malformed frames, active connections, per-report latency,
inventory outcomes) land in the shared :mod:`repro.obs` registry, and
each connection / inventory gets a ``gateway.session`` /
``gateway.inventory`` span tree -- the reader's own
``inventory -> frame -> slot`` spans nest under the latter because
``asyncio.to_thread`` carries the bound tracer across the thread hop.
"""

from __future__ import annotations

import argparse
import asyncio
import secrets
import signal
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro import obs
from repro.obs import context as _ctx
from repro.obs import instruments as _inst
from repro.obs.state import STATE as _OBS
from repro.obs.tracing import JsonlSink, NullSink, Tracer
from repro.gateway import codec
from repro.gateway import readers as sim_readers

__all__ = [
    "GatewayConfig",
    "GatewayApp",
    "MAX_CONSECUTIVE_ERRORS",
    "GATEWAY_VERSION",
    "main",
    "build_parser",
]

#: Wire protocol version reported in CAPABILITIES.
GATEWAY_VERSION = 1

#: A peer whose every frame is garbage gets this many typed ERROR
#: replies before the gateway hangs up (clean close).  Any well-formed
#: frame resets the count.
MAX_CONSECUTIVE_ERRORS = 64

#: Socket read chunk.  Deliberately not a protocol constant: the
#: reassembler accepts arbitrary split points anyway.
_READ_CHUNK = 65536

#: Report-latency histogram buckets (seconds): sub-millisecond stream
#: bursts up to multi-second 50k-tag computes.
REPORT_SECONDS_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
)


@dataclass
class GatewayConfig:
    """Everything ``repro-gateway`` can be told from the command line."""

    host: str = "127.0.0.1"
    port: int = 5084  # the LLRP port
    readers: int = 4
    keepalive_s: float | None = None  # unsolicited KEEPALIVE interval
    outbox_frames: int = 1024  # bounded per-connection send queue
    drain_grace_s: float = 30.0
    metrics_out: str | None = None  # registry JSON written at drain
    trace_out: str | None = None  # span JSONL (enables tracing sink)
    obs_enabled: bool = True


@dataclass
class _Session:
    """One running inventory: wire session id + reader + its task."""

    session_id: int
    reader: sim_readers.SimulatedReader
    spec: codec.StartInventory
    conn: "_Connection"
    task: asyncio.Task | None = None
    stop_requested: bool = False


class _Connection:
    """Per-connection state: reassembler + bounded outbox + sessions.

    All mutation happens on the event loop; the only cross-task edge is
    the outbox queue between session tasks (producers) and the writer
    task (consumer).
    """

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        outbox_frames: int,
    ) -> None:
        self.conn_id = f"gwc-{secrets.token_hex(6)}"
        self.writer = writer
        self.reassembler = codec.FrameReassembler()
        self.outbox: asyncio.Queue[bytes | None] = asyncio.Queue(
            maxsize=outbox_frames
        )
        self.sessions: dict[int, _Session] = {}
        self.consecutive_errors = 0
        self.closing = False
        self.writer_task: asyncio.Task | None = None
        self.tracer: Tracer | None = None

    async def send(self, frame: codec.Frame) -> None:
        """Encode and enqueue ``frame``; raises ``ConnectionError`` if
        the connection is going away (so session streams abort)."""
        if self.closing:
            raise ConnectionError("connection is closing")
        if _OBS.enabled:
            _OBS.registry.counter(
                _inst.GATEWAY_FRAMES_OUT,
                "Frames sent to gateway clients, by command",
                labelnames=("cmd",),
            ).labels(cmd=type(frame).__name__).inc()
        await self.outbox.put(codec.encode_frame(frame))
        if self.closing:  # raced a close while blocked on a full queue
            raise ConnectionError("connection is closing")

    def abort(self) -> None:
        """Hard-kill the transport (fault injection / tests)."""
        self.closing = True
        transport = self.writer.transport
        if transport is not None:
            transport.abort()

    async def writer_loop(self) -> None:
        """Drain the outbox onto the socket until the ``None`` sentinel.

        On a broken pipe it flips ``closing`` and keeps *discarding*
        queue items so blocked producers (session tasks) wake up and
        see the flag instead of deadlocking on a full queue.
        """
        broken = False
        while True:
            data = await self.outbox.get()
            if data is None:
                return
            if broken:
                continue
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, OSError):
                self.closing = True
                broken = True


class GatewayApp:
    """The wired gateway: listener -> connections -> reader sessions."""

    def __init__(self, config: GatewayConfig | None = None) -> None:
        self.config = config if config is not None else GatewayConfig()
        self.readers = [
            sim_readers.SimulatedReader(i) for i in range(self.config.readers)
        ]
        self.draining = False
        self.started_s = time.monotonic()
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._closed = asyncio.Event()
        self._drain_task: asyncio.Task | None = None
        self._handlers: set[asyncio.Task] = set()
        self._session_tasks: set[asyncio.Task] = set()
        self._connections: set[_Connection] = set()
        self._sessions: dict[int, _Session] = {}
        self._session_seq = 0
        self._trace_sink: JsonlSink | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener; pre-register the zero-valued metrics."""
        if self.config.obs_enabled:
            if self.config.trace_out:
                self._trace_sink = JsonlSink(self.config.trace_out)
                obs.enable(sink=self._trace_sink)
            else:
                obs.enable()
        if _OBS.enabled:
            # Pre-register so a clean run's snapshot *shows* the zeros
            # (the CI smoke job asserts crc_failures == 0, which must be
            # distinguishable from "never registered").
            reg = _OBS.registry
            reg.counter(
                _inst.GATEWAY_CRC_FAILURES,
                "Frames dropped for a CRC trailer mismatch",
            ).inc(0)
            reg.gauge(
                _inst.GATEWAY_CONNECTIONS, "Open gateway connections"
            ).set(0)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        await self._closed.wait()

    def begin_drain(self) -> None:
        """Refuse new inventories, finish running ones, then exit.

        Idempotent; safe to call from a signal handler on the loop.
        """
        if self._drain_task is not None:
            return
        self.draining = True
        self._drain_task = asyncio.get_running_loop().create_task(
            self._drain()
        )

    async def _drain(self) -> None:
        grace = self.config.drain_grace_s
        # 1. Let running inventories finish streaming.
        if self._session_tasks:
            _done, pending = await asyncio.wait(
                set(self._session_tasks), timeout=grace
            )
            for task in pending:  # pathological sessions
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        # 2. Give clients a beat to read the tail, then cut idle
        #    connections loose.
        for conn in list(self._connections):
            conn.abort()
        if self._handlers:
            _done, pending = await asyncio.wait(
                set(self._handlers), timeout=grace
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.config.metrics_out and _OBS.enabled:
            Path(self.config.metrics_out).write_text(
                _OBS.registry.to_json() + "\n"
            )
        if self._trace_sink is not None:
            if _OBS.tracer.sink is self._trace_sink:
                _OBS.tracer = Tracer(NullSink())
            self._trace_sink.close()
        self._closed.set()

    async def aclose(self) -> None:
        """Drain and wait until fully closed (test/embedding helper)."""
        self.begin_drain()
        await self.wait_closed()

    def drop_connections(self) -> int:
        """Abort every open connection (fault injection for the
        reconnect-mid-inventory test); returns how many were cut."""
        conns = list(self._connections)
        for conn in conns:
            conn.abort()
        return len(conns)

    # -- connection plumbing --------------------------------------------

    def _set_conn_gauge(self) -> None:
        if _OBS.enabled:
            _OBS.registry.gauge(
                _inst.GATEWAY_CONNECTIONS, "Open gateway connections"
            ).set(len(self._connections))

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        conn = _Connection(writer, self.config.outbox_frames)
        self._connections.add(conn)
        self._set_conn_gauge()
        if _OBS.enabled:
            conn.tracer = Tracer(_OBS.tracer.sink, trace_id=conn.conn_id)
        peer = writer.get_extra_info("peername")
        loop = asyncio.get_running_loop()
        conn.writer_task = loop.create_task(conn.writer_loop())
        keepalive_task: asyncio.Task | None = None
        if self.config.keepalive_s:
            keepalive_task = loop.create_task(self._keepalive_loop(conn))
        try:
            with _ctx.bound_context(
                tracer=conn.tracer, request_id=conn.conn_id
            ):
                if conn.tracer is not None:
                    conn.tracer.start_span(
                        "gateway.session", peer=repr(peer)
                    )
                try:
                    await self._read_loop(reader, conn)
                finally:
                    if conn.tracer is not None:
                        conn.tracer.end_span(
                            frames_ok=conn.reassembler.frames_ok,
                            frames_bad=conn.reassembler.frames_bad,
                            garbage_bytes=conn.reassembler.garbage_bytes,
                        )
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # peer went away; sessions observe `closing` below
        finally:
            conn.closing = True
            # Sessions still computing skip their streaming phase.
            for sess in list(conn.sessions.values()):
                sess.stop_requested = True
            if keepalive_task is not None:
                keepalive_task.cancel()
            await conn.outbox.put(None)
            if conn.writer_task is not None:
                try:
                    await conn.writer_task
                except asyncio.CancelledError:  # pragma: no cover
                    pass
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._connections.discard(conn)
            self._set_conn_gauge()

    async def _read_loop(
        self, reader: asyncio.StreamReader, conn: _Connection
    ) -> None:
        while not conn.closing:
            data = await reader.read(_READ_CHUNK)
            if not data:
                tail = conn.reassembler.finish()
                if tail is not None:
                    self._count_bad_frame(tail)
                return
            for item in conn.reassembler.feed(data):
                if isinstance(item, codec.FrameError):
                    if not await self._on_frame_error(conn, item):
                        return  # error budget exhausted: clean close
                    continue
                conn.consecutive_errors = 0
                if _OBS.enabled:
                    _OBS.registry.counter(
                        _inst.GATEWAY_FRAMES_IN,
                        "Well-formed frames received, by command",
                        labelnames=("cmd",),
                    ).labels(cmd=type(item).__name__).inc()
                await self._dispatch(conn, item)

    def _count_bad_frame(self, err: codec.FrameError) -> None:
        if not _OBS.enabled:
            return
        reg = _OBS.registry
        if err.code == "bad_crc":
            reg.counter(
                _inst.GATEWAY_CRC_FAILURES,
                "Frames dropped for a CRC trailer mismatch",
            ).inc()
        else:
            reg.counter(
                _inst.GATEWAY_MALFORMED,
                "Frames rejected before dispatch, by reason",
                labelnames=("reason",),
            ).labels(reason=err.code).inc()

    async def _on_frame_error(
        self, conn: _Connection, err: codec.FrameError
    ) -> bool:
        """Answer a malformed frame with a typed ERROR; returns False
        when the peer has exhausted its error budget."""
        self._count_bad_frame(err)
        conn.consecutive_errors += 1
        if conn.consecutive_errors > MAX_CONSECUTIVE_ERRORS:
            return False
        await conn.send(codec.ErrorFrame(err.code, err.message))
        return True

    async def _keepalive_loop(self, conn: _Connection) -> None:
        try:
            while not conn.closing:
                await asyncio.sleep(self.config.keepalive_s)
                await conn.send(codec.Keepalive())
        except (ConnectionError, asyncio.CancelledError):
            pass

    # -- dispatch -------------------------------------------------------

    async def _dispatch(self, conn: _Connection, frame: codec.Frame) -> None:
        if isinstance(frame, codec.GetCapabilities):
            await conn.send(
                codec.Capabilities(
                    version=GATEWAY_VERSION,
                    n_readers=len(self.readers),
                    max_tags=sim_readers.MAX_TAGS,
                    max_frame_size=sim_readers.MAX_FRAME_SIZE,
                )
            )
        elif isinstance(frame, codec.StartInventory):
            await self._start_inventory(conn, frame)
        elif isinstance(frame, codec.StopInventory):
            await self._stop_inventory(conn, frame)
        elif isinstance(frame, codec.Keepalive):
            await conn.send(codec.KeepaliveAck())
        elif isinstance(frame, codec.KeepaliveAck):
            pass  # reply to our own probe; nothing to do
        else:
            # A syntactically valid frame in the wrong direction
            # (e.g. a client echoing TAG_REPORT at the gateway).
            await conn.send(
                codec.ErrorFrame(
                    "unsupported",
                    f"{type(frame).__name__} is gateway->client only",
                )
            )

    def _alloc_session(self) -> int:
        self._session_seq = self._session_seq % 0xFFFF + 1
        return self._session_seq

    async def _start_inventory(
        self, conn: _Connection, spec: codec.StartInventory
    ) -> None:
        if self.draining:
            await conn.send(
                codec.ErrorFrame(
                    "draining", "gateway is draining; retry elsewhere"
                )
            )
            return
        reason = sim_readers.validate_spec(spec, len(self.readers))
        if reason is not None:
            await conn.send(codec.ErrorFrame("bad_param", reason))
            return
        reader = self.readers[spec.reader_id]
        if reader.busy:
            await conn.send(
                codec.ErrorFrame(
                    "busy",
                    f"reader {reader.reader_id} is busy with session "
                    f"{reader.session}",
                )
            )
            return
        session_id = self._alloc_session()
        reader.acquire(session_id)
        sess = _Session(session_id, reader, spec, conn)
        conn.sessions[session_id] = sess
        self._sessions[session_id] = sess
        await conn.send(codec.InventoryStarted(spec.reader_id, session_id))
        sess.task = asyncio.get_running_loop().create_task(
            self._run_session(sess)
        )
        self._session_tasks.add(sess.task)
        sess.task.add_done_callback(self._session_tasks.discard)

    async def _stop_inventory(
        self, conn: _Connection, stop: codec.StopInventory
    ) -> None:
        if not 0 <= stop.reader_id < len(self.readers):
            await conn.send(
                codec.ErrorFrame(
                    "bad_param",
                    f"no reader {stop.reader_id} "
                    f"(gateway has {len(self.readers)})",
                )
            )
            return
        reader = self.readers[stop.reader_id]
        session_id = reader.session
        sess = self._sessions.get(session_id)
        if sess is not None:
            sess.stop_requested = True
        await conn.send(codec.InventoryStopped(stop.reader_id, session_id))

    # -- inventory sessions ---------------------------------------------

    async def _run_session(self, sess: _Session) -> None:
        spec, conn = sess.spec, sess.conn
        t0 = time.perf_counter()
        outcome = "error"
        tracer: Tracer | None = None
        if _OBS.enabled:
            tracer = Tracer(
                _OBS.tracer.sink,
                trace_id=f"{conn.conn_id}-s{sess.session_id}",
            )
        try:
            with _ctx.bound_context(
                tracer=tracer, request_id=conn.conn_id
            ):
                if tracer is not None:
                    tracer.start_span(
                        "gateway.inventory",
                        session=sess.session_id,
                        reader_id=spec.reader_id,
                        protocol=spec.protocol,
                        scheme=spec.scheme,
                        n_tags=spec.n_tags,
                        seed=spec.seed,
                    )
                try:
                    outcome = await self._run_session_inner(sess, t0)
                finally:
                    if tracer is not None:
                        tracer.end_span(outcome=outcome)
        except asyncio.CancelledError:
            outcome = "cancelled"
            raise
        except (ConnectionError, OSError):
            outcome = "disconnect"
        except Exception as exc:  # never let a session kill the process
            outcome = "error"
            try:
                await conn.send(
                    codec.ErrorFrame(
                        "internal", f"{type(exc).__name__}: {exc}"
                    )
                )
            except (ConnectionError, OSError):
                pass
        finally:
            sess.reader.release()
            conn.sessions.pop(sess.session_id, None)
            self._sessions.pop(sess.session_id, None)
            if _OBS.enabled:
                _OBS.registry.counter(
                    _inst.GATEWAY_INVENTORIES,
                    "Inventory sessions finished, by outcome",
                    labelnames=("protocol", "detector", "outcome"),
                ).labels(
                    protocol=spec.protocol,
                    detector=spec.scheme.split("-", 1)[0],
                    outcome=outcome,
                ).inc()

    async def _run_session_inner(self, sess: _Session, t0: float) -> str:
        """The session body; returns the outcome label.  Exceptions
        propagate to :meth:`_run_session` for classification."""
        spec, conn = sess.spec, sess.conn
        # The blocking inventory runs on a worker thread; the bound
        # tracer rides along via the context copy, so the Reader's own
        # spans nest under gateway.inventory.
        result = await asyncio.to_thread(sim_readers.run_spec, spec)
        histogram = None
        if _OBS.enabled:
            histogram = _OBS.registry.histogram(
                _inst.GATEWAY_REPORT_SECONDS,
                "Seconds from START_INVENTORY to each TAG_REPORT",
                buckets=REPORT_SECONDS_BUCKETS,
            )
        for record in result.trace:
            if record.identified_tag is None:
                continue
            if sess.stop_requested:
                break
            await conn.send(
                codec.TagReport(
                    reader_id=spec.reader_id,
                    session=sess.session_id,
                    slot=record.index,
                    frame=record.frame,
                    tag_id=record.identified_tag,
                    airtime=record.end_time,
                )
            )
            if histogram is not None:
                histogram.observe(time.perf_counter() - t0)
        stopped = sess.stop_requested
        await conn.send(
            codec.InventoryComplete(
                reader_id=spec.reader_id,
                session=sess.session_id,
                identified=len(result.identified_ids),
                lost=len(result.lost_ids),
                slots=len(result.trace),
                frames=result.stats.frames,
                airtime=result.stats.total_time,
                stopped=stopped,
            )
        )
        return "stopped" if stopped else "done"


# ----------------------------------------------------------------------
# Entry point


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gateway",
        description=(
            "Expose a fleet of simulated RFID readers over the binary "
            "frame protocol (see docs/GATEWAY.md).  Clients start real "
            "FSA/DFSA inventories with CRC-CD or QCD collision "
            "detection and stream TAG_REPORT frames back."
        ),
    )
    cfg = GatewayConfig()
    parser.add_argument("--host", default=cfg.host)
    parser.add_argument(
        "--port",
        type=int,
        default=cfg.port,
        help=f"TCP port; 0 picks a free one (default {cfg.port})",
    )
    parser.add_argument(
        "--readers",
        type=int,
        default=cfg.readers,
        help=f"simulated readers behind the gateway (default {cfg.readers})",
    )
    parser.add_argument(
        "--keepalive",
        type=float,
        default=None,
        metavar="SECONDS",
        dest="keepalive_s",
        help="send unsolicited KEEPALIVE frames at this interval "
        "(default: off)",
    )
    parser.add_argument(
        "--outbox-frames",
        type=int,
        default=cfg.outbox_frames,
        help="bounded per-connection send queue, in frames "
        f"(default {cfg.outbox_frames})",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=cfg.drain_grace_s,
        metavar="SECONDS",
        dest="drain_grace_s",
        help="max seconds to wait for running inventories on SIGTERM "
        f"(default {cfg.drain_grace_s:.0f})",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="PATH",
        dest="metrics_out",
        help="write the metrics registry as JSON to PATH at drain",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        dest="trace_out",
        help="append span/event trace records as JSONL to PATH",
    )
    parser.add_argument(
        "--no-obs",
        action="store_false",
        dest="obs_enabled",
        help="disable metrics and tracing entirely",
    )
    return parser


async def _amain(config: GatewayConfig) -> int:
    app = GatewayApp(config)
    await app.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, app.begin_drain)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    print(
        f"repro-gateway listening on {config.host}:{app.port} "
        f"(readers={config.readers})",
        flush=True,
    )
    await app.wait_closed()
    print("repro-gateway drained; exiting", flush=True)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = GatewayConfig(
        host=args.host,
        port=args.port,
        readers=args.readers,
        keepalive_s=args.keepalive_s,
        outbox_frames=args.outbox_frames,
        drain_grace_s=args.drain_grace_s,
        metrics_out=str(args.metrics_out) if args.metrics_out else None,
        trace_out=str(args.trace_out) if args.trace_out else None,
        obs_enabled=args.obs_enabled,
    )
    obs.reset()
    try:
        return asyncio.run(_amain(config))
    except KeyboardInterrupt:  # pragma: no cover - double ^C
        return 130


if __name__ == "__main__":
    sys.exit(main())
