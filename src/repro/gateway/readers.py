"""Simulated readers behind the gateway: spec -> deterministic inventory.

One module owns the mapping from a wire-level
:class:`~repro.gateway.codec.StartInventory` to a concrete
population + protocol + detector + :class:`~repro.sim.reader.Reader`
run, so the gateway, the client-side tests and the differential
"wire vs direct Reader" acceptance test all construct *exactly* the same
simulation from the same spec.  The contract:

    same (protocol, scheme, frame_size, n_tags, seed)
        => same TagPopulation (IDs and per-tag RNG streams)
        => same slot trace, identified-ID list and stats

which is what makes a mid-inventory reconnect resumable: the client
restarts the spec and the rerun is bit-identical, so already-seen tag
IDs dedupe cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.detector import CollisionDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.gateway.codec import StartInventory
from repro.protocols.dfsa import DynamicFSA
from repro.protocols.fsa import FramedSlottedAloha
from repro.sim.reader import InventoryResult, Reader
from repro.tags.population import TagPopulation

__all__ = [
    "ID_BITS",
    "MAX_TAGS",
    "MAX_FRAME_SIZE",
    "build_detector",
    "build_protocol",
    "build_population",
    "run_spec",
    "validate_spec",
    "SimulatedReader",
]

#: The paper's ID length; also the TAG_REPORT ``tag_id`` field width.
ID_BITS = 64

#: Per-inventory resource ceilings (validation errors, never truncation;
#: the binary-plane analogue of ``repro.serve.protocol``'s limits).
MAX_TAGS = 50_000
MAX_FRAME_SIZE = 1 << 15


def build_detector(scheme: str) -> CollisionDetector:
    """``"crc"`` / ``"qcd-<s>"`` -> a detector (same forms as the grid)."""
    if scheme == "crc":
        return CRCCDDetector(id_bits=ID_BITS)
    if scheme.startswith("qcd-"):
        return QCDDetector(strength=int(scheme.split("-", 1)[1]))
    raise ValueError(f"unknown scheme {scheme!r}")


def build_protocol(protocol: str, frame_size: int):
    """``"fsa"`` (fixed frame) or ``"dfsa"`` (adaptive from ``frame_size``)."""
    if protocol == "fsa":
        return FramedSlottedAloha(frame_size)
    if protocol == "dfsa":
        return DynamicFSA(initial_frame_size=frame_size)
    raise ValueError(f"unknown protocol {protocol!r}")


def build_population(n_tags: int, seed: int) -> TagPopulation:
    """The spec's population: uniform 64-bit IDs from one root seed."""
    return TagPopulation(n_tags, id_bits=ID_BITS, rng=make_rng(seed))


def validate_spec(spec: StartInventory, n_readers: int) -> str | None:
    """Reject out-of-range parameters with a human-readable reason.

    Frame-level malformation never reaches this point (the codec already
    rejected it); this is the semantic layer -- unknown reader, zero-tag
    inventory, oversized population or frame.
    """
    if not 0 <= spec.reader_id < n_readers:
        return f"no reader {spec.reader_id} (gateway has {n_readers})"
    if spec.n_tags < 1:
        return "n_tags must be >= 1"
    if spec.n_tags > MAX_TAGS:
        return f"n_tags {spec.n_tags} exceeds the {MAX_TAGS} ceiling"
    if spec.frame_size < 1:
        return "frame_size must be >= 1"
    if spec.frame_size > MAX_FRAME_SIZE:
        return (
            f"frame_size {spec.frame_size} exceeds the "
            f"{MAX_FRAME_SIZE} ceiling"
        )
    return None


def run_spec(spec: StartInventory) -> InventoryResult:
    """Run the spec's inventory to completion (blocking, CPU-bound).

    This is the single execution funnel: the gateway calls it from a
    worker thread, and the acceptance test calls it directly to assert
    the wire stream carries the same identified IDs.
    """
    population = build_population(spec.n_tags, spec.seed)
    protocol = build_protocol(spec.protocol, spec.frame_size)
    reader = Reader(build_detector(spec.scheme), timing=TimingModel())
    return reader.run_inventory(list(population), protocol)


@dataclass
class SimulatedReader:
    """One reader slot of the gateway fleet: id + busy-session state.

    The gateway owns the lifecycle: ``acquire`` marks the reader busy
    with a session id, ``release`` frees it.  All calls happen on the
    event loop, so plain attributes are race-free.
    """

    reader_id: int
    session: int = 0  # 0 = idle; otherwise the running session id
    inventories: int = 0  # completed sessions, for introspection

    @property
    def busy(self) -> bool:
        return self.session != 0

    def acquire(self, session: int) -> None:
        if self.busy:
            raise RuntimeError(
                f"reader {self.reader_id} is busy with session {self.session}"
            )
        self.session = session

    def release(self) -> None:
        self.session = 0
        self.inventories += 1
