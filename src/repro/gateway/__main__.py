"""``python -m repro.gateway`` runs the gateway server."""

import sys

from repro.gateway.gateway import main

if __name__ == "__main__":
    sys.exit(main())
