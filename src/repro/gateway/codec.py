"""Binary frame codec for the reader gateway (LLRP-shaped wire format).

Real RFID deployments do not speak JSON: readers hang off per-device TCP
connections carrying a compact binary framing (LLRP for standards-track
readers, vendor protocols like the CL7206C2's ``0xAA``-framed packets for
everything else).  This module implements that wire plane for the
simulated reader fleet:

Frame layout (big-endian throughout)::

    +--------+------+------+--------+--------+--------------+--------+
    | Header | CMD  | SUB  |  LEN (u16)      |  payload     | CRC-16 |
    |  0xAA  | 1 B  | 1 B  |  Hi    |  Lo    |  LEN bytes   | Hi  Lo |
    +--------+------+------+--------+--------+--------------+--------+

* ``LEN`` is the payload length only (0..:data:`MAX_PAYLOAD`).
* The CRC-16 trailer is CRC-16/BUYPASS (poly 0x8005, init 0x0000;
  :data:`repro.bits.crc.CRC16_BUYPASS`) over CMD..payload -- the sync
  byte and the trailer itself are excluded, exactly like the CL7206C2
  firmware computes ``CRC16_CalculateBuf(buf+1, len-1)``.

Every command is a typed dataclass with a symmetric
``encode``/``decode`` pair; :func:`encode_frame` and :func:`decode_frame`
round-trip any frame bit-exactly (pinned by
``tests/data/golden_gateway_frames.json``).  Malformed input *never*
raises anything but :class:`FrameError` -- the gateway turns those into
typed ERROR frames instead of dying, and the Hypothesis suite in
``tests/gateway/test_codec_properties.py`` holds it to that.

:class:`FrameReassembler` is the incremental receive side: it tolerates
torn TCP reads (a frame split at every byte boundary reassembles
identically), garbage between frames (scan to the next sync byte), bad
CRCs and oversized lengths (typed error, resync one byte past the false
sync), so a byte stream can never wedge or crash a connection.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Iterator, Union

from repro.bits.crc import CRC16_BUYPASS, CrcEngine

__all__ = [
    "HEADER_BYTE",
    "MAX_PAYLOAD",
    "PROTOCOL_CODES",
    "DETECTOR_KINDS",
    "ERROR_CODES",
    "FrameError",
    "Frame",
    "GetCapabilities",
    "Capabilities",
    "StartInventory",
    "InventoryStarted",
    "StopInventory",
    "InventoryStopped",
    "Keepalive",
    "KeepaliveAck",
    "TagReport",
    "InventoryComplete",
    "ErrorFrame",
    "crc16",
    "encode_scheme",
    "decode_scheme",
    "encode_frame",
    "decode_frame",
    "FrameReassembler",
]

#: Frame sync byte (CL7206C2 heritage).
HEADER_BYTE = 0xAA

#: Upper bound on the LEN field.  Anything larger is a malformed frame
#: (``bad_length``), which also bounds the reassembler's buffer: a
#: hostile stream cannot make the gateway buffer unboundedly.
MAX_PAYLOAD = 4096

#: Frame overhead: header + cmd + sub + len(2) ... crc(2).
_HEAD_LEN = 5
_TRAILER_LEN = 2

#: Wire codes for the anti-collision protocol a START_INVENTORY runs.
PROTOCOL_CODES = {"fsa": 0x00, "dfsa": 0x01}
_PROTOCOL_NAMES = {v: k for k, v in PROTOCOL_CODES.items()}

#: Wire codes for the collision-detection scheme (paper: CRC-CD vs QCD).
DETECTOR_KINDS = {"crc": 0x00, "qcd": 0x01}
_DETECTOR_NAMES = {v: k for k, v in DETECTOR_KINDS.items()}

#: Typed ERROR frame codes (the binary-plane analogue of the serve
#: tier's JSON error envelope codes).
ERROR_CODES = {
    "malformed_frame": 0x01,
    "bad_crc": 0x02,
    "unsupported": 0x03,
    "busy": 0x04,
    "bad_param": 0x05,
    "draining": 0x06,
    "internal": 0x07,
}
_ERROR_NAMES = {v: k for k, v in ERROR_CODES.items()}

_CRC = CrcEngine(CRC16_BUYPASS, method="table")


def crc16(data: bytes) -> int:
    """The frame trailer CRC: CRC-16/BUYPASS over CMD..payload."""
    return _CRC.compute_bytes(data)


class FrameError(Exception):
    """Typed decode failure.  ``code`` is one of :data:`ERROR_CODES`'
    frame-level keys (``malformed_frame`` / ``bad_crc`` / ``unsupported``)
    and survives the trip into an ERROR frame."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown frame error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


def encode_scheme(scheme: str) -> tuple[int, int]:
    """``"crc"`` / ``"qcd-<s>"`` -> the wire ``(kind, strength)`` pair."""
    if scheme == "crc":
        return DETECTOR_KINDS["crc"], 0
    if scheme.startswith("qcd-"):
        suffix = scheme[4:]
        if suffix.isdigit() and 1 <= int(suffix) <= 64:
            return DETECTOR_KINDS["qcd"], int(suffix)
    raise ValueError(f"unknown scheme {scheme!r} (expected 'crc' or 'qcd-<1..64>')")


def decode_scheme(kind: int, strength: int) -> str:
    """Inverse of :func:`encode_scheme`; raises :class:`FrameError`."""
    if kind == DETECTOR_KINDS["crc"] and strength == 0:
        return "crc"
    if kind == DETECTOR_KINDS["qcd"] and 1 <= strength <= 64:
        return f"qcd-{strength}"
    raise FrameError(
        "bad_param",
        f"invalid detector (kind={kind}, strength={strength})",
    )


# ----------------------------------------------------------------------
# Typed commands
#
# CMD groups follow the CL7206C2 convention (management / RF / reports);
# SUB 0x00 is the request direction, SUB 0x80 the reply/report
# direction, so a sniffer can classify traffic from two bytes.


@dataclass(frozen=True)
class GetCapabilities:
    """Client -> gateway: describe yourself (LLRP GET_READER_CAPABILITIES)."""

    CMD = 0x01
    SUB = 0x00

    def payload(self) -> bytes:
        return b""

    @classmethod
    def decode(cls, payload: bytes) -> "GetCapabilities":
        _expect_len(cls, payload, 0)
        return cls()


@dataclass(frozen=True)
class Capabilities:
    """Gateway -> client: fleet shape and supported parameter space."""

    CMD = 0x01
    SUB = 0x80
    _FMT = ">BBHHBBB"

    version: int
    n_readers: int
    max_tags: int
    max_frame_size: int
    protocols: tuple[str, ...] = ("fsa", "dfsa")
    detectors: tuple[str, ...] = ("crc", "qcd")
    max_qcd_strength: int = 64

    def payload(self) -> bytes:
        proto_mask = 0
        for name in self.protocols:
            proto_mask |= 1 << PROTOCOL_CODES[name]
        det_mask = 0
        for name in self.detectors:
            det_mask |= 1 << DETECTOR_KINDS[name]
        return struct.pack(
            self._FMT,
            self.version,
            self.n_readers,
            self.max_tags,
            self.max_frame_size,
            proto_mask,
            det_mask,
            self.max_qcd_strength,
        )

    @classmethod
    def decode(cls, payload: bytes) -> "Capabilities":
        fields = _unpack(cls, cls._FMT, payload)
        version, n_readers, max_tags, max_frame, pmask, dmask, qcd = fields
        protocols = tuple(
            name for name, bit in PROTOCOL_CODES.items() if pmask & (1 << bit)
        )
        detectors = tuple(
            name for name, bit in DETECTOR_KINDS.items() if dmask & (1 << bit)
        )
        return cls(
            version=version,
            n_readers=n_readers,
            max_tags=max_tags,
            max_frame_size=max_frame,
            protocols=protocols,
            detectors=detectors,
            max_qcd_strength=qcd,
        )


@dataclass(frozen=True)
class StartInventory:
    """Client -> gateway: run one inventory on a simulated reader.

    ``seed`` pins the population *and* every RNG substream, so the tag
    IDs streamed back are field-identical to a direct
    :meth:`repro.sim.reader.Reader.run_inventory` with the same spec.
    """

    CMD = 0x02
    SUB = 0x00
    _FMT = ">BBBBHHQ"

    reader_id: int
    protocol: str  # "fsa" | "dfsa"
    scheme: str  # "crc" | "qcd-<s>"
    frame_size: int
    n_tags: int
    seed: int

    def payload(self) -> bytes:
        kind, strength = encode_scheme(self.scheme)
        return struct.pack(
            self._FMT,
            self.reader_id,
            PROTOCOL_CODES[self.protocol],
            kind,
            strength,
            self.frame_size,
            self.n_tags,
            self.seed,
        )

    @classmethod
    def decode(cls, payload: bytes) -> "StartInventory":
        fields = _unpack(cls, cls._FMT, payload)
        reader_id, proto_code, kind, strength, frame_size, n_tags, seed = fields
        protocol = _PROTOCOL_NAMES.get(proto_code)
        if protocol is None:
            raise FrameError(
                "unsupported", f"unknown protocol code 0x{proto_code:02X}"
            )
        return cls(
            reader_id=reader_id,
            protocol=protocol,
            scheme=decode_scheme(kind, strength),
            frame_size=frame_size,
            n_tags=n_tags,
            seed=seed,
        )


@dataclass(frozen=True)
class InventoryStarted:
    """Gateway -> client: the reader accepted the inventory."""

    CMD = 0x02
    SUB = 0x80
    _FMT = ">BH"

    reader_id: int
    session: int

    def payload(self) -> bytes:
        return struct.pack(self._FMT, self.reader_id, self.session)

    @classmethod
    def decode(cls, payload: bytes) -> "InventoryStarted":
        return cls(*_unpack(cls, cls._FMT, payload))


@dataclass(frozen=True)
class StopInventory:
    """Client -> gateway: abort the reader's running inventory."""

    CMD = 0x03
    SUB = 0x00
    _FMT = ">B"

    reader_id: int

    def payload(self) -> bytes:
        return struct.pack(self._FMT, self.reader_id)

    @classmethod
    def decode(cls, payload: bytes) -> "StopInventory":
        return cls(*_unpack(cls, cls._FMT, payload))


@dataclass(frozen=True)
class InventoryStopped:
    """Gateway -> client: STOP acknowledged (``session`` 0 = was idle)."""

    CMD = 0x03
    SUB = 0x80
    _FMT = ">BH"

    reader_id: int
    session: int

    def payload(self) -> bytes:
        return struct.pack(self._FMT, self.reader_id, self.session)

    @classmethod
    def decode(cls, payload: bytes) -> "InventoryStopped":
        return cls(*_unpack(cls, cls._FMT, payload))


@dataclass(frozen=True)
class Keepalive:
    """Either direction: liveness probe (LLRP KEEPALIVE)."""

    CMD = 0x10
    SUB = 0x00

    def payload(self) -> bytes:
        return b""

    @classmethod
    def decode(cls, payload: bytes) -> "Keepalive":
        _expect_len(cls, payload, 0)
        return cls()


@dataclass(frozen=True)
class KeepaliveAck:
    CMD = 0x10
    SUB = 0x80

    def payload(self) -> bytes:
        return b""

    @classmethod
    def decode(cls, payload: bytes) -> "KeepaliveAck":
        _expect_len(cls, payload, 0)
        return cls()


@dataclass(frozen=True)
class TagReport:
    """Gateway -> client: one tag identified (streamed as slots resolve).

    ``airtime`` is the inventory's simulated clock at the end of the
    identifying slot (units of tau), carried as an IEEE-754 double.
    """

    CMD = 0x12
    SUB = 0x00
    _FMT = ">BHIIQd"

    reader_id: int
    session: int
    slot: int
    frame: int
    tag_id: int
    airtime: float

    def payload(self) -> bytes:
        return struct.pack(
            self._FMT,
            self.reader_id,
            self.session,
            self.slot,
            self.frame,
            self.tag_id,
            self.airtime,
        )

    @classmethod
    def decode(cls, payload: bytes) -> "TagReport":
        return cls(*_unpack(cls, cls._FMT, payload))


@dataclass(frozen=True)
class InventoryComplete:
    """Gateway -> client: terminal frame of an inventory session."""

    CMD = 0x12
    SUB = 0x80
    _FMT = ">BHIIIId?"

    reader_id: int
    session: int
    identified: int
    lost: int
    slots: int
    frames: int
    airtime: float
    stopped: bool = False

    def payload(self) -> bytes:
        return struct.pack(
            self._FMT,
            self.reader_id,
            self.session,
            self.identified,
            self.lost,
            self.slots,
            self.frames,
            self.airtime,
            self.stopped,
        )

    @classmethod
    def decode(cls, payload: bytes) -> "InventoryComplete":
        return cls(*_unpack(cls, cls._FMT, payload))


@dataclass(frozen=True)
class ErrorFrame:
    """Gateway -> client: a typed refusal; the connection stays up."""

    CMD = 0x7F
    SUB = 0x80

    code: str  # key of ERROR_CODES
    message: str = ""

    def payload(self) -> bytes:
        text = self.message.encode("utf-8")[: MAX_PAYLOAD - 1]
        return bytes([ERROR_CODES[self.code]]) + text

    @classmethod
    def decode(cls, payload: bytes) -> "ErrorFrame":
        if len(payload) < 1:
            raise FrameError(
                "malformed_frame", "ERROR frame payload must be >= 1 byte"
            )
        code = _ERROR_NAMES.get(payload[0])
        if code is None:
            raise FrameError(
                "malformed_frame", f"unknown error code 0x{payload[0]:02X}"
            )
        return cls(code=code, message=payload[1:].decode("utf-8", "replace"))


#: Every frame the wire can carry.
Frame = Union[
    GetCapabilities,
    Capabilities,
    StartInventory,
    InventoryStarted,
    StopInventory,
    InventoryStopped,
    Keepalive,
    KeepaliveAck,
    TagReport,
    InventoryComplete,
    ErrorFrame,
]

_FRAME_TYPES: tuple[type, ...] = (
    GetCapabilities,
    Capabilities,
    StartInventory,
    InventoryStarted,
    StopInventory,
    InventoryStopped,
    Keepalive,
    KeepaliveAck,
    TagReport,
    InventoryComplete,
    ErrorFrame,
)

_DECODERS: dict[tuple[int, int], Callable[[bytes], Frame]] = {
    (cls.CMD, cls.SUB): cls.decode for cls in _FRAME_TYPES
}


def _expect_len(cls: type, payload: bytes, expected: int) -> None:
    if len(payload) != expected:
        raise FrameError(
            "malformed_frame",
            f"{cls.__name__} payload must be {expected} bytes, "
            f"got {len(payload)}",
        )


def _unpack(cls: type, fmt: str, payload: bytes) -> tuple:
    expected = struct.calcsize(fmt)
    _expect_len(cls, payload, expected)
    return struct.unpack(fmt, payload)


# ----------------------------------------------------------------------
# Frame-level encode/decode


def encode_frame(frame: Frame) -> bytes:
    """Frame -> wire bytes (header, length, payload, CRC trailer)."""
    payload = frame.payload()
    if len(payload) > MAX_PAYLOAD:
        raise ValueError(
            f"payload of {type(frame).__name__} exceeds {MAX_PAYLOAD} bytes"
        )
    body = struct.pack(">BBH", frame.CMD, frame.SUB, len(payload)) + payload
    return bytes([HEADER_BYTE]) + body + struct.pack(">H", crc16(body))


def decode_frame(data: bytes) -> Frame:
    """One complete wire frame -> its typed command.

    Raises :class:`FrameError` -- and only :class:`FrameError` -- on any
    malformation: bad sync byte, short frame, LEN mismatch, CRC failure,
    unknown (CMD, SUB), or a payload the command cannot parse.
    """
    if len(data) < _HEAD_LEN + _TRAILER_LEN:
        raise FrameError(
            "malformed_frame", f"frame too short ({len(data)} bytes)"
        )
    if data[0] != HEADER_BYTE:
        raise FrameError(
            "malformed_frame", f"bad header byte 0x{data[0]:02X}"
        )
    cmd, sub, length = struct.unpack(">BBH", data[1:_HEAD_LEN])
    if length > MAX_PAYLOAD:
        raise FrameError(
            "malformed_frame", f"LEN {length} exceeds {MAX_PAYLOAD}"
        )
    if len(data) != _HEAD_LEN + length + _TRAILER_LEN:
        raise FrameError(
            "malformed_frame",
            f"frame is {len(data)} bytes but LEN says "
            f"{_HEAD_LEN + length + _TRAILER_LEN}",
        )
    body = data[1 : _HEAD_LEN + length]
    (got_crc,) = struct.unpack(">H", data[-_TRAILER_LEN:])
    want_crc = crc16(body)
    if got_crc != want_crc:
        raise FrameError(
            "bad_crc",
            f"CRC mismatch: frame carries 0x{got_crc:04X}, "
            f"computed 0x{want_crc:04X}",
        )
    decoder = _DECODERS.get((cmd, sub))
    if decoder is None:
        raise FrameError(
            "unsupported", f"unknown command (0x{cmd:02X}, 0x{sub:02X})"
        )
    return decoder(data[_HEAD_LEN : _HEAD_LEN + length])


# ----------------------------------------------------------------------
# Incremental reassembly


class FrameReassembler:
    """Incremental frame extraction from an arbitrary byte stream.

    Feed it whatever ``recv`` returned -- half a frame, three frames and
    a torn fourth, pure garbage -- and it yields, in order, every
    decodable frame plus one :class:`FrameError` per malformed region.
    Invariants (held by the Hypothesis suite):

    * never raises: malformed input comes back as :class:`FrameError`
      *values*;
    * a valid frame stream split at every byte boundary yields the same
      frames as feeding it whole;
    * buffered data is bounded by one maximum-size frame plus whatever
      one ``feed`` call delivered -- LEN is range-checked before any
      buffering decision, so a hostile length cannot pin memory;
    * after an error it resynchronizes at the next plausible sync byte
      (one byte past the false header), so one corrupt frame never takes
      down the rest of the stream.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        #: Raw bytes skipped while hunting for a sync byte.
        self.garbage_bytes = 0
        #: Totals by outcome, for the gateway's metrics.
        self.frames_ok = 0
        self.frames_bad = 0

    @property
    def pending(self) -> int:
        """Bytes buffered awaiting completion (torn-frame tail)."""
        return len(self._buf)

    def feed(self, data: bytes) -> Iterator[Frame | FrameError]:
        """Consume ``data``; yield complete frames and typed errors."""
        self._buf.extend(data)
        while True:
            # Hunt for the sync byte; bytes before it are line noise.
            start = self._buf.find(HEADER_BYTE)
            if start < 0:
                self.garbage_bytes += len(self._buf)
                self._buf.clear()
                return
            if start > 0:
                self.garbage_bytes += start
                del self._buf[:start]
            if len(self._buf) < _HEAD_LEN:
                return  # torn header; wait for more bytes
            length = (self._buf[3] << 8) | self._buf[4]
            if length > MAX_PAYLOAD:
                self.frames_bad += 1
                yield FrameError(
                    "malformed_frame",
                    f"LEN {length} exceeds {MAX_PAYLOAD}",
                )
                del self._buf[:1]  # false sync; rescan one byte later
                continue
            total = _HEAD_LEN + length + _TRAILER_LEN
            if len(self._buf) < total:
                return  # torn frame; wait for more bytes
            raw = bytes(self._buf[:total])
            try:
                frame = decode_frame(raw)
            except FrameError as exc:
                self.frames_bad += 1
                yield exc
                # The "frame" may have been a false sync on garbage that
                # contained 0xAA: drop only the sync byte and rescan, so
                # a real frame inside the window is still recovered.
                del self._buf[:1]
                continue
            self.frames_ok += 1
            del self._buf[:total]
            yield frame

    def finish(self) -> FrameError | None:
        """EOF: a non-empty buffer is a truncated trailing frame."""
        if not self._buf:
            return None
        pending = len(self._buf)
        self._buf.clear()
        self.frames_bad += 1
        return FrameError(
            "malformed_frame",
            f"stream ended mid-frame ({pending} bytes buffered)",
        )
