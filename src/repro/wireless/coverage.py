"""Sensor-network coverage & connectivity via local neighbor discovery.

The paper's future work also names "coverage ... of sensor networks" and
ad-hoc networks (§VII, refs [27][29][31]).  A deployed sensor field
verifies its own coverage by each node discovering the neighbors inside
its radio range and reporting the link set; the network is usable iff the
discovered communication graph is connected.

Unlike the clique of :mod:`repro.wireless.neighbor`, interference here is
*local*: a listener only superposes the transmitters within its own
range, so one slot can yield discoveries in one part of the field and
collisions in another.  QCD preamble framing plays the same role as in
the clique -- listeners classify each local slot from 2l bits and sleep
through garbage -- which is precisely the energy economy a battery-run
field cares about.

The simulator is adjacency-matrix vectorized: per slot, one Bernoulli
transmit vector, neighbor counts by a boolean mat-vec, and per-listener
slot types from the counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.detector import CollisionDetector, SlotType
from repro.core.timing import TimingModel
from repro.sim.fast import _miss_prob_scalar

__all__ = ["SensorField", "CoverageResult", "run_field_discovery"]


@dataclass(frozen=True)
class SensorField:
    """A deployed sensor field.

    Attributes
    ----------
    positions:
        (n, 2) array of coordinates in metres.
    radio_range:
        Communication radius (disk model).
    """

    positions: np.ndarray
    radio_range: float

    def __post_init__(self) -> None:
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise ValueError("positions must be an (n, 2) array")
        if self.radio_range <= 0:
            raise ValueError("radio_range must be positive")

    @classmethod
    def random(
        cls,
        n: int,
        width: float,
        height: float,
        radio_range: float,
        rng: np.random.Generator,
    ) -> "SensorField":
        pos = np.column_stack(
            [rng.uniform(0, width, n), rng.uniform(0, height, n)]
        )
        return cls(pos, radio_range)

    @property
    def n(self) -> int:
        return int(self.positions.shape[0])

    def adjacency(self) -> np.ndarray:
        """Boolean adjacency under the disk model (no self-loops)."""
        diff = self.positions[:, None, :] - self.positions[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))
        adj = dist <= self.radio_range
        np.fill_diagonal(adj, False)
        return adj

    def graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        adj = self.adjacency()
        g.add_edges_from(zip(*np.nonzero(np.triu(adj))))
        return g

    def is_connected(self) -> bool:
        return self.n <= 1 or nx.is_connected(self.graph())


@dataclass(frozen=True)
class CoverageResult:
    """Outcome of a field-wide discovery run."""

    field: SensorField
    slots: int
    discovered: np.ndarray  # directed: discovered[i, j] = i heard j
    listen_time: float
    garbage_receptions: int

    @property
    def true_edges(self) -> int:
        return int(self.field.adjacency().sum()) // 2

    @property
    def discovered_fraction(self) -> float:
        """Fraction of directed neighbor relations discovered."""
        total = int(self.field.adjacency().sum())
        if total == 0:
            return 1.0
        return float((self.discovered & self.field.adjacency()).sum()) / total

    @property
    def complete(self) -> bool:
        return self.discovered_fraction == 1.0

    def discovered_graph(self) -> nx.Graph:
        """Undirected graph of links confirmed in *both* directions."""
        mutual = self.discovered & self.discovered.T & self.field.adjacency()
        g = nx.Graph()
        g.add_nodes_from(range(self.field.n))
        g.add_edges_from(zip(*np.nonzero(np.triu(mutual))))
        return g

    def connectivity_verified(self) -> bool:
        """True iff the mutually-discovered graph is connected -- the
        operational question coverage verification answers."""
        return self.field.n <= 1 or nx.is_connected(self.discovered_graph())


def run_field_discovery(
    field: SensorField,
    detector: CollisionDetector,
    timing: TimingModel,
    rng: np.random.Generator,
    tx_prob: float | None = None,
    max_slots: int = 1_000_000,
    until: str = "complete",
) -> CoverageResult:
    """Run slotted local discovery over the whole field.

    ``tx_prob`` defaults to ``1 / (1 + mean degree)``, the local analogue
    of the clique's 1/n.  ``until`` is ``"complete"`` (every directed
    neighbor relation heard) or ``"connected"`` (stop as soon as the
    mutually-discovered graph is connected -- much earlier).
    """
    if until not in ("complete", "connected"):
        raise ValueError("until must be 'complete' or 'connected'")
    adj = field.adjacency()
    n = field.n
    if n < 2:
        raise ValueError("need at least 2 sensors")
    degrees = adj.sum(axis=1)
    if tx_prob is None:
        tx_prob = 1.0 / (1.0 + float(degrees.mean()))
    if not 0.0 < tx_prob < 1.0:
        raise ValueError("tx_prob must be in (0, 1)")
    miss_prob = _miss_prob_scalar(detector)
    dur = {
        kind: timing.slot_duration(detector, kind)
        for kind in (SlotType.IDLE, SlotType.SINGLE, SlotType.COLLIDED)
    }
    discovered = np.zeros((n, n), dtype=bool)
    target = int(adj.sum())
    found = 0
    listen_time = 0.0
    garbage = 0
    slot = 0
    check_connect = until == "connected"
    adj_int = adj.astype(np.int32)

    while slot < max_slots:
        if until == "complete" and found >= target:
            break
        tx = rng.random(n) < tx_prob
        counts = adj_int @ tx.astype(np.int32)
        listeners = ~tx
        idle_l = listeners & (counts == 0)
        single_l = listeners & (counts == 1)
        multi_l = listeners & (counts >= 2)
        listen_time += float(idle_l.sum()) * dur[SlotType.IDLE]
        listen_time += float(single_l.sum()) * dur[SlotType.SINGLE]
        if single_l.any():
            for j in np.nonzero(tx)[0]:
                hearers = single_l & adj[:, j]
                newly = hearers & ~discovered[:, j]
                if newly.any():
                    discovered[newly, j] = True
                    found += int(newly.sum())
        if multi_l.any():
            # Each listener independently classifies its local collision;
            # a miss means it demodulates garbage at single-slot cost.
            for i in np.nonzero(multi_l)[0]:
                if rng.random() < miss_prob(int(counts[i])):
                    garbage += 1
                    listen_time += dur[SlotType.SINGLE] - dur[SlotType.COLLIDED]
            listen_time += float(multi_l.sum()) * dur[SlotType.COLLIDED]
        slot += 1
        if check_connect and slot % 16 == 0:
            partial = CoverageResult(field, slot, discovered, listen_time, garbage)
            if partial.connectivity_verified():
                break

    return CoverageResult(
        field=field,
        slots=slot,
        discovered=discovered,
        listen_time=listen_time,
        garbage_receptions=garbage,
    )
