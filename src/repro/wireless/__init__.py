"""Beyond RFID: the paper's future-work transfer of QCD.

Section VII: "this design can be easily extended to other wireless
fields, for example the neighbor discovery [...] of sensor networks".
This package carries the collision-preamble idea into coordinator-free
wireless settings:

* :mod:`repro.wireless.neighbor` -- slotted ALOHA ("birthday protocol")
  neighbor discovery in a clique, with the collision detector deciding
  how long listeners keep their radios on per slot.  QCD cannot shorten
  the *latency* here (a half-duplex transmitter cannot hear its own
  collision), but it slashes the *listener energy*: a receiver classifies
  the slot from the 2l-bit preamble and powers down through garbage,
  instead of demodulating 96 bits of every idle and collided slot.
* :mod:`repro.wireless.coverage` -- multi-hop version: a deployed sensor
  field verifies its coverage/connectivity by *local* neighbor discovery
  (interference is per-listener, not global), the paper's other named
  future-work target.
"""

from repro.wireless.coverage import (
    CoverageResult,
    SensorField,
    run_field_discovery,
)
from repro.wireless.neighbor import (
    DiscoveryResult,
    expected_discovery_slots,
    optimal_tx_probability,
    run_discovery,
)

__all__ = [
    "run_discovery",
    "DiscoveryResult",
    "expected_discovery_slots",
    "optimal_tx_probability",
    "SensorField",
    "CoverageResult",
    "run_field_discovery",
]
