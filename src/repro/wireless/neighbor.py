"""Slotted ALOHA neighbor discovery with pluggable collision detection.

The classic "birthday protocol" (Vasudevan et al., MobiCom 2009 -- the
paper's reference [26]): ``n`` nodes share a slotted channel; in every
slot each node independently *transmits* its announcement with probability
``p`` (optimal: 1/n) and *listens* otherwise.  A listener discovers the
transmitter iff exactly one node transmitted.  Full discovery is a coupon
collector: node i must catch each neighbor j as the lone transmitter while
i itself is listening, which happens per slot with probability

    q = p · (1 − p)^(n−1)

so ``E[slots to hear everyone] ≈ H_{n−1} / q`` and, with p = 1/n,
``q ≈ 1/(e·n)`` -- the same 1/e that caps FSA throughput in Lemma 1.

Where QCD enters: discovery *latency* is fixed by the contention process,
but a listener's **radio-on time** is not.  Announcements are framed like
RFID replies -- with CRC-CD framing a listener demodulates
``l_id + l_crc`` bits in every slot before it can validate or discard;
with QCD framing it reads the 2l-bit collision preamble, classifies the
slot, and sleeps through the remainder unless the slot is single.  The
same Theorem 1 guarantees the classification, with the same
``(2^l − 1)^{−(m−1)}`` residual miss rate (a missed collision costs the
listener a garbage reception, counted separately).

The simulation is vectorized: one Bernoulli draw matrix per slot batch,
and the discovery matrix updates only on single-transmitter slots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.detector import CollisionDetector, SlotType
from repro.core.timing import TimingModel
from repro.sim.fast import _miss_prob_scalar

__all__ = [
    "DiscoveryResult",
    "run_discovery",
    "expected_discovery_slots",
    "optimal_tx_probability",
]


@dataclass(frozen=True)
class DiscoveryResult:
    """Outcome of one neighbor-discovery run.

    Attributes
    ----------
    n_nodes / slots:
        Population and total slots until full discovery (or the cap).
    complete:
        Whether every node discovered every neighbor.
    discovery_slot:
        Slot index at which each node completed (length ``n_nodes``;
        -1 when incomplete).
    idle_slots / single_slots / collided_slots:
        Channel-wide slot mix.
    listen_time:
        Total radio-on time across all listeners (the energy proxy),
        per the detector's slot-classification framing.
    garbage_receptions:
        Collided slots a listener mistook for singles (QCD misses) and
        demodulated in full.
    """

    n_nodes: int
    slots: int
    complete: bool
    discovery_slot: np.ndarray
    idle_slots: int
    single_slots: int
    collided_slots: int
    listen_time: float
    garbage_receptions: int

    @property
    def mean_discovery_slot(self) -> float:
        done = self.discovery_slot[self.discovery_slot >= 0]
        return float(done.mean()) if done.size else math.nan

    @property
    def listen_time_per_node(self) -> float:
        return self.listen_time / self.n_nodes if self.n_nodes else 0.0


def optimal_tx_probability(n: int) -> float:
    """p = 1/n maximizes the single-transmitter probability (same
    derivative argument as Lemma 1)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return 1.0 / n


def expected_discovery_slots(n: int, p: float | None = None) -> float:
    """Coupon-collector estimate of E[slots] until one node has heard all
    n−1 neighbors: ``H_{n−1} / (p·(1−p)^{n−1})``."""
    if n < 2:
        return 0.0
    if p is None:
        p = optimal_tx_probability(n)
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    q = p * (1.0 - p) ** (n - 1)
    harmonic = sum(1.0 / k for k in range(1, n))
    return harmonic / q


def run_discovery(
    n: int,
    detector: CollisionDetector,
    timing: TimingModel,
    rng: np.random.Generator,
    tx_prob: float | None = None,
    max_slots: int = 2_000_000,
) -> DiscoveryResult:
    """Simulate the birthday protocol until full discovery.

    ``listen_time`` charges each listener
    ``timing.slot_duration(detector, detected_type)`` per slot -- i.e. a
    CRC-CD listener rides out the full announcement window regardless,
    while a QCD listener stops at the preamble for idle/collided slots.
    """
    if n < 2:
        raise ValueError("neighbor discovery needs n >= 2")
    p = tx_prob if tx_prob is not None else optimal_tx_probability(n)
    if not 0.0 < p < 1.0:
        raise ValueError("tx_prob must be in (0, 1)")
    miss_prob = _miss_prob_scalar(detector)
    dur = {
        kind: timing.slot_duration(detector, kind)
        for kind in (SlotType.IDLE, SlotType.SINGLE, SlotType.COLLIDED)
    }

    heard = np.zeros((n, n), dtype=bool)
    np.fill_diagonal(heard, True)
    discovery_slot = np.full(n, -1, dtype=np.int64)
    idle = single = collided = 0
    garbage = 0
    listen_time = 0.0
    slot = 0
    remaining_nodes = n

    while remaining_nodes and slot < max_slots:
        tx_mask = rng.random(n) < p
        m = int(tx_mask.sum())
        listeners = n - m
        if m == 0:
            idle += 1
            listen_time += listeners * dur[SlotType.IDLE]
        elif m == 1:
            single += 1
            listen_time += listeners * dur[SlotType.SINGLE]
            speaker = int(np.nonzero(tx_mask)[0][0])
            newly = ~heard[:, speaker] & ~tx_mask
            heard[newly, speaker] = True
            # Only single slots can complete a node's collection.
            done_now = np.nonzero(
                newly & (discovery_slot < 0) & heard.all(axis=1)
            )[0]
            if done_now.size:
                discovery_slot[done_now] = slot
                remaining_nodes -= int(done_now.size)
        else:
            collided += 1
            if rng.random() < miss_prob(m):
                # Listeners misread the slot as single and demodulate the
                # garbled announcement in full.
                garbage += listeners
                listen_time += listeners * dur[SlotType.SINGLE]
            else:
                listen_time += listeners * dur[SlotType.COLLIDED]
        slot += 1

    return DiscoveryResult(
        n_nodes=n,
        slots=slot,
        complete=remaining_nodes == 0,
        discovery_slot=discovery_slot,
        idle_slots=idle,
        single_slots=single,
        collided_slots=collided,
        listen_time=listen_time,
        garbage_receptions=garbage,
    )
