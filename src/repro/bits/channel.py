"""The shared backscatter channel.

The paper abstracts the physical layer as follows (Section IV-A): when
``m`` tags transmit in the same slot, the reader receives the bitwise
Boolean sum of their signals::

    s = s_1 ∨ s_2 ∨ ... ∨ s_m,   |s| = |s_1| = ... = |s_m|

:class:`Channel` implements exactly this model, distinguishing the *absence*
of a transmission (idle slot -- the reader receives nothing) from an
all-zero signal.  It also accounts for the airtime consumed, which is what
the paper's timing model charges (``τ`` per bit).

Two physical effects beyond the paper's noise-free, capture-free setting
are available for robustness studies (both off by default):

* **bit errors** -- each received bit flips independently with
  ``bit_error_rate``;
* **capture effect** -- in a collided slot, one tag may be so much
  stronger than the rest that the reader decodes *its* signal cleanly
  instead of the superposition.  ``P(capture | m transmitters) =
  capture_probability · capture_falloff^(m−2)``: likeliest for pair
  collisions, decaying as more interferers pile in (the standard
  power-ratio intuition).  After a capture, :attr:`last_capture_index`
  holds the index of the surviving transmitter so the reader can credit
  the right tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bits.bitvec import BitVector
from repro.bits.rng import RngStream

__all__ = ["Channel", "ChannelStats"]


@dataclass
class ChannelStats:
    """Running totals of channel activity."""

    slots: int = 0
    transmissions: int = 0
    bits_on_air: int = 0
    flipped_bits: int = 0
    captures: int = 0

    def reset(self) -> None:
        self.slots = 0
        self.transmissions = 0
        self.bits_on_air = 0
        self.flipped_bits = 0
        self.captures = 0


@dataclass
class Channel:
    """A Boolean-sum backscatter channel.

    Parameters
    ----------
    bit_error_rate:
        Probability that each received bit is flipped independently
        (0.0 = the paper's noiseless channel).
    capture_probability:
        Probability that a *pair* collision resolves to the stronger tag's
        clean signal (0.0 = the paper's capture-free model).
    capture_falloff:
        Multiplicative decay of the capture probability per additional
        interferer beyond two.
    rng:
        Random stream for bit flips / capture draws; required iff either
        effect is enabled.
    """

    bit_error_rate: float = 0.0
    capture_probability: float = 0.0
    capture_falloff: float = 0.5
    rng: RngStream | None = None
    stats: ChannelStats = field(default_factory=ChannelStats)
    #: Index (into the transmitted signal list) of the tag whose signal
    #: survived a capture in the most recent slot, or ``None``.
    last_capture_index: int | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.bit_error_rate < 1.0:
            raise ValueError("bit_error_rate must be in [0, 1)")
        if not 0.0 <= self.capture_probability <= 1.0:
            raise ValueError("capture_probability must be in [0, 1]")
        if not 0.0 < self.capture_falloff <= 1.0:
            raise ValueError("capture_falloff must be in (0, 1]")
        needs_rng = self.bit_error_rate > 0.0 or self.capture_probability > 0.0
        if needs_rng and self.rng is None:
            raise ValueError(
                "a rng is required when bit_error_rate or "
                "capture_probability is > 0"
            )

    def transmit(self, signals: Sequence[BitVector]) -> BitVector | None:
        """Superpose the signals of one slot.

        Returns ``None`` for an idle slot (no transmitters).  All signals
        must have equal length -- the slotted protocol guarantees tags are
        bit-synchronous.  Check :attr:`last_capture_index` after the call
        to learn whether (and whose) capture occurred.
        """
        self.stats.slots += 1
        self.last_capture_index = None
        if not signals:
            return None
        self.stats.transmissions += len(signals)
        self.stats.bits_on_air += sum(s.length for s in signals)
        if len(signals) >= 2 and self.capture_probability > 0.0:
            p = self.capture_probability * self.capture_falloff ** (
                len(signals) - 2
            )
            assert self.rng is not None
            if float(self.rng.random()) < p:
                idx = int(self.rng.integers(0, len(signals)))
                self.last_capture_index = idx
                self.stats.captures += 1
                received = signals[idx]
                if self.bit_error_rate > 0.0:
                    received = self._corrupt(received)
                return received
        received = BitVector.superpose(signals)
        if self.bit_error_rate > 0.0:
            received = self._corrupt(received)
        return received

    @property
    def supports_packed(self) -> bool:
        """True when the channel is a pure Boolean sum (the paper's
        noise-free, capture-free model) -- the only setting the uint64
        fast path covers; bit errors and captures need the object layer.
        """
        return self.bit_error_rate == 0.0 and self.capture_probability == 0.0

    def transmit_packed(self, values: Sequence[int], bits: int) -> int | None:
        """Superpose packed ≤64-bit payloads: the uint64 fast path.

        Semantics and statistics match :meth:`transmit` over the
        equivalent equal-length :class:`BitVector` signals.  Only valid on
        a channel with :attr:`supports_packed`.
        """
        self.stats.slots += 1
        self.last_capture_index = None
        if not values:
            return None
        n = len(values)
        self.stats.transmissions += n
        self.stats.bits_on_air += bits * n
        if n == 1:
            return values[0]
        if n <= 32:
            # Typical collided slots hold a handful of tags; a plain int
            # OR loop beats the array round-trip at these sizes.
            acc = 0
            for v in values:
                acc |= v
            return acc
        return int(
            np.bitwise_or.reduce(np.fromiter(values, np.uint64, count=n))
        )

    def transmit_packed_many(
        self, values: np.ndarray, counts: np.ndarray, bits: int
    ) -> np.ndarray:
        """Superpose every slot of a frame in one call.

        ``values`` holds all of the frame's packed payloads slot-major
        (slot 0's transmitters first) as uint64; ``counts[s]`` is slot
        ``s``'s transmitter count.  Returns one uint64 per slot -- the
        segmented OR-reduction of that slot's payloads, 0 for idle slots
        (QCD payloads are strictly positive, so 0 is unambiguous there;
        callers that need idle-vs-zero must consult ``counts``).

        Statistics are updated exactly as ``len(counts)`` calls to
        :meth:`transmit_packed` would.  Only valid with
        :attr:`supports_packed`.
        """
        n_slots = len(counts)
        total = len(values)
        self.stats.slots += n_slots
        self.stats.transmissions += total
        self.stats.bits_on_air += bits * total
        self.last_capture_index = None
        superposed = np.zeros(n_slots, dtype=np.uint64)
        if total:
            occupied = counts > 0
            # Exclusive prefix sum = each slot's segment start; keeping
            # only occupied slots' starts makes the index list strictly
            # increasing, which is what reduceat's segment semantics
            # need (an empty segment would alias its neighbor).
            starts = np.zeros(n_slots, dtype=np.intp)
            np.cumsum(counts[:-1], out=starts[1:])
            superposed[occupied] = np.bitwise_or.reduceat(
                values, starts[occupied]
            )
        return superposed

    def _corrupt(self, signal: BitVector) -> BitVector:
        assert self.rng is not None
        flips = self.rng.random(signal.length) < self.bit_error_rate
        if not flips.any():
            return signal
        mask = BitVector.from_bits(int(f) for f in flips)
        self.stats.flipped_bits += int(flips.sum())
        return signal ^ mask
