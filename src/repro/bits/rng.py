"""Deterministic, spawnable random-number streams.

Every stochastic component of the simulator (each tag, each reader, each
Monte-Carlo round) draws from its own independent substream derived from a
single experiment seed via :class:`numpy.random.SeedSequence` spawning.
This gives two properties the experiment harness relies on:

* **Reproducibility** -- a run is a pure function of its seed;
* **Insensitivity to ordering** -- adding a component (e.g. one more tag)
  does not perturb the draws of unrelated components.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngStream", "make_rng"]


class RngStream:
    """A seeded random stream that can spawn independent children.

    Thin wrapper over ``numpy.random.Generator`` + ``SeedSequence`` that
    keeps the seed-sequence handle around so substreams can be derived
    hierarchically and deterministically.
    """

    def __init__(self, seed_seq: np.random.SeedSequence) -> None:
        self._seq = seed_seq
        self.generator = np.random.Generator(np.random.PCG64(seed_seq))

    @classmethod
    def from_seed(cls, seed: int | None) -> "RngStream":
        return cls(np.random.SeedSequence(seed))

    def spawn(self, n: int) -> list["RngStream"]:
        """Derive ``n`` independent child streams."""
        return [RngStream(s) for s in self._seq.spawn(n)]

    def child(self) -> "RngStream":
        """Derive a single independent child stream."""
        return self.spawn(1)[0]

    # Convenience pass-throughs for the most common draws -----------------

    def integers(self, low: int, high: int | None = None, size=None, **kw):
        return self.generator.integers(low, high, size=size, **kw)

    def random(self, size=None):
        return self.generator.random(size)

    def choice(self, a, size=None, replace=True, p=None):
        return self.generator.choice(a, size=size, replace=replace, p=p)

    def shuffle(self, x) -> None:
        self.generator.shuffle(x)

    def exponential(self, scale: float = 1.0, size=None):
        return self.generator.exponential(scale, size)

    def binomial(self, n, p, size=None):
        return self.generator.binomial(n, p, size)

    def uniform(self, low=0.0, high=1.0, size=None):
        return self.generator.uniform(low, high, size)

    def __repr__(self) -> str:
        return f"RngStream(entropy={self._seq.entropy!r}, key={self._seq.spawn_key!r})"


def make_rng(seed: int | None = None) -> RngStream:
    """Create a root :class:`RngStream` from an integer seed (or entropy)."""
    return RngStream.from_seed(seed)
