"""Cyclic redundancy check engines.

The paper's baseline collision-detection scheme, CRC-CD, has every tag
transmit ``id ⊕ crc(id)``.  This module implements the CRC substrate from
scratch:

* :class:`CrcSpec` -- the standard Rocksoft parameter model
  (width / polynomial / init / reflect-in / reflect-out / xor-out);
* :class:`CrcEngine` -- two interchangeable implementations:

  - ``bitwise``: the textbook shift-register algorithm, O(l) in the message
    length with a handful of operations per bit.  This is the engine the
    paper's Table IV instruction-count argument is about, so it also counts
    the operations it performs (see :attr:`CrcEngine.last_op_count`).
  - ``table``: byte-at-a-time with a 256-entry lookup table (the "1 KB
    extra memory" of Table IV for a 32-bit CRC).

Registered parameter sets (check values from the standard CRC catalogue,
message ``b"123456789"``):

========================  =====  ==========  ==========
name                      width  polynomial  check
========================  =====  ==========  ==========
``CRC5_EPC``                  5        0x09        0x00
``CRC16_CCITT_FALSE``        16      0x1021      0x29B1
``CRC16_GEN2``               16      0x1021      0x906E
``CRC16_BUYPASS``            16      0x8005      0xFEE8
``CRC16_IBM``                16      0x8005      0xAEE7
``CRC32_IEEE``               32  0x04C11DB7  0xCBF43926
========================  =====  ==========  ==========

``CRC16_GEN2`` is the EPC Class-1 Gen-2 / ISO 18000-6C CRC-16 (the
CCITT polynomial with init ``0xFFFF`` and the output complemented; catalogue
name CRC-16/GENIBUS).  The paper's analysis uses a 32-bit CRC
(``l_crc = 32``), for which we provide ``CRC32_IEEE``.

``CRC16_BUYPASS`` (catalogue CRC-16/BUYPASS, a.k.a. CRC-16/UMTS and
CRC-16/VERIFONE) is the unreflected IBM polynomial 0x8005 with init 0 --
the frame trailer of CL7206C2-style reader wire protocols, used by
:mod:`repro.gateway.codec`.  ``CRC16_IBM`` is the same computation with
init ``0xFFFF`` (catalogue CRC-16/CMS), the variant some reader firmware
revisions ship instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits.bitvec import BitVector

__all__ = [
    "CrcSpec",
    "CrcEngine",
    "CRC5_EPC",
    "CRC16_CCITT_FALSE",
    "CRC16_GEN2",
    "CRC16_BUYPASS",
    "CRC16_IBM",
    "CRC32_IEEE",
    "reflect",
]


def reflect(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value``."""
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


@dataclass(frozen=True)
class CrcSpec:
    """Rocksoft-model CRC parameters.

    Attributes
    ----------
    name:
        Catalogue name, for reporting.
    width:
        CRC width in bits.
    poly:
        Generator polynomial (normal representation, MSB-first, without the
        implicit leading 1).
    init:
        Initial shift-register value.
    refin / refout:
        Whether input bytes / the final register are bit-reflected.
    xorout:
        Final XOR applied to the register.
    check:
        Expected CRC of ``b"123456789"`` -- used by the self-test.
    """

    name: str
    width: int
    poly: int
    init: int
    refin: bool
    refout: bool
    xorout: int
    check: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("CRC width must be positive")
        mask = (1 << self.width) - 1
        for field in ("poly", "init", "xorout", "check"):
            if not 0 <= getattr(self, field) <= mask:
                raise ValueError(f"{field} does not fit in {self.width} bits")


CRC5_EPC = CrcSpec("CRC-5/EPC-C1G2", 5, 0x09, 0x09, False, False, 0x00, 0x00)
CRC16_CCITT_FALSE = CrcSpec(
    "CRC-16/CCITT-FALSE", 16, 0x1021, 0xFFFF, False, False, 0x0000, 0x29B1
)
CRC16_GEN2 = CrcSpec(
    "CRC-16/GEN2", 16, 0x1021, 0xFFFF, False, False, 0xFFFF, 0xD64E
)
CRC16_BUYPASS = CrcSpec(
    "CRC-16/BUYPASS", 16, 0x8005, 0x0000, False, False, 0x0000, 0xFEE8
)
CRC16_IBM = CrcSpec(
    "CRC-16/IBM-FFFF", 16, 0x8005, 0xFFFF, False, False, 0x0000, 0xAEE7
)
CRC32_IEEE = CrcSpec(
    "CRC-32/IEEE", 32, 0x04C11DB7, 0xFFFFFFFF, True, True, 0xFFFFFFFF, 0xCBF43926
)


class CrcEngine:
    """A CRC calculator over bit strings.

    Parameters
    ----------
    spec:
        The CRC parameter set.
    method:
        ``"bitwise"`` (shift register, counts its operations) or
        ``"table"`` (byte-wise lookup; requires bit lengths divisible by 8
        unless ``refin`` is False, in which case trailing bits fall back to
        the bitwise path).
    """

    def __init__(self, spec: CrcSpec, method: str = "bitwise") -> None:
        if method not in ("bitwise", "table"):
            raise ValueError(f"unknown CRC method {method!r}")
        if method == "table" and spec.width < 8:
            raise ValueError("table-driven CRC requires width >= 8")
        self.spec = spec
        self.method = method
        self._mask = (1 << spec.width) - 1
        self._top = 1 << (spec.width - 1)
        self._table: np.ndarray | None = None
        #: Number of primitive shift/xor operations performed by the most
        #: recent :meth:`compute_bits` call (bitwise method only).  Backs the
        #: Table IV instruction-count comparison.
        self.last_op_count: int = 0
        if method == "table":
            self._table = self._build_table()

    # ------------------------------------------------------------------
    # Table construction
    # ------------------------------------------------------------------

    def _build_table(self) -> np.ndarray:
        """The classic 256-entry byte table (1 KB of uint32 for CRC-32)."""
        spec = self.spec
        table = np.zeros(256, dtype=np.uint64)
        for byte in range(256):
            if spec.refin:
                reg = reflect(byte, 8) << (spec.width - 8) if spec.width >= 8 else 0
            else:
                reg = byte << (spec.width - 8) if spec.width >= 8 else 0
            for _ in range(8):
                if reg & self._top:
                    reg = ((reg << 1) ^ spec.poly) & self._mask
                else:
                    reg = (reg << 1) & self._mask
            if spec.refin:
                reg = reflect(reg, spec.width)
            table[byte] = reg
        return table

    @property
    def table_memory_bytes(self) -> int:
        """Memory footprint of the lookup table: 256 entries of
        ``ceil(width/8)`` bytes (1 KB for CRC-32, per the paper's Table IV)."""
        return 256 * ((self.spec.width + 7) // 8)

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------

    def compute_bits(self, bits: BitVector) -> BitVector:
        """CRC of an arbitrary-length bit string, returned as a BitVector of
        ``spec.width`` bits."""
        if self.method == "table" and bits.length % 8 == 0:
            value = self._compute_table(bits.to_bytes())
        else:
            value = self._compute_bitwise(bits)
        return BitVector(value, self.spec.width)

    def compute_bytes(self, data: bytes) -> int:
        """CRC of a byte string, as an integer (catalogue convention)."""
        if self.method == "table":
            return self._compute_table(data)
        return self._compute_bitwise(BitVector.from_bytes(data))

    def _compute_bitwise(self, bits: BitVector) -> int:
        spec = self.spec
        reg = spec.init
        ops = 0
        if spec.refin:
            # Reflected input: process each byte LSB-first.  For bit strings
            # whose length is not a multiple of 8 we process bit-by-bit in
            # transmission order after per-byte reflection of whole bytes.
            stream = self._reflected_bit_stream(bits)
        else:
            stream = iter(bits)
        for bit in stream:
            top = (reg >> (spec.width - 1)) & 1
            reg = ((reg << 1) & self._mask) | 0
            if top ^ bit:
                reg ^= spec.poly
                ops += 1
            ops += 2  # shift + compare
        if spec.refout:
            reg = reflect(reg, spec.width)
        self.last_op_count = ops
        return (reg ^ spec.xorout) & self._mask

    @staticmethod
    def _reflected_bit_stream(bits: BitVector):
        """Yield bits with each whole byte reversed (refin semantics)."""
        raw = bits.to_bits()
        for i in range(0, len(raw), 8):
            chunk = raw[i : i + 8]
            yield from reversed(chunk)

    def _compute_table(self, data: bytes) -> int:
        spec = self.spec
        assert self._table is not None
        reg = spec.init
        if spec.refin:
            reg = reflect(reg, spec.width)
            for byte in data:
                idx = (reg ^ byte) & 0xFF
                reg = (reg >> 8) ^ int(self._table[idx])
        else:
            shift = spec.width - 8
            for byte in data:
                idx = ((reg >> shift) ^ byte) & 0xFF if shift >= 0 else byte
                reg = ((reg << 8) & self._mask) ^ int(self._table[idx])
        if spec.refout != spec.refin:
            reg = reflect(reg, spec.width)
        return (reg ^ spec.xorout) & self._mask

    # ------------------------------------------------------------------
    # Self test
    # ------------------------------------------------------------------

    def self_test(self) -> bool:
        """Check the engine against the catalogue check value."""
        return self.compute_bytes(b"123456789") == self.spec.check

    def __repr__(self) -> str:
        return f"CrcEngine({self.spec.name}, method={self.method!r})"
