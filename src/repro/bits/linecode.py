"""Backscatter line codes: FM0 and Miller (EPC Gen2 tag-to-reader PHY).

The paper's Boolean-sum abstraction lives one layer above the line code;
this module provides that layer so the simulator's signals can be taken
all the way to baseband symbols when wanted (and so the Miller factor in
:class:`repro.core.gen2_timing.Gen2TimingModel` is grounded in a real
codec rather than a constant).

**FM0 (bi-phase space):** the baseband level *always* inverts at a symbol
boundary; a data-0 adds a mid-symbol inversion, a data-1 does not.  Each
data bit becomes two half-symbol levels; decoding checks the boundary
inversion, which gives FM0 its self-clocking and single-error visibility.

**Miller (modulated subcarrier):** the level inverts mid-symbol for a
data-1, and at the boundary *between two consecutive data-0s*; the
baseband sequence is then multiplied onto ``m`` subcarrier cycles per
symbol (m = 2, 4, 8).  We model the baseband rule exactly and subcarrier
multiplication as half-symbol repetition.

Both codecs detect line-rule violations -- a superposition of two
misaligned transmissions generally breaks the inversion rules, which is
the physical intuition behind "collided signals are garbage" that the
paper's OR model abstracts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.bitvec import BitVector

__all__ = ["FM0Codec", "MillerCodec", "LineCodeError"]


class LineCodeError(ValueError):
    """Raised when a waveform violates the line-code rules."""


@dataclass(frozen=True)
class FM0Codec:
    """FM0 encoder/decoder over half-symbol levels.

    The waveform is represented as a :class:`BitVector` of levels, two
    per data bit (1 = high, 0 = low).  ``initial_level`` is the level
    *before* the first symbol (Gen2 readers synchronize on a known
    preamble, which fixes it).
    """

    initial_level: int = 1

    def __post_init__(self) -> None:
        if self.initial_level not in (0, 1):
            raise ValueError("initial_level must be 0 or 1")

    def encode(self, data: BitVector) -> BitVector:
        levels: list[int] = []
        level = self.initial_level
        for bit in data:
            level ^= 1  # boundary inversion, always
            first = level
            if bit == 0:
                level ^= 1  # mid-symbol inversion for data-0
            levels.append(first)
            levels.append(level)
        return BitVector.from_bits(levels)

    def decode(self, waveform: BitVector) -> BitVector:
        if waveform.length % 2:
            raise LineCodeError("FM0 waveform must have even length")
        bits: list[int] = []
        prev = self.initial_level
        for k in range(0, waveform.length, 2):
            first, second = waveform.bit(k), waveform.bit(k + 1)
            if first == prev:
                raise LineCodeError(
                    f"missing FM0 boundary inversion at symbol {k // 2}"
                )
            bits.append(0 if second != first else 1)
            prev = second
        return BitVector.from_bits(bits)

    def is_valid(self, waveform: BitVector) -> bool:
        try:
            self.decode(waveform)
            return True
        except LineCodeError:
            return False


@dataclass(frozen=True)
class MillerCodec:
    """Miller baseband encoder/decoder with subcarrier factor ``m``.

    ``m = 1`` yields plain Miller baseband (two half-symbols per bit);
    ``m ∈ {2, 4, 8}`` repeats each half-symbol ``m`` times, modelling the
    subcarrier cycles that slow the backlink by the Miller factor.
    """

    m: int = 1
    initial_level: int = 1

    def __post_init__(self) -> None:
        if self.m not in (1, 2, 4, 8):
            raise ValueError("m must be 1, 2, 4, or 8")
        if self.initial_level not in (0, 1):
            raise ValueError("initial_level must be 0 or 1")

    @property
    def halves_per_bit(self) -> int:
        return 2 * self.m

    def encode(self, data: BitVector) -> BitVector:
        levels: list[int] = []
        level = self.initial_level
        prev_bit: int | None = None
        for bit in data:
            if bit == 0 and prev_bit == 0:
                level ^= 1  # inversion between consecutive zeros
            first = level
            if bit == 1:
                level ^= 1  # mid-symbol inversion for data-1
            levels.extend([first] * self.m)
            levels.extend([level] * self.m)
            prev_bit = bit
        return BitVector.from_bits(levels)

    def decode(self, waveform: BitVector) -> BitVector:
        hpb = self.halves_per_bit
        if waveform.length % hpb:
            raise LineCodeError(
                f"Miller-{self.m} waveform length must be a multiple of {hpb}"
            )
        bits: list[int] = []
        level = self.initial_level
        prev_bit: int | None = None
        for s in range(0, waveform.length, hpb):
            halves = [waveform.bit(s + k) for k in range(hpb)]
            first_half = halves[: self.m]
            second_half = halves[self.m :]
            if len(set(first_half)) != 1 or len(set(second_half)) != 1:
                raise LineCodeError(f"subcarrier glitch in symbol {s // hpb}")
            first, second = first_half[0], second_half[0]
            expected_first = level
            bit: int
            if first == expected_first:
                bit = 1 if second != first else 0
                if bit == 0 and prev_bit == 0:
                    raise LineCodeError(
                        f"missing 0-0 boundary inversion at symbol {s // hpb}"
                    )
            else:
                # Level flipped at the boundary: only legal between zeros.
                if prev_bit != 0:
                    raise LineCodeError(
                        f"illegal boundary inversion at symbol {s // hpb}"
                    )
                bit = 1 if second != first else 0
                if bit != 0:
                    raise LineCodeError(
                        f"boundary inversion before a one at symbol {s // hpb}"
                    )
            bits.append(bit)
            level = second
            prev_bit = bit
        return BitVector.from_bits(bits)

    def is_valid(self, waveform: BitVector) -> bool:
        try:
            self.decode(waveform)
            return True
        except LineCodeError:
            return False
