"""Fixed-length bit vectors with the Boolean-sum algebra of the paper.

The paper models the superposition of concurrent RF transmissions as a
bitwise Boolean sum (OR)::

    (011001) v (010010) = (011011)

:class:`BitVector` is the value type used throughout the simulator for tag
IDs, CRC codes, collision preambles, and composed channel signals.  It is
immutable, hashable, and implements the three operations the paper's
formalism needs:

* ``a | b`` -- bitwise Boolean sum (signal overlap), equal lengths required;
* ``~a``    -- bitwise complement *within the vector length* (the paper's
  collision function ``f(r) = r̄``);
* ``a + b`` -- concatenation (the paper's ``⊕`` operator, e.g. the collision
  preamble ``r ⊕ f(r)``).

Bits are indexed MSB-first: ``v[0]`` is the most significant bit, matching
transmission order on the air interface.

The class is backed by a Python ``int`` plus a length.  For the simulator's
hot paths (tens of thousands of concurrent draws), :func:`pack_ints` /
:func:`unpack_ints` provide vectorized conversions to/from ``numpy`` arrays
so batch algebra can run without per-bit Python loops.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["BitVector", "pack_ints", "unpack_ints"]


class BitVector:
    """An immutable, fixed-length string of bits.

    Parameters
    ----------
    value:
        Non-negative integer holding the bit pattern.  Must fit in
        ``length`` bits.
    length:
        Number of bits (> 0 unless the vector is empty).

    Examples
    --------
    >>> a = BitVector(0b011001, 6)
    >>> b = BitVector(0b010010, 6)
    >>> (a | b).to_bitstring()
    '011011'
    >>> (~a).to_bitstring()
    '100110'
    >>> (a + b).length
    12
    """

    __slots__ = ("_value", "_length")

    def __init__(self, value: int, length: int) -> None:
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        if value < 0:
            raise ValueError(f"value must be >= 0, got {value}")
        if value >> length:
            raise ValueError(
                f"value {value:#x} does not fit in {length} bits"
            )
        self._value = value
        self._length = length

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zeros(cls, length: int) -> "BitVector":
        """The all-zero vector of ``length`` bits."""
        return cls(0, length)

    @classmethod
    def ones(cls, length: int) -> "BitVector":
        """The all-one vector of ``length`` bits."""
        return cls((1 << length) - 1, length)

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitVector":
        """Build from an MSB-first iterable of 0/1 values."""
        value = 0
        length = 0
        for b in bits:
            if b not in (0, 1):
                raise ValueError(f"bits must be 0 or 1, got {b!r}")
            value = (value << 1) | b
            length += 1
        return cls(value, length)

    @classmethod
    def from_bitstring(cls, s: str) -> "BitVector":
        """Build from a string such as ``"011011"`` (MSB first)."""
        if s and set(s) - {"0", "1"}:
            raise ValueError(f"bitstring must contain only 0/1: {s!r}")
        return cls(int(s, 2) if s else 0, len(s))

    @classmethod
    def from_bytes(cls, data: bytes, length: int | None = None) -> "BitVector":
        """Build from big-endian bytes; ``length`` defaults to ``8*len(data)``."""
        nbits = 8 * len(data) if length is None else length
        value = int.from_bytes(data, "big")
        if length is not None:
            excess = 8 * len(data) - length
            if excess < 0:
                raise ValueError("length exceeds the provided data")
            value >>= excess
        return cls(value, nbits)

    @classmethod
    def random(cls, length: int, rng: np.random.Generator) -> "BitVector":
        """A uniformly random vector of ``length`` bits.

        Stream-compatible with the historical 64-bits-per-iteration loop:
        the full chunks come from one vectorized full-range draw (one
        64-bit word each, most significant chunk first) and the trailing
        partial chunk from the same bounded draw the loop made.
        """
        if length == 0:
            return cls(0, 0)
        n_full, rem = divmod(length, 64)
        value = 0
        if n_full:
            chunks = rng.integers(0, 1 << 64, size=n_full, dtype=np.uint64)
            value = int.from_bytes(chunks.astype(">u8").tobytes(), "big")
        if rem:
            value = (value << rem) | int(
                rng.integers(0, 1 << rem, dtype=np.uint64)
            )
        return cls(value, length)

    # ------------------------------------------------------------------
    # Core properties
    # ------------------------------------------------------------------

    @property
    def value(self) -> int:
        """The integer value of the bit pattern (MSB-first reading)."""
        return self._value

    @property
    def length(self) -> int:
        """Number of bits."""
        return self._length

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        """True iff any bit is set (an empty vector is falsy)."""
        return self._value != 0

    def is_zero(self) -> bool:
        """True iff every bit is 0 -- the paper's idle-slot signal."""
        return self._value == 0

    def popcount(self) -> int:
        """Number of set bits."""
        return self._value.bit_count()

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def _check_same_length(self, other: "BitVector", op: str) -> None:
        if self._length != other._length:
            raise ValueError(
                f"{op} requires equal lengths: {self._length} != {other._length}"
            )

    def __or__(self, other: "BitVector") -> "BitVector":
        """Bitwise Boolean sum -- the paper's signal-overlap operator ``∨``."""
        if not isinstance(other, BitVector):
            return NotImplemented
        self._check_same_length(other, "Boolean sum")
        return BitVector(self._value | other._value, self._length)

    def __and__(self, other: "BitVector") -> "BitVector":
        if not isinstance(other, BitVector):
            return NotImplemented
        self._check_same_length(other, "AND")
        return BitVector(self._value & other._value, self._length)

    def __xor__(self, other: "BitVector") -> "BitVector":
        if not isinstance(other, BitVector):
            return NotImplemented
        self._check_same_length(other, "XOR")
        return BitVector(self._value ^ other._value, self._length)

    def __invert__(self) -> "BitVector":
        """Bitwise complement within the vector length (``f(r) = r̄``)."""
        return BitVector(self._value ^ ((1 << self._length) - 1), self._length)

    def __add__(self, other: "BitVector") -> "BitVector":
        """Concatenation -- the paper's ``⊕`` operator."""
        if not isinstance(other, BitVector):
            return NotImplemented
        return BitVector(
            (self._value << other._length) | other._value,
            self._length + other._length,
        )

    @staticmethod
    def superpose(signals: Sequence["BitVector"]) -> "BitVector":
        """Boolean sum of one or more equal-length vectors.

        Raises :class:`ValueError` on an empty sequence -- an idle slot has
        *no* signal rather than a zero signal, and callers must model that
        distinction explicitly (see :class:`repro.bits.channel.Channel`).
        """
        if not signals:
            raise ValueError("superpose() requires at least one signal")
        first = signals[0]
        value = first._value
        for s in signals[1:]:
            if s._length != first._length:
                raise ValueError(
                    "superpose() requires equal lengths: "
                    f"{first._length} != {s._length}"
                )
            value |= s._value
        return BitVector(value, first._length)

    # ------------------------------------------------------------------
    # Indexing / slicing
    # ------------------------------------------------------------------

    def bit(self, k: int) -> int:
        """The bit at MSB-first position ``k`` (0-based)."""
        if not 0 <= k < self._length:
            raise IndexError(f"bit index {k} out of range [0, {self._length})")
        return (self._value >> (self._length - 1 - k)) & 1

    def __getitem__(self, key: int | slice) -> "int | BitVector":
        if isinstance(key, int):
            if key < 0:
                key += self._length
            return self.bit(key)
        start, stop, step = key.indices(self._length)
        if step != 1:
            raise ValueError("BitVector slicing requires step 1")
        if stop <= start:
            return BitVector(0, 0)
        width = stop - start
        shifted = self._value >> (self._length - stop)
        return BitVector(shifted & ((1 << width) - 1), width)

    def __iter__(self) -> Iterator[int]:
        for k in range(self._length):
            yield self.bit(k)

    def startswith(self, prefix: "BitVector") -> bool:
        """True iff this vector begins with ``prefix`` (MSB-first)."""
        if prefix._length > self._length:
            return False
        return self[: prefix._length] == prefix

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def to_int(self) -> int:
        return self._value

    def to_bits(self) -> list[int]:
        """MSB-first list of 0/1 ints."""
        return [self.bit(k) for k in range(self._length)]

    def to_bitstring(self) -> str:
        return format(self._value, f"0{self._length}b") if self._length else ""

    def to_bytes(self) -> bytes:
        """Big-endian bytes, left-aligned (MSB of the vector is the MSB of
        byte 0); the final byte is zero-padded on the right."""
        nbytes = (self._length + 7) // 8
        pad = 8 * nbytes - self._length
        return (self._value << pad).to_bytes(nbytes, "big")

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._value == other._value and self._length == other._length

    def __hash__(self) -> int:
        return hash((self._value, self._length))

    def __repr__(self) -> str:
        if self._length <= 32:
            return f"BitVector('{self.to_bitstring()}')"
        return f"BitVector(value={self._value:#x}, length={self._length})"


def pack_ints(values: np.ndarray, length: int) -> list[BitVector]:
    """Convert an array of non-negative ints into ``BitVector`` objects.

    ``length`` must be <= 64.  Used to lift vectorized numpy draws (e.g. a
    batch of random preamble integers) into the object layer.
    """
    if length > 64:
        raise ValueError("pack_ints supports lengths up to 64 bits")
    arr = np.asarray(values, dtype=np.uint64)
    if length < 64 and np.any(arr >> np.uint64(length)):
        raise ValueError(f"some values do not fit in {length} bits")
    # tolist() converts to plain ints in one C pass; the constructor then
    # skips the per-element numpy-scalar unboxing the old loop paid for.
    return [BitVector(v, length) for v in arr.tolist()]


def unpack_ints(vectors: Sequence[BitVector]) -> np.ndarray:
    """Convert equal-length ``BitVector`` objects (<= 64 bits) to uint64."""
    n = len(vectors)
    if not n:
        return np.empty(0, dtype=np.uint64)
    width = vectors[0]._length
    if width > 64:
        raise ValueError("unpack_ints supports lengths up to 64 bits")
    if any(v._length != width for v in vectors):
        raise ValueError("unpack_ints requires equal-length vectors")
    # fromiter fills the array in one C loop, without the intermediate
    # Python list the old implementation built.
    return np.fromiter((v._value for v in vectors), np.uint64, count=n)
