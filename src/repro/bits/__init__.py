"""Bit-level substrate for the RFID simulation stack.

This package provides the primitives the paper's signal model is built on:

* :mod:`repro.bits.bitvec` -- fixed-length bit strings with the bitwise
  Boolean-sum (OR) algebra used to model overlapping backscatter signals.
* :mod:`repro.bits.crc` -- generic CRC engines (bitwise and table-driven)
  with the standard parameter sets used by EPC Gen2 / ISO 18000-6.
* :mod:`repro.bits.channel` -- the shared backscatter channel that
  superposes concurrent tag transmissions.
* :mod:`repro.bits.rng` -- deterministic, spawnable random streams so every
  experiment is reproducible from a single seed.
"""

from repro.bits.bitvec import BitVector, pack_ints, unpack_ints
from repro.bits.channel import Channel, ChannelStats
from repro.bits.crc import (
    CRC5_EPC,
    CRC16_BUYPASS,
    CRC16_CCITT_FALSE,
    CRC16_GEN2,
    CRC16_IBM,
    CRC32_IEEE,
    CrcEngine,
    CrcSpec,
)
from repro.bits.linecode import FM0Codec, LineCodeError, MillerCodec
from repro.bits.rng import RngStream, make_rng

__all__ = [
    "BitVector",
    "pack_ints",
    "unpack_ints",
    "Channel",
    "ChannelStats",
    "CrcSpec",
    "CrcEngine",
    "CRC5_EPC",
    "CRC16_BUYPASS",
    "CRC16_CCITT_FALSE",
    "CRC16_GEN2",
    "CRC16_IBM",
    "CRC32_IEEE",
    "RngStream",
    "make_rng",
    "FM0Codec",
    "MillerCodec",
    "LineCodeError",
]
