"""The counter-based Binary Tree protocol (paper Section III-B, Figure 2).

Every tag owns a counter, initialized to 0.  In each slot the tags whose
counter equals 0 transmit.  After the reader announces the slot type:

* **collided**: each tag involved in the collision draws a random bit and
  adds it to its counter (splitting the colliding set in two); every other
  unidentified tag increments its counter by 1 (making room for the new
  subset);
* **idle or single**: every unidentified tag decrements its counter by 1;
  a tag identified in a single slot retires and keeps silent.

The identification is one continuous sequence of slots (a depth-first walk
of a random binary tree); the paper's Table VIII reports the total slot
count in its "# of frame" column, and Lemma 2 gives the averages:
``2.885n`` slots total = ``n`` single + ``1.443n`` collided + ``0.442n``
idle.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.detector import SlotType
from repro.protocols.base import AntiCollisionProtocol
from repro.tags.tag import Tag

__all__ = ["BinaryTree"]


class BinaryTree(AntiCollisionProtocol):
    """Counter-based binary splitting."""

    framed = False

    def __init__(self) -> None:
        super().__init__()
        self.name = "BT"
        self._started = False

    def start(self, tags: Sequence[Tag]) -> None:
        super().start(tags)
        for tag in self.active_tags():
            tag.counter = 0
        self._started = True
        # Tree protocols run one continuous logical frame; the paper's
        # Table VIII reports the slot total in its "# of frame" column.
        self.frames_started = 1

    def admit(self, tag: Tag) -> None:
        """A late arrival joins the current front group so it gets a chance
        immediately (it will typically cause a collision and be split in)."""
        super().admit(tag)
        tag.counter = 0

    # ------------------------------------------------------------------

    def responders(self) -> list[Tag]:
        return [t for t in self.active_tags() if t.counter == 0]

    def feedback(self, effective: SlotType, responders: list[Tag]) -> None:
        self._note_slot()
        responder_set = set(id(t) for t in responders)
        if effective is SlotType.COLLIDED:
            for tag in self.active_tags():
                if id(tag) in responder_set:
                    tag.counter += int(tag.rng.integers(0, 2))
                else:
                    tag.counter += 1
        else:
            # Idle or single: everyone still contending moves up one slot.
            for tag in self.active_tags():
                tag.counter -= 1

    @property
    def finished(self) -> bool:
        """Done when no tag is contending.

        The counter automaton guarantees progress: the front group (counter
        0) either resolves (idle/single) or splits (collision), and every
        non-collided slot strictly decreases the sum of counters.
        """
        return self._started and not self.has_active_tags()
