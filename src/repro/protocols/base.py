"""The protocol interface shared by FSA- and tree-family algorithms.

An anti-collision protocol is a slot scheduler: given feedback about each
slot's (detected) type it decides which unidentified tags transmit next.
The reader (:class:`repro.sim.reader.Reader`) drives the loop::

    protocol.start(tags)
    while not protocol.finished:
        responders = protocol.responders()
        ... compose signals, classify with the detector ...
        protocol.feedback(effective_type, responders)

``feedback`` receives the *effective* slot type -- normally the true one,
but under the ``"lost"`` misdetection policy a missed collision is fed back
as SINGLE, because that is what the tags experience (they hear an ACK and
retire).  Protocols must therefore never assume a SINGLE slot had exactly
one responder.

Protocols also expose ``frames_started`` so the harness can report the
paper's "# of frame" column; tree protocols count the whole identification
as a sequence of slots and report the slot count there, matching the
paper's Table VIII convention.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.core.detector import SlotType
from repro.tags.tag import Tag

__all__ = ["AntiCollisionProtocol"]


class AntiCollisionProtocol(ABC):
    """Base class for slot-scheduling protocols."""

    #: Human-readable protocol name.
    name: str = "abstract"

    #: Whether the protocol counts progress in frames (FSA family) or in
    #: raw slots (tree family).
    framed: bool = True

    def __init__(self) -> None:
        self._tags: list[Tag] = []
        self._live: list[Tag] = []
        self.frames_started = 0
        self.slots_elapsed = 0

    # ------------------------------------------------------------------

    @property
    def tags(self) -> list[Tag]:
        return self._tags

    def active_tags(self) -> list[Tag]:
        """Tags still contending (not identified / retired)."""
        return [t for t in self._tags if not t.identified]

    def has_active_tags(self) -> bool:
        """Whether any tag is still contending -- amortized O(1).

        ``_live`` mirrors ``_tags`` but sheds identified tags from its
        tail as they are discovered; identification is monotone within a
        round (``start`` rebuilds the list), so each tag is popped at
        most once and the per-slot backlog check never rescans the whole
        population the way ``bool(active_tags())`` did.
        """
        live = self._live
        while live and live[-1].identified:
            live.pop()
        return bool(live)

    def start(self, tags: Sequence[Tag]) -> None:
        """Begin an identification round over ``tags``.

        Subclasses extend this to set up their initial schedule; they must
        call ``super().start(tags)`` first.
        """
        self._tags = list(tags)
        self._live = list(self._tags)
        self.frames_started = 0
        self.slots_elapsed = 0

    def admit(self, tag: Tag) -> None:
        """A tag entered the interrogation range mid-round (mobility).

        Default: it joins the contention set and will be scheduled from the
        next frame / splitting decision.  Subclasses refine this.
        """
        self._tags.append(tag)
        self._live.append(tag)

    def withdraw(self, tag: Tag) -> None:
        """A tag left the range mid-round; it stops responding."""
        if tag in self._tags:
            self._tags.remove(tag)
        if tag in self._live:
            self._live.remove(tag)

    # ------------------------------------------------------------------

    @abstractmethod
    def responders(self) -> list[Tag]:
        """The tags that transmit in the next slot (may be empty)."""

    @abstractmethod
    def feedback(self, effective: SlotType, responders: list[Tag]) -> None:
        """Deliver the reader's verdict for the slot just run.

        ``responders`` is the same list :meth:`responders` returned, so
        implementations need not recompute it.  Identified/retired marking
        is the *reader's* job; the protocol only updates its schedule.
        """

    # -- frame-batched fast path ---------------------------------------

    def frame_partition(self) -> list[Sequence[Tag]] | None:
        """The responder buckets of the *entire* frame about to run.

        Framed protocols with a frame-static schedule return one bucket
        per slot (``len(result)`` = frame size, bucket ``s`` holding the
        tags :meth:`responders` would return at slot ``s``), letting the
        reader superpose and classify the whole frame in vectorized form.
        A ``None`` return means "run this frame slot by slot": the
        default for tree protocols, and required whenever the schedule
        cannot be known upfront (mid-frame position, early-termination
        modes, tags admitted but not yet scheduled).  Only valid at a
        frame boundary; the buckets must cover every active tag exactly
        once.
        """
        return None

    def feedback_frame(
        self,
        effective: Sequence[int],
        responder_counts: Sequence[int],
        remaining: Sequence[int],
    ) -> None:
        """Deliver one whole frame's verdicts at once (reader fast path).

        Arguments are per-slot arrays over the frame last returned by
        :meth:`frame_partition`: the effective slot types (``SlotType``
        values as ints), the ground-truth responder counts, and the
        backlog left *after* each slot.  State updates must be identical
        to feeding the same verdicts through :meth:`feedback` slot by
        slot -- including ``slots_elapsed``, frame counters, and the RNG
        draws that schedule the next frame.
        """
        raise NotImplementedError(
            f"{self.name} does not support frame-batched feedback"
        )

    @property
    @abstractmethod
    def finished(self) -> bool:
        """True when the protocol has no more slots to run."""

    # ------------------------------------------------------------------

    def _note_slot(self) -> None:
        self.slots_elapsed += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
