"""Adaptive Query Splitting (Myung & Lee; paper Section II).

AQS is to the Query Tree what ABS is to the Binary Tree: the reader
remembers the outcome of the previous round.  The prefixes that produced
*single* or *idle* slots last round form the starting queue of the next
round, so an unchanged population is re-inventoried without a single
collision, and a changed one only pays splitting cost where tags actually
moved.  (A fresh round starts from the two one-bit prefixes as in plain
QT.)

Idle prefixes are retained because a tag that just *arrived* may land under
one; dropping them would orphan arrivals.  To keep the queue from growing
without bound after departures, *idle sibling pairs* are merged back into
their parent between rounds (the parent is guaranteed idle too, so the
merge loses nothing); a single-prefix is never merged, since combining it
with its sibling would re-create the collision the previous round already
paid to resolve.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.bits.bitvec import BitVector
from repro.core.detector import SlotType
from repro.protocols.base import AntiCollisionProtocol
from repro.tags.tag import Tag

__all__ = ["AdaptiveQuerySplitting"]


class AdaptiveQuerySplitting(AntiCollisionProtocol):
    """Query tree with a warm-start candidate queue."""

    framed = False

    def __init__(self, max_slots: int | None = None) -> None:
        super().__init__()
        self.name = "AQS"
        self.max_slots = max_slots
        self._queue: deque[BitVector] = deque()
        #: (prefix, was_idle) outcomes of this round, seeding the next.
        self.candidate_queue: list[tuple[BitVector, bool]] = []
        self.aborted = False

    def start(self, tags: Sequence[Tag], fresh: bool = True) -> None:
        AntiCollisionProtocol.start(self, tags)
        self.frames_started = 1  # one continuous logical frame
        self.aborted = False
        if fresh or not self.candidate_queue:
            self._queue = deque([BitVector(0, 1), BitVector(1, 1)])
        else:
            self._queue = deque(self._compact(self.candidate_queue))
        self.candidate_queue = []

    @staticmethod
    def _compact(candidates: Sequence[tuple[BitVector, bool]]) -> list[BitVector]:
        """Merge *idle* sibling pairs up to their parent, repeatedly.

        Single-prefixes are kept verbatim: merging one with anything could
        put two tags back under one probe.  Merging two idle siblings is
        safe -- their parent covers the same (empty) region.
        """
        idle = {p.to_bitstring() for p, was_idle in candidates if was_idle}
        keep = [p for p, was_idle in candidates if not was_idle]
        changed = True
        while changed:
            changed = False
            for s in sorted(idle, key=len, reverse=True):
                if len(s) <= 1 or s not in idle:
                    continue
                sibling = s[:-1] + ("1" if s[-1] == "0" else "0")
                if sibling in idle:
                    idle.discard(s)
                    idle.discard(sibling)
                    idle.add(s[:-1])
                    changed = True
                    break
        merged = keep + [BitVector.from_bitstring(s) for s in sorted(idle)]
        merged.sort(key=lambda p: (p.length, p.to_bitstring()))
        return merged

    # ------------------------------------------------------------------

    def responders(self) -> list[Tag]:
        if not self._queue:
            return []
        prefix = self._queue[0]
        return [t for t in self.active_tags() if t.responds_to_prefix(prefix)]

    def feedback(self, effective: SlotType, responders: list[Tag]) -> None:
        self._note_slot()
        prefix = self._queue.popleft()
        if effective is SlotType.COLLIDED:
            id_bits = self._tags[0].id_bits if self._tags else 0
            if prefix.length < id_bits:
                self._queue.append(prefix + BitVector(0, 1))
                self._queue.append(prefix + BitVector(1, 1))
        else:
            # Remember readable prefixes for the next round's warm start.
            self.candidate_queue.append((prefix, effective is SlotType.IDLE))
        if self.max_slots is not None and self.slots_elapsed >= self.max_slots:
            self.aborted = True
            self._queue.clear()

    @property
    def finished(self) -> bool:
        if not self._queue:
            return True
        if not self.has_active_tags():
            # Early exit: every tag identified.  The unprobed prefixes would
            # all read idle; fold them into the candidates so the next
            # round's warm start still covers their regions.
            self.candidate_queue.extend((p, True) for p in self._queue)
            self._queue.clear()
            return True
        return False
