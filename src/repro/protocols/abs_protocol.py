"""Adaptive Binary Splitting (Myung & Lee, MobiHoc 2006; paper Section II).

ABS extends the binary-tree protocol for *repeated* inventories of a
slowly-changing population.  Each tag remembers its slot position from the
previous round in an **allocated-slot counter (ASC)**; the reader walks
slots with a **progressed-slot counter (PSC)**.  A tag transmits when
``ASC == PSC``.  Per-slot rules:

* **single**: the responder is identified (it keeps its ASC for the next
  round); the reader advances, ``PSC += 1``;
* **collided**: each responder adds a random bit to its ASC (splitting the
  set); every tag with ``ASC > PSC`` increments its ASC (making room);
* **idle**: every tag with ``ASC > PSC`` decrements its ASC (closing the
  gap) -- this is how slots freed by departed tags are reclaimed.

A round ends when PSC passes the largest ASC.  Because identified tags
retain their ASCs, the *next* round replays the final (collision-free)
schedule and completes in exactly one slot per tag -- the "starts the tag
identification only from readable cycles" property the paper quotes.  New
arrivals pick a random ASC in the current range and are split in on
collision.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.detector import SlotType
from repro.protocols.base import AntiCollisionProtocol
from repro.tags.tag import Tag

__all__ = ["AdaptiveBinarySplitting"]


class AdaptiveBinarySplitting(AntiCollisionProtocol):
    """ABS: binary splitting with slot-schedule memory across rounds.

    The tag's ASC is stored in ``tag.counter``.  Call :meth:`start` with
    ``fresh=True`` (default) to forget prior schedules, or ``fresh=False``
    to begin a *readable* round that reuses the ASCs left by the previous
    round (tags must have been inventoried by this same protocol instance
    or carry valid counters).
    """

    framed = False

    def __init__(self) -> None:
        super().__init__()
        self.name = "ABS"
        self._psc = 0
        self._max_asc = 0

    def start(self, tags: Sequence[Tag], fresh: bool = True) -> None:
        AntiCollisionProtocol.start(self, tags)
        self.frames_started = 1  # one continuous logical frame
        self._psc = 0
        if fresh:
            for tag in self._tags:
                tag.counter = 0
            self._max_asc = 0
        else:
            self._max_asc = max((t.counter for t in self._tags), default=0)

    def admit(self, tag: Tag) -> None:
        """A new arrival draws a random ASC in the not-yet-progressed range
        so it contends exactly once this round."""
        super().admit(tag)
        hi = max(self._psc, self._max_asc)
        tag.counter = int(tag.rng.integers(self._psc, hi + 1))
        self._max_asc = max(self._max_asc, tag.counter)

    # ------------------------------------------------------------------

    def responders(self) -> list[Tag]:
        return [t for t in self.active_tags() if t.counter == self._psc]

    def feedback(self, effective: SlotType, responders: list[Tag]) -> None:
        self._note_slot()
        responder_set = set(id(t) for t in responders)
        if effective is SlotType.COLLIDED:
            for tag in self.active_tags():
                if id(tag) in responder_set:
                    tag.counter += int(tag.rng.integers(0, 2))
                else:
                    if tag.counter > self._psc:
                        tag.counter += 1
        elif effective is SlotType.IDLE:
            for tag in self.active_tags():
                if tag.counter > self._psc:
                    tag.counter -= 1
        else:  # single
            self._psc += 1
        self._max_asc = max(
            (t.counter for t in self.active_tags()), default=self._psc - 1
        )

    @property
    def finished(self) -> bool:
        """Round over when the reader has progressed past every ASC."""
        active = self.active_tags()
        if not active:
            return True
        return self._psc > max(t.counter for t in active)
