"""The Query Tree protocol (Law, Lee & Siu; paper Section II).

The reader keeps a queue of bit-string prefixes, initially the empty
prefix.  Each slot it broadcasts the front prefix; tags whose ID starts
with it respond.  On a collision the prefix is extended with 0 and with 1
and both are enqueued, deterministically splitting the responders by their
next ID bit.  The walk ends when the queue drains, so every tag is
eventually identified -- QT is *memoryless* on the tag side and immune to
the starvation problem of randomized protocols.

The flip side (paper Section II): a *malicious* tag that answers every
prefix drives the reader down an exponential walk of the full ID tree --
see :mod:`repro.security.blocker` for that attack and the selective
"blocker tag" privacy construction built on it.

The queue is bounded in our implementation (``max_slots``) so adversarial
populations terminate the simulation cleanly instead of hanging.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.bits.bitvec import BitVector
from repro.core.detector import SlotType
from repro.protocols.base import AntiCollisionProtocol
from repro.tags.tag import Tag

__all__ = ["QueryTree"]


class QueryTree(AntiCollisionProtocol):
    """Prefix-probing deterministic tree walk.

    Parameters
    ----------
    max_slots:
        Safety bound on the number of probes (default: none).  When the
        bound is hit -- which only happens under adversarial interference
        -- the protocol reports itself finished and leaves the remaining
        tags unidentified; the caller can inspect ``aborted``.
    """

    framed = False

    def __init__(self, max_slots: int | None = None) -> None:
        super().__init__()
        self.name = "QT"
        self.max_slots = max_slots
        self._queue: deque[BitVector] = deque()
        self._current: BitVector | None = None
        self.aborted = False

    def start(self, tags: Sequence[Tag]) -> None:
        super().start(tags)
        if tags and len({t.id_bits for t in tags}) > 1:
            raise ValueError("QueryTree requires uniform ID length")
        self._queue = deque([BitVector(0, 0)])
        self._current = None
        self.aborted = False
        self.frames_started = 1  # one continuous logical frame

    # ------------------------------------------------------------------

    def responders(self) -> list[Tag]:
        if not self._queue:
            return []
        self._current = self._queue[0]
        return [
            t
            for t in self.active_tags()
            if t.responds_to_prefix(self._current)
        ]

    def feedback(self, effective: SlotType, responders: list[Tag]) -> None:
        self._note_slot()
        prefix = self._queue.popleft()
        if effective is SlotType.COLLIDED:
            id_bits = self._tags[0].id_bits if self._tags else 0
            if prefix.length >= id_bits:
                # Prefix already spans the whole ID: only duplicate or
                # adversarial tags can still collide here; drop the branch.
                pass
            else:
                self._queue.append(prefix + BitVector(0, 1))
                self._queue.append(prefix + BitVector(1, 1))
        if self.max_slots is not None and self.slots_elapsed >= self.max_slots:
            self.aborted = True
            self._queue.clear()

    @property
    def finished(self) -> bool:
        return not self._queue or not self.has_active_tags()
