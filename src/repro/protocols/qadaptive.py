"""The EPC Gen2 'Q-adaptive' algorithm (paper Section II).

Gen2 readers maintain a floating-point parameter ``Q_fp``.  Tags draw a
slot counter uniformly from ``[0, 2^Q - 1]`` with ``Q = round(Q_fp)``; each
*QueryRep* decrements every counter, and a tag transmits when its counter
hits zero.  After each slot the reader nudges ``Q_fp``:

* collided slot: ``Q_fp = min(15, Q_fp + C)``;
* idle slot:     ``Q_fp = max(0,  Q_fp - C)``;
* single slot:   unchanged,

with ``C`` typically in [0.1, 0.5].  When ``round(Q_fp)`` moves away from
the ``Q`` in force, the reader issues a *QueryAdjust* and all unidentified
tags redraw from the new range -- this is the paper's description of the
reader "ending the current frame immediately and launching a new detecting
frame".

Simplifications vs. the full Gen2 state machine (documented, behaviour-
preserving for collision statistics): no session flags or select masks, and
collided tags simply redraw at the next QueryAdjust/Query rather than
waiting out the round.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.detector import SlotType
from repro.protocols.base import AntiCollisionProtocol
from repro.tags.tag import Tag

__all__ = ["QAdaptive"]


class QAdaptive(AntiCollisionProtocol):
    """EPC Class-1 Gen-2 style slot-count adaptation.

    Parameters
    ----------
    initial_q:
        Starting Q (Gen2 default 4 -> 16-slot rounds).
    c:
        The adjustment step C (0.1 <= C <= 0.5 per the standard's guidance).
    """

    framed = True

    Q_MIN, Q_MAX = 0.0, 15.0

    def __init__(self, initial_q: float = 4.0, c: float = 0.3) -> None:
        super().__init__()
        if not self.Q_MIN <= initial_q <= self.Q_MAX:
            raise ValueError("initial_q must be within [0, 15]")
        if not 0.0 < c <= 1.0:
            raise ValueError("c must be in (0, 1]")
        self.initial_q = initial_q
        self.c = c
        self.name = f"Q-Adaptive(C={c})"
        self.q_fp = initial_q
        self.q = round(initial_q)
        #: Q trajectory, one entry per slot (for analysis/plots).
        self.q_history: list[float] = []
        self._collided_pool: list[Tag] = []

    # ------------------------------------------------------------------

    def start(self, tags: Sequence[Tag]) -> None:
        super().start(tags)
        self.q_fp = self.initial_q
        self.q = round(self.initial_q)
        self.q_history = []
        self._collided_pool = []
        self._issue_query(self.active_tags())

    def _issue_query(self, contenders: list[Tag]) -> None:
        """Query/QueryAdjust: contenders draw from [0, 2^Q - 1]."""
        self.frames_started += 1
        span = 1 << self.q
        for tag in contenders:
            tag.counter = int(tag.rng.integers(0, span))
        self._collided_pool = []

    def admit(self, tag: Tag) -> None:
        super().admit(tag)
        tag.counter = int(tag.rng.integers(0, 1 << self.q))

    # ------------------------------------------------------------------

    def responders(self) -> list[Tag]:
        return [t for t in self.active_tags() if t.counter == 0]

    def feedback(self, effective: SlotType, responders: list[Tag]) -> None:
        self._note_slot()
        self.q_history.append(self.q_fp)
        if effective is SlotType.COLLIDED:
            self.q_fp = min(self.Q_MAX, self.q_fp + self.c)
            # Collided tags park until the next Query(Adjust).
            for tag in responders:
                self._collided_pool.append(tag)
                tag.counter = -1
        elif effective is SlotType.IDLE:
            self.q_fp = max(self.Q_MIN, self.q_fp - self.c)
        if self.finished:
            return
        new_q = round(self.q_fp)
        active = self.active_tags()
        waiting = [t for t in active if t.counter > 0]
        if new_q != self.q:
            # QueryAdjust: everyone still unidentified redraws.
            self.q = new_q
            self._issue_query(active)
            return
        if not waiting and not any(t.counter == 0 for t in active):
            # Round exhausted (all counters spent or parked): new Query.
            self._issue_query(active)
            return
        # QueryRep: decrement all positive counters.
        for tag in waiting:
            tag.counter -= 1

    @property
    def finished(self) -> bool:
        return not self.has_active_tags()
