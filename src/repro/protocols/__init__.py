"""Anti-collision protocols (the slot-scheduling layer).

Two families, per the paper's Section II/III:

* Framed Slotted ALOHA: :class:`~repro.protocols.fsa.FramedSlottedAloha`
  (fixed frame, the paper's Table VII policy),
  :class:`~repro.protocols.dfsa.DynamicFSA` (Lee-style frame adaptation via
  cardinality estimators) and
  :class:`~repro.protocols.qadaptive.QAdaptive` (EPC Gen2 'Q' algorithm);
* Tree protocols: :class:`~repro.protocols.bt.BinaryTree` (counter-based
  splitting, Section III-B), :class:`~repro.protocols.qt.QueryTree`
  (prefix probing), and the adaptive variants
  :class:`~repro.protocols.abs_protocol.AdaptiveBinarySplitting` and
  :class:`~repro.protocols.aqs.AdaptiveQuerySplitting` (Myung & Lee).

All protocols implement :class:`~repro.protocols.base.AntiCollisionProtocol`
and are detector-agnostic: they decide *who* transmits in each slot; the
collision detector decides how the reader classifies the slot.
"""

from repro.protocols.abs_protocol import AdaptiveBinarySplitting
from repro.protocols.aqs import AdaptiveQuerySplitting
from repro.protocols.base import AntiCollisionProtocol
from repro.protocols.bt import BinaryTree
from repro.protocols.dfsa import DynamicFSA
from repro.protocols.estimators import (
    EomLeeEstimator,
    LowerBoundEstimator,
    MleEstimator,
    SchouteEstimator,
    VogtEstimator,
)
from repro.protocols.fsa import FramedSlottedAloha
from repro.protocols.qadaptive import QAdaptive
from repro.protocols.qt import QueryTree

__all__ = [
    "AntiCollisionProtocol",
    "FramedSlottedAloha",
    "DynamicFSA",
    "QAdaptive",
    "BinaryTree",
    "QueryTree",
    "AdaptiveBinarySplitting",
    "AdaptiveQuerySplitting",
    "LowerBoundEstimator",
    "SchouteEstimator",
    "VogtEstimator",
    "EomLeeEstimator",
    "MleEstimator",
]
