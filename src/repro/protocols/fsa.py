"""Framed Slotted ALOHA with a fixed frame size (paper Section III-A).

The reader divides time into frames of ℱ slots.  Each unidentified tag
picks a slot uniformly at random within the frame and transmits there.
Tags that collide (or were misdetected) re-contend in the next frame; the
reader keeps issuing ℱ-slot frames until every tag is identified.

This constant-frame policy is the one that reproduces the paper's
Table VII slot distributions (DESIGN.md §5): the frame size stays at the
configured ℱ even as the backlog shrinks, which is why late frames are
dominated by idle slots.  For frame-size adaptation see
:class:`repro.protocols.dfsa.DynamicFSA` and
:class:`repro.protocols.qadaptive.QAdaptive`.

Termination: a real reader never observes the backlog directly, only slot
outcomes.  The default policy therefore keeps issuing frames until one
passes with *no* responder at all (an all-idle frame -- since every
unidentified tag answers somewhere in every frame, an all-idle frame proves
the backlog is empty).  That confirmation frame is what lifts the paper's
idle counts in Table VII by exactly ℱ over the identifying frames.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.detector import SlotType
from repro.protocols.base import AntiCollisionProtocol
from repro.tags.tag import Tag

__all__ = ["FramedSlottedAloha", "TERMINATIONS"]

#: Shared empty bucket for frame partitions (immutable: most slots of a
#: late frame are idle, so one sentinel beats per-slot list allocation).
_NO_TAGS: tuple[Tag, ...] = ()

#: FSA termination policies:
#: ``"confirm"``   -- stop after a frame with zero responders (the
#:                    knowledge-free reader of the paper's Table VII);
#: ``"frame"``     -- stop at the end of the frame that identified the last
#:                    tag (a reader that knows n);
#: ``"immediate"`` -- stop at the identifying slot itself (an oracle;
#:                    useful as an efficiency upper bound).
TERMINATIONS = ("confirm", "frame", "immediate")


class FramedSlottedAloha(AntiCollisionProtocol):
    """Fixed-frame FSA.

    Parameters
    ----------
    frame_size:
        ℱ, the number of slots per frame (Table VI pairs ℱ with the tag
        count, e.g. 30 slots for 50 tags).
    termination:
        One of :data:`TERMINATIONS`; default ``"confirm"`` (matches the
        paper's accounting).
    """

    framed = True

    def __init__(self, frame_size: int, termination: str = "confirm") -> None:
        super().__init__()
        if frame_size < 1:
            raise ValueError("frame_size must be >= 1")
        if termination not in TERMINATIONS:
            raise ValueError(
                f"termination must be one of {TERMINATIONS}, got {termination!r}"
            )
        self.frame_size = frame_size
        self.termination = termination
        self.name = f"FSA(F={frame_size})"
        self._slot_in_frame = 0
        self._frame_slots: dict[int, list[Tag]] = {}
        self._frame_had_responder = False
        self._done = False

    # ------------------------------------------------------------------

    def start(self, tags: Sequence[Tag]) -> None:
        super().start(tags)
        self._done = False
        if not self.active_tags() and self.termination != "confirm":
            self._done = True
            return
        self._begin_frame()

    def _begin_frame(self) -> None:
        """All still-active tags draw a slot uniformly in [0, ℱ)."""
        self.frames_started += 1
        self._slot_in_frame = 0
        self._frame_had_responder = False
        self._frame_slots = {}
        for tag in self.active_tags():
            choice = int(tag.rng.integers(0, self.frame_size))
            tag.slot_choice = choice
            self._frame_slots.setdefault(choice, []).append(tag)

    def admit(self, tag: Tag) -> None:
        """A tag arriving mid-frame waits for the next frame, as a real tag
        that missed the Query would."""
        super().admit(tag)
        tag.slot_choice = -1
        self._done = False

    def withdraw(self, tag: Tag) -> None:
        super().withdraw(tag)
        bucket = self._frame_slots.get(tag.slot_choice)
        if bucket and tag in bucket:
            bucket.remove(tag)

    # ------------------------------------------------------------------

    def responders(self) -> list[Tag]:
        return [
            t
            for t in self._frame_slots.get(self._slot_in_frame, [])
            if not t.identified
        ]

    def frame_partition(self):
        """Whole-frame responder buckets, at a frame boundary only.

        ``"immediate"`` termination is excluded: it can stop mid-frame,
        and the batched reader charges channel/detector bookkeeping for
        the full frame upfront.  The coverage check (scheduled == active)
        guards against callers that identified or admitted tags outside
        the reader loop; any mismatch falls back to the per-slot path.
        """
        if self._done or self._slot_in_frame != 0:
            return None
        if self.termination == "immediate":
            return None
        buckets: list[Sequence[Tag]] = [_NO_TAGS] * self.frame_size
        scheduled = 0
        for slot, bucket in self._frame_slots.items():
            if bucket:
                buckets[slot] = bucket
                scheduled += len(bucket)
        if scheduled != sum(1 for t in self._tags if not t.identified):
            return None
        return buckets

    def feedback_frame(self, effective, responder_counts, remaining) -> None:
        del effective  # fixed-frame FSA only needs occupancy, not types
        frame = self.frame_size
        self.slots_elapsed += frame
        self._slot_in_frame = frame
        self._frame_had_responder = any(responder_counts)
        backlog = bool(remaining[frame - 1])
        if self.termination == "confirm":
            if not self._frame_had_responder and not backlog:
                self._done = True
            else:
                self._begin_frame()
        elif backlog:
            self._begin_frame()
        else:
            self._done = True

    def feedback(self, effective: SlotType, responders: list[Tag]) -> None:
        self._note_slot()
        self._slot_in_frame += 1
        if responders:
            self._frame_had_responder = True
        backlog = self.has_active_tags()
        if self.termination == "immediate" and not backlog:
            self._done = True
            return
        if self._slot_in_frame >= self.frame_size:
            if self.termination == "confirm":
                # An all-idle frame proves an empty backlog -- unless tags
                # were admitted mid-frame (mobility) and are still waiting.
                if not self._frame_had_responder and not backlog:
                    self._done = True
                else:
                    self._begin_frame()
            elif backlog:
                self._begin_frame()
            else:
                self._done = True

    @property
    def finished(self) -> bool:
        """See :data:`TERMINATIONS` for when an inventory ends."""
        return self._done
