"""Dynamic Framed Slotted ALOHA (Lee et al., MobiQuitous 2005).

Like fixed FSA, but after every frame the reader re-estimates the backlog
from the observed slot mix and sizes the next frame to match (Lemma 1:
throughput is maximized when ℱ = n).  The estimator is pluggable
(:mod:`repro.protocols.estimators`); Schoute's 2.39-per-collision rule is
the default, as in Lee's EDFSA lineage.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.detector import SlotType
from repro.protocols.base import AntiCollisionProtocol
from repro.protocols.estimators import (
    BacklogEstimator,
    FrameObservation,
    SchouteEstimator,
)
from repro.tags.tag import Tag

__all__ = ["DynamicFSA"]

#: Shared empty bucket for frame partitions (see ``fsa._NO_TAGS``).
_NO_TAGS: tuple[Tag, ...] = ()


class DynamicFSA(AntiCollisionProtocol):
    """Frame-by-frame adaptive FSA.

    Parameters
    ----------
    initial_frame_size:
        ℱ for the first frame (the reader has no estimate yet).
    estimator:
        Backlog estimator applied to each completed frame.
    min_frame_size / max_frame_size:
        Clamp for the adapted frame length (readers cannot issue arbitrarily
        long or short frames; Gen2 bounds Q to [0, 15]).
    """

    framed = True

    def __init__(
        self,
        initial_frame_size: int = 16,
        estimator: BacklogEstimator | None = None,
        min_frame_size: int = 1,
        max_frame_size: int = 1 << 15,
    ) -> None:
        super().__init__()
        if initial_frame_size < 1:
            raise ValueError("initial_frame_size must be >= 1")
        if not 1 <= min_frame_size <= max_frame_size:
            raise ValueError("need 1 <= min_frame_size <= max_frame_size")
        self.estimator = estimator if estimator is not None else SchouteEstimator()
        self.initial_frame_size = initial_frame_size
        self.min_frame_size = min_frame_size
        self.max_frame_size = max_frame_size
        self.name = f"DFSA({self.estimator.name})"
        self.frame_size = initial_frame_size
        self._done = False
        self._slot_in_frame = 0
        self._frame_slots: dict[int, list[Tag]] = {}
        self._frame_counts = [0, 0, 0]  # idle, single, collided
        #: History of (frame_size, backlog_estimate) pairs, for analysis.
        self.adaptation_history: list[tuple[int, int]] = []

    # ------------------------------------------------------------------

    def start(self, tags: Sequence[Tag]) -> None:
        super().start(tags)
        self.frame_size = self.initial_frame_size
        self.adaptation_history = []
        self._done = not self.has_active_tags()
        if not self._done:
            self._begin_frame()

    def _begin_frame(self) -> None:
        self.frames_started += 1
        self._slot_in_frame = 0
        self._frame_counts = [0, 0, 0]
        self._frame_slots = {}
        for tag in self.active_tags():
            choice = int(tag.rng.integers(0, self.frame_size))
            tag.slot_choice = choice
            self._frame_slots.setdefault(choice, []).append(tag)

    def withdraw(self, tag: Tag) -> None:
        super().withdraw(tag)
        bucket = self._frame_slots.get(tag.slot_choice)
        if bucket and tag in bucket:
            bucket.remove(tag)

    # ------------------------------------------------------------------

    def responders(self) -> list[Tag]:
        return [
            t
            for t in self._frame_slots.get(self._slot_in_frame, [])
            if not t.identified
        ]

    def frame_partition(self):
        """Whole-frame responder buckets, at a frame boundary only.

        Same contract as :meth:`FramedSlottedAloha.frame_partition`; DFSA
        frames always run to completion, so no termination mode needs
        excluding.  The coverage check (scheduled == active) guards
        against out-of-band identification/admission and falls back to
        the per-slot path on any mismatch.
        """
        if self._done or self._slot_in_frame != 0:
            return None
        buckets: list[Sequence[Tag]] = [_NO_TAGS] * self.frame_size
        scheduled = 0
        for slot, bucket in self._frame_slots.items():
            if bucket:
                buckets[slot] = bucket
                scheduled += len(bucket)
        if scheduled != sum(1 for t in self._tags if not t.identified):
            return None
        return buckets

    def feedback_frame(self, effective, responder_counts, remaining) -> None:
        del responder_counts  # the estimator sees effective types only
        frame = self.frame_size
        self.slots_elapsed += frame
        self._slot_in_frame = frame
        counts = [0, 0, 0]
        for kind in effective:
            counts[kind] += 1
        self._frame_counts = counts
        if remaining[frame - 1]:
            self._adapt()
            self._begin_frame()
        else:
            self._done = True

    def feedback(self, effective: SlotType, responders: list[Tag]) -> None:
        self._note_slot()
        self._frame_counts[int(effective)] += 1
        self._slot_in_frame += 1
        if self._slot_in_frame >= self.frame_size:
            # The frame always runs to completion: a real reader cannot see
            # an empty backlog, only an all-idle frame.
            if self.has_active_tags():
                self._adapt()
                self._begin_frame()
            else:
                self._done = True

    def _adapt(self) -> None:
        obs = FrameObservation(
            frame_size=self.frame_size,
            idle=self._frame_counts[int(SlotType.IDLE)],
            single=self._frame_counts[int(SlotType.SINGLE)],
            collided=self._frame_counts[int(SlotType.COLLIDED)],
        )
        backlog = self.estimator.backlog(obs)
        self.frame_size = max(
            self.min_frame_size, min(self.max_frame_size, max(1, backlog))
        )
        self.adaptation_history.append((self.frame_size, backlog))

    @property
    def finished(self) -> bool:
        return self._done

    def admit(self, tag: Tag) -> None:
        """Late arrivals contend from the next frame."""
        super().admit(tag)
        tag.slot_choice = -1
        self._done = False
