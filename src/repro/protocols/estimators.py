"""Tag-cardinality estimators for dynamic FSA.

A dynamic FSA reader observes ``(N0, N1, Nc)`` -- idle / single / collided
slot counts of the last frame -- and must estimate the remaining backlog to
size the next frame (Lemma 1: throughput peaks at ℱ = n).  The paper cites
this line of work ([8], [14]-[16]); we implement the three classic
estimators it builds on:

* :class:`LowerBoundEstimator` -- every collided slot hides at least two
  tags: ``n̂ = 2·Nc``;
* :class:`SchouteEstimator` -- under a Poisson occupancy model the expected
  number of tags in a collided slot is 2.39: ``n̂ = 2.39·Nc``;
* :class:`VogtEstimator` -- minimum-distance fit: choose the ``n`` whose
  expected slot-count vector under binomial occupancy is closest (in
  Euclidean distance) to the observation;
* :class:`EomLeeEstimator` -- fixed-point refinement of the per-collision
  occupancy: iterate ``n̂ = N1 + k(n̂)·Nc`` with
  ``k(ρ) = E[X | X >= 2]`` for Poisson(ρ = n̂/F) occupancy (Eom & Lee's
  iterative estimator);
* :class:`MleEstimator` -- maximize the multinomial likelihood of the
  observed (N0, N1, Nc) over ``n``, treating slots as independent with
  the Poisson-occupancy type probabilities.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FrameObservation",
    "BacklogEstimator",
    "LowerBoundEstimator",
    "SchouteEstimator",
    "VogtEstimator",
    "EomLeeEstimator",
    "MleEstimator",
    "expected_slot_counts",
]


@dataclass(frozen=True)
class FrameObservation:
    """The reader's view of one completed frame."""

    frame_size: int
    idle: int
    single: int
    collided: int

    def __post_init__(self) -> None:
        if min(self.frame_size, self.idle, self.single, self.collided) < 0:
            raise ValueError("counts must be non-negative")
        if self.idle + self.single + self.collided != self.frame_size:
            raise ValueError(
                "idle + single + collided must equal frame_size "
                f"({self.idle}+{self.single}+{self.collided} != {self.frame_size})"
            )


def expected_slot_counts(n: int, frame_size: int) -> tuple[float, float, float]:
    """Expected (idle, single, collided) counts for ``n`` tags in a frame
    of ``frame_size`` slots under uniform random slot choice.

    Uses the exact binomial occupancy model:
    ``E[N0] = F(1-1/F)^n``, ``E[N1] = n(1-1/F)^(n-1)``.
    """
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")
    if n < 0:
        raise ValueError("n must be >= 0")
    if frame_size == 1:
        e0 = 1.0 if n == 0 else 0.0
        e1 = 1.0 if n == 1 else 0.0
        return e0, e1, 1.0 - e0 - e1
    q = 1.0 - 1.0 / frame_size
    e0 = frame_size * q**n
    e1 = n * q ** (n - 1)
    return e0, e1, frame_size - e0 - e1


class BacklogEstimator(ABC):
    """Estimate how many tags contended in the observed frame."""

    name: str = "abstract"

    @abstractmethod
    def estimate(self, obs: FrameObservation) -> float:
        """Estimated number of tags that transmitted in the frame
        (including the ``obs.single`` already-identified ones)."""

    def backlog(self, obs: FrameObservation) -> int:
        """Estimated number of *unidentified* tags after the frame."""
        remaining = self.estimate(obs) - obs.single
        return max(0, int(round(remaining)))


class LowerBoundEstimator(BacklogEstimator):
    """``n̂ = N1 + 2·Nc`` -- a collided slot holds >= 2 tags."""

    name = "lower-bound"

    def estimate(self, obs: FrameObservation) -> float:
        return obs.single + 2.0 * obs.collided


class SchouteEstimator(BacklogEstimator):
    """``n̂ = N1 + 2.39·Nc`` (Schoute 1983, Dynamic Frame Length ALOHA).

    2.39 is the expected occupancy of a collided slot when slot occupancy
    is Poisson(1), i.e. at the FSA operating point ℱ = n of Lemma 1:
    ``E[X | X >= 2] = (E[X] − P(X=1)) / P(X >= 2)
                    = (1 − 1/e) / (1 − 2/e) ≈ 2.392``.
    """

    name = "schoute"

    #: E[X | X >= 2] for X ~ Poisson(1).
    COEFFICIENT = (1.0 - 1.0 / math.e) / (1.0 - 2.0 / math.e)

    def estimate(self, obs: FrameObservation) -> float:
        return obs.single + self.COEFFICIENT * obs.collided


class EomLeeEstimator(BacklogEstimator):
    """Iterative occupancy refinement (Eom & Lee).

    Schoute's 2.39 assumes the frame was optimally sized (ρ = 1).  When it
    was not, the true expected collided-slot occupancy is
    ``k(ρ) = (ρ − ρe^{−ρ}) / (1 − e^{−ρ} − ρe^{−ρ})`` with ρ = n/F; this
    estimator solves the fixed point ``n̂ = N1 + k(n̂/F)·Nc``.
    """

    name = "eom-lee"

    def __init__(self, tol: float = 1e-3, max_iter: int = 100) -> None:
        if tol <= 0 or max_iter < 1:
            raise ValueError("tol must be > 0 and max_iter >= 1")
        self.tol = tol
        self.max_iter = max_iter

    @staticmethod
    def _k(rho: float) -> float:
        """E[X | X >= 2] for X ~ Poisson(rho)."""
        if rho <= 1e-9:
            return 2.0  # limit as rho -> 0: collisions are exactly pairs
        e = math.exp(-rho)
        denom = 1.0 - e - rho * e
        if denom <= 1e-12:
            return 2.0
        return max(2.0, (rho - rho * e) / denom)

    def estimate(self, obs: FrameObservation) -> float:
        if obs.collided == 0:
            return float(obs.single)
        guess = obs.single + 2.0 * obs.collided
        for _ in range(self.max_iter):
            k = self._k(guess / obs.frame_size)
            refined = obs.single + k * obs.collided
            if abs(refined - guess) < self.tol:
                return refined
            guess = refined
        return guess


class MleEstimator(BacklogEstimator):
    """Multinomial maximum likelihood over the slot-type counts.

    Per-slot type probabilities under Poisson(ρ) occupancy are
    ``p0 = e^{−ρ}``, ``p1 = ρe^{−ρ}``, ``pc = 1 − p0 − p1``; the slot
    types are treated as i.i.d. (exact in the Poisson limit).  Searches
    integer ``n`` like Vogt but scores by log-likelihood, which weights
    the rare counts correctly where Euclidean distance does not.
    """

    name = "mle"

    def __init__(self, max_factor: float = 8.0) -> None:
        if max_factor < 1.0:
            raise ValueError("max_factor must be >= 1")
        self.max_factor = max_factor

    @staticmethod
    def _loglik(n: int, obs: FrameObservation) -> float:
        rho = n / obs.frame_size
        p0 = math.exp(-rho)
        p1 = rho * p0
        pc = max(1e-300, 1.0 - p0 - p1)
        p0 = max(1e-300, p0)
        p1 = max(1e-300, p1)
        return (
            obs.idle * math.log(p0)
            + obs.single * math.log(p1)
            + obs.collided * math.log(pc)
        )

    def estimate(self, obs: FrameObservation) -> float:
        lo = obs.single + 2 * obs.collided
        if lo == 0:
            return float(obs.single)
        hi = max(lo + 1, int(math.ceil(lo * self.max_factor)))
        best_n, best_ll = lo, -math.inf
        for n in range(max(1, lo), hi + 1):
            ll = self._loglik(n, obs)
            if ll > best_ll:
                best_n, best_ll = n, ll
        return float(best_n)


class VogtEstimator(BacklogEstimator):
    """Minimum-distance estimator (Vogt 2002).

    Searches ``n`` in ``[N1 + 2·Nc, max_factor · (N1 + 2·Nc)]`` for the
    value minimizing the Euclidean distance between
    ``expected_slot_counts(n, F)`` and the observed ``(N0, N1, Nc)``.
    """

    name = "vogt"

    def __init__(self, max_factor: float = 8.0) -> None:
        if max_factor < 1.0:
            raise ValueError("max_factor must be >= 1")
        self.max_factor = max_factor

    def estimate(self, obs: FrameObservation) -> float:
        lo = obs.single + 2 * obs.collided
        if lo == 0:
            return float(obs.single)
        hi = max(lo + 1, int(math.ceil(lo * self.max_factor)))
        candidates = np.arange(lo, hi + 1)
        observed = np.array([obs.idle, obs.single, obs.collided], dtype=float)
        best_n, best_d = lo, math.inf
        for n in candidates:
            expected = np.array(expected_slot_counts(int(n), obs.frame_size))
            d = float(np.sum((expected - observed) ** 2))
            if d < best_d:
                best_n, best_d = int(n), d
        return float(best_n)
