"""Tag models: EPC identifiers, per-tag protocol state, populations.

* :mod:`repro.tags.epc` -- SGTIN-96 EPC encoding/decoding (the identifier
  structure behind the paper's "randomly selected 96-bit ID", Table V);
* :mod:`repro.tags.tag` -- the per-tag automaton state shared by all
  anti-collision protocols;
* :mod:`repro.tags.population` -- generators for unique-ID populations;
* :mod:`repro.tags.mobility` -- arrival/departure schedules for the mobile
  tag scenario motivating the paper's identification-delay metric.
"""

from repro.tags.epc import Sgtin96, PARTITION_TABLE
from repro.tags.mobility import MobilityEvent, MobilitySchedule, poisson_arrivals
from repro.tags.population import TagPopulation
from repro.tags.tag import Tag

__all__ = [
    "Tag",
    "TagPopulation",
    "Sgtin96",
    "PARTITION_TABLE",
    "MobilityEvent",
    "MobilitySchedule",
    "poisson_arrivals",
]
