"""The per-tag automaton state.

A :class:`Tag` carries everything the anti-collision protocols need:

* its identifier (an ``l_id``-bit integer, also available as a
  :class:`~repro.bits.bitvec.BitVector` for prefix matching in QT);
* the protocol scratch state (slot choice for FSA, the splitting counter
  for BT, the matched flag for QT);
* a private random stream, so its slot choices and QCD preamble draws are
  reproducible and independent of other tags;
* an optional position, for the spatial deployment of Table V.

Tags are deliberately dumb: all decisions live in the protocol objects,
mirroring the asymmetry of real RFID systems where tags are state machines
driven by reader commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bits.bitvec import BitVector
from repro.bits.rng import RngStream

__all__ = ["Tag"]


@dataclass
class Tag:
    """One RFID tag.

    Attributes
    ----------
    tag_id:
        The identifier as a non-negative integer.
    id_bits:
        Identifier length l_id (paper analysis: 64; deployment: 96).
    rng:
        The tag's private random stream.
    position:
        Optional (x, y) metres, for spatial deployments.
    counter:
        BT splitting counter (Section III-B).
    slot_choice:
        FSA slot chosen within the current frame (-1 = none).
    identified:
        Set once the reader has acknowledged this tag; an identified tag
        keeps silent for the rest of the inventory.
    identified_at:
        Simulation time at which identification completed (for the delay
        metric of Section VI-D); ``None`` until identified.
    """

    tag_id: int
    id_bits: int
    rng: RngStream
    position: tuple[float, float] | None = None
    counter: int = 0
    slot_choice: int = -1
    identified: bool = False
    identified_at: float | None = None
    lost: bool = False
    _id_vector: BitVector | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.tag_id < 0:
            raise ValueError("tag_id must be non-negative")
        if self.tag_id >> self.id_bits:
            raise ValueError(
                f"tag_id {self.tag_id:#x} does not fit in {self.id_bits} bits"
            )

    @property
    def id_vector(self) -> BitVector:
        """The identifier as a bit vector (cached)."""
        if self._id_vector is None:
            self._id_vector = BitVector(self.tag_id, self.id_bits)
        return self._id_vector

    def responds_to_prefix(self, prefix: BitVector) -> bool:
        """Whether this tag answers a Query-Tree probe with ``prefix``.

        Normal tags match on their ID prefix; adversarial tags (see
        :mod:`repro.security.blocker`) override this to answer always or
        within a protected zone.
        """
        return self.id_vector.startswith(prefix)

    def reset_protocol_state(self) -> None:
        """Return to the un-inventoried state (new identification round)."""
        self.counter = 0
        self.slot_choice = -1
        self.identified = False
        self.identified_at = None
        self.lost = False

    def mark_identified(self, at_time: float) -> None:
        if self.identified:
            raise RuntimeError(f"tag {self.tag_id:#x} identified twice")
        self.identified = True
        self.identified_at = at_time

    def __hash__(self) -> int:
        return hash((self.tag_id, self.id_bits))
