"""Tag mobility: arrivals into and departures from a reader's range.

Section VI-D motivates the identification-delay metric with mobile tags:
"the tag may move out of the reader's range before it is identified ... if
the identification is slow".  This module provides the event schedules the
discrete-event engine consumes to study exactly that scenario (see
``examples/mobile_tags.py``): tags arriving as a Poisson process, dwelling
for a random time, and leaving -- identified or not.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.bits.rng import RngStream
from repro.tags.tag import Tag

__all__ = ["MobilityEvent", "MobilitySchedule", "poisson_arrivals"]


@dataclass(frozen=True, order=True)
class MobilityEvent:
    """A tag entering (``kind='arrive'``) or leaving (``kind='depart'``)
    the interrogation range at ``time``."""

    time: float
    seq: int
    kind: str = field(compare=False)
    tag: Tag = field(compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("arrive", "depart"):
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("event time must be >= 0")


class MobilitySchedule:
    """A time-ordered sequence of arrival/departure events."""

    def __init__(self, events: Iterable[MobilityEvent] = ()) -> None:
        self._events: list[MobilityEvent] = sorted(events)

    def add(self, event: MobilityEvent) -> None:
        bisect.insort(self._events, event)

    def events_until(self, time: float) -> list[MobilityEvent]:
        """Pop and return all events with ``event.time <= time``."""
        idx = bisect.bisect_right(self._events, time, key=lambda e: e.time)
        due, self._events = self._events[:idx], self._events[idx:]
        return due

    def peek_next_time(self) -> float | None:
        return self._events[0].time if self._events else None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[MobilityEvent]:
        return iter(self._events)


def poisson_arrivals(
    tags: list[Tag],
    rate: float,
    dwell_mean: float,
    rng: RngStream,
    start: float = 0.0,
) -> MobilitySchedule:
    """Schedule the given tags as Poisson arrivals with exponential dwell.

    Parameters
    ----------
    tags:
        The tags to schedule, in arrival order.
    rate:
        Arrival rate (tags per time unit).
    dwell_mean:
        Mean time a tag stays in range; its departure is scheduled whether
        or not it gets identified (the simulator decides what that means).
    rng:
        Random stream for inter-arrival and dwell draws.
    start:
        Time of the first possible arrival.
    """
    if rate <= 0 or dwell_mean <= 0:
        raise ValueError("rate and dwell_mean must be positive")
    schedule = MobilitySchedule()
    t = start
    seq = 0
    for tag in tags:
        t += float(rng.exponential(1.0 / rate))
        dwell = float(rng.exponential(dwell_mean))
        schedule.add(MobilityEvent(time=t, seq=seq, kind="arrive", tag=tag))
        schedule.add(
            MobilityEvent(time=t + dwell, seq=seq + 1, kind="depart", tag=tag)
        )
        seq += 2
    return schedule
