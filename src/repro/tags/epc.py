"""SGTIN-96 EPC encoding.

The paper's deployment (Table V) gives every tag a "randomly selected
96-bit ID"; the EPC Class-1 Gen-2 standard structures such IDs.  We
implement the most common scheme, SGTIN-96 (Serialized GTIN):

=========  ====  =============================================
field      bits  meaning
=========  ====  =============================================
header        8  0x30 for SGTIN-96
filter        3  object class (e.g. 1 = POS item)
partition     3  split of the next 44 bits between company/item
company    20-40 GS1 company prefix
item       24-4  item reference (44 - company bits)
serial       38  serial number
=========  ====  =============================================

The partition table is from the GS1 Tag Data Standard.  Structured IDs
matter for the Query-Tree protocol and the privacy extensions, where ID
*prefixes* carry meaning (company prefixes are what a blocker tag shields).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.bitvec import BitVector
from repro.bits.rng import RngStream

__all__ = ["Sgtin96", "PARTITION_TABLE", "SGTIN96_HEADER"]

SGTIN96_HEADER = 0x30

#: GS1 TDS partition table: partition value -> (company_bits, item_bits).
PARTITION_TABLE: dict[int, tuple[int, int]] = {
    0: (40, 4),
    1: (37, 7),
    2: (34, 10),
    3: (30, 14),
    4: (27, 17),
    5: (24, 20),
    6: (20, 24),
}

_SERIAL_BITS = 38
_FILTER_BITS = 3
_PARTITION_BITS = 3
_HEADER_BITS = 8


@dataclass(frozen=True)
class Sgtin96:
    """A decoded SGTIN-96 EPC."""

    filter_value: int
    partition: int
    company_prefix: int
    item_reference: int
    serial: int

    def __post_init__(self) -> None:
        if self.partition not in PARTITION_TABLE:
            raise ValueError(f"invalid partition {self.partition}")
        company_bits, item_bits = PARTITION_TABLE[self.partition]
        if not 0 <= self.filter_value < (1 << _FILTER_BITS):
            raise ValueError("filter_value out of range")
        if not 0 <= self.company_prefix < (1 << company_bits):
            raise ValueError("company_prefix out of range for partition")
        if not 0 <= self.item_reference < (1 << item_bits):
            raise ValueError("item_reference out of range for partition")
        if not 0 <= self.serial < (1 << _SERIAL_BITS):
            raise ValueError("serial out of range")

    @property
    def company_bits(self) -> int:
        return PARTITION_TABLE[self.partition][0]

    @property
    def item_bits(self) -> int:
        return PARTITION_TABLE[self.partition][1]

    def encode(self) -> BitVector:
        """Pack into the 96-bit wire format."""
        header = BitVector(SGTIN96_HEADER, _HEADER_BITS)
        filt = BitVector(self.filter_value, _FILTER_BITS)
        part = BitVector(self.partition, _PARTITION_BITS)
        company = BitVector(self.company_prefix, self.company_bits)
        item = BitVector(self.item_reference, self.item_bits)
        serial = BitVector(self.serial, _SERIAL_BITS)
        epc = header + filt + part + company + item + serial
        assert epc.length == 96
        return epc

    @classmethod
    def decode(cls, epc: BitVector) -> "Sgtin96":
        """Unpack a 96-bit EPC; validates the header and partition."""
        if epc.length != 96:
            raise ValueError(f"SGTIN-96 requires 96 bits, got {epc.length}")
        if epc[:_HEADER_BITS].to_int() != SGTIN96_HEADER:
            raise ValueError(
                f"not an SGTIN-96 header: {epc[:_HEADER_BITS].to_int():#x}"
            )
        pos = _HEADER_BITS
        filt = epc[pos : pos + _FILTER_BITS].to_int()
        pos += _FILTER_BITS
        part = epc[pos : pos + _PARTITION_BITS].to_int()
        pos += _PARTITION_BITS
        if part not in PARTITION_TABLE:
            raise ValueError(f"invalid partition {part}")
        company_bits, item_bits = PARTITION_TABLE[part]
        company = epc[pos : pos + company_bits].to_int()
        pos += company_bits
        item = epc[pos : pos + item_bits].to_int()
        pos += item_bits
        serial = epc[pos : pos + _SERIAL_BITS].to_int()
        return cls(filt, part, company, item, serial)

    @classmethod
    def random(
        cls,
        rng: RngStream,
        partition: int = 5,
        company_prefix: int | None = None,
        filter_value: int = 1,
    ) -> "Sgtin96":
        """Draw a random SGTIN-96, optionally pinned to one company prefix
        (useful for populating one "owner" in privacy scenarios)."""
        company_bits, item_bits = PARTITION_TABLE[partition]
        if company_prefix is None:
            company_prefix = int(rng.integers(0, 1 << company_bits))
        return cls(
            filter_value=filter_value,
            partition=partition,
            company_prefix=company_prefix,
            item_reference=int(rng.integers(0, 1 << item_bits)),
            serial=int(rng.integers(0, 1 << _SERIAL_BITS)),
        )
