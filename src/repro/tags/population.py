"""Tag population generators.

The evaluation (Table V/VI) uses populations of 50 to 50 000 tags with
unique random IDs.  :class:`TagPopulation` produces such populations
reproducibly, with three ID layouts:

* ``"uniform"`` -- IDs drawn uniformly without replacement from the full
  ``l_id``-bit space (the paper's setting);
* ``"sgtin"``   -- structured SGTIN-96 EPCs (for QT/privacy scenarios);
* ``"sequential"`` -- worst-case clustered IDs (adversarial for QT, which
  walks shared prefixes).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.bits.rng import RngStream
from repro.tags.epc import Sgtin96
from repro.tags.tag import Tag

__all__ = ["TagPopulation"]


class TagPopulation:
    """A reproducible collection of tags with unique IDs.

    Parameters
    ----------
    size:
        Number of tags.
    id_bits:
        ID length; 64 matches the paper's analysis, 96 the deployment.
    rng:
        Root random stream; each tag receives its own child stream.
    layout:
        ``"uniform"``, ``"sgtin"`` (requires ``id_bits == 96``) or
        ``"sequential"``.
    area:
        Optional (width, height) in metres; when given, tags receive
        uniform random positions (Table V: 100 m x 100 m).
    """

    def __init__(
        self,
        size: int,
        id_bits: int = 64,
        rng: RngStream | None = None,
        layout: str = "uniform",
        area: tuple[float, float] | None = None,
    ) -> None:
        if size < 0:
            raise ValueError("size must be >= 0")
        if layout not in ("uniform", "sgtin", "sequential"):
            raise ValueError(f"unknown layout {layout!r}")
        if layout == "sgtin" and id_bits != 96:
            raise ValueError("sgtin layout requires id_bits=96")
        if layout == "uniform" and size > (1 << id_bits):
            raise ValueError("population larger than the ID space")
        self.size = size
        self.id_bits = id_bits
        self.layout = layout
        self.rng = rng if rng is not None else RngStream.from_seed(None)
        id_rng = self.rng.child()
        tag_streams = self.rng.spawn(size)
        ids = self._draw_ids(id_rng)
        positions: list[tuple[float, float] | None]
        if area is not None:
            pos_rng = self.rng.child()
            xs = pos_rng.uniform(0.0, area[0], size)
            ys = pos_rng.uniform(0.0, area[1], size)
            positions = [(float(x), float(y)) for x, y in zip(xs, ys)]
        else:
            positions = [None] * size
        self.tags: list[Tag] = [
            Tag(tag_id=i, id_bits=id_bits, rng=s, position=p)
            for i, s, p in zip(ids, tag_streams, positions)
        ]

    # ------------------------------------------------------------------

    def _draw_ids(self, rng: RngStream) -> list[int]:
        if self.layout == "sequential":
            return list(range(self.size))
        if self.layout == "sgtin":
            seen: set[int] = set()
            out: list[int] = []
            while len(out) < self.size:
                epc = Sgtin96.random(rng).encode().to_int()
                if epc not in seen:
                    seen.add(epc)
                    out.append(epc)
            return out
        # uniform without replacement; rejection sampling is fine because
        # the ID space (2^64) dwarfs any realistic population.
        if self.id_bits <= 62:
            space = 1 << self.id_bits
            if self.size > space // 2:
                # Dense case: permute the whole space.
                perm = rng.generator.permutation(space)[: self.size]
                return [int(v) for v in perm]
        seen = set()
        out = []
        while len(out) < self.size:
            need = self.size - len(out)
            draws = rng.integers(0, 1 << min(self.id_bits, 63), size=need * 2 or 1)
            for d in np.asarray(draws, dtype=np.uint64):
                v = int(d)
                if self.id_bits > 63:
                    # extend with extra random high bits
                    v |= int(rng.integers(0, 1 << (self.id_bits - 63))) << 63
                if v not in seen:
                    seen.add(v)
                    out.append(v)
                    if len(out) == self.size:
                        break
        return out

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Reset every tag's protocol state (fresh identification round)."""
        for tag in self.tags:
            tag.reset_protocol_state()

    def unidentified(self) -> list[Tag]:
        return [t for t in self.tags if not t.identified]

    def all_identified(self) -> bool:
        return all(t.identified for t in self.tags)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Tag]:
        return iter(self.tags)

    def __getitem__(self, idx: int) -> Tag:
        return self.tags[idx]

    @property
    def ids(self) -> Sequence[int]:
        return [t.tag_id for t in self.tags]
