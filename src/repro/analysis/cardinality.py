"""Cardinality estimation without identification (paper refs [14]-[16]).

Many applications only need to know *how many* tags are present (stock
level monitoring, theft detection), which is far cheaper than reading
every ID -- the reader runs short probing frames and infers n from the
slot-type mix.  The paper cites this line of work (Kodialam & Nandagopal's
USE/UPE, Qian et al.); we implement the classic **zero estimator**:

    E[N0] = F·(1 − 1/F)^n  ⇒  n̂ = ln(N0/F) / ln(1 − 1/F)

averaged over ``k`` probing frames, with the asymptotic variance that
makes confidence intervals possible.

**Where QCD matters:** estimation never transfers an ID, so *every* slot
is an overhead slot -- exactly the slots QCD shrinks from 96 bits to
2l bits.  The airtime of an estimate therefore drops by the full
``l_prm/(l_id+l_crc)`` factor (≈ 6x at l = 8), a stronger speedup than
identification itself enjoys.  Moreover the tags need not even send their
preamble's ID phase, so the probing reply can be the bare preamble.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.detector import CollisionDetector, SlotType
from repro.core.timing import TimingModel

__all__ = [
    "CardinalityEstimate",
    "zero_estimator",
    "estimate_cardinality",
    "probing_airtime",
]


@dataclass(frozen=True)
class CardinalityEstimate:
    """An estimate with its probing cost."""

    n_hat: float
    frames: int
    slots: int
    airtime: float
    stderr: float

    @property
    def relative_error_bound(self) -> float:
        """~95% confidence half-width relative to the estimate."""
        if self.n_hat <= 0:
            return math.inf
        return 1.96 * self.stderr / self.n_hat


def zero_estimator(n0: int, frame_size: int) -> float:
    """Invert E[N0] = F·(1−1/F)^n for one frame.

    Returns ``inf`` when the frame had no idle slot (n >> F: the frame is
    saturated and carries no information about n's magnitude).
    """
    if frame_size < 2:
        raise ValueError("frame_size must be >= 2")
    if not 0 <= n0 <= frame_size:
        raise ValueError("n0 out of range")
    if n0 == 0:
        return math.inf
    return math.log(n0 / frame_size) / math.log(1.0 - 1.0 / frame_size)


def _zero_estimator_stderr(n: float, frame_size: int, k: int) -> float:
    """Asymptotic std error of the k-frame averaged zero estimator.

    Var[N0] for balls-in-bins ≈ F·e^{−ρ}(1 − (1+ρ)e^{−ρ}) with ρ = n/F;
    the delta method divides by (dE[N0]/dn)² = e^{−2ρ} and k frames.
    """
    rho = n / frame_size
    e = math.exp(-rho)
    var_n0 = frame_size * e * (1.0 - (1.0 + rho) * e)
    slope_sq = e * e
    if slope_sq <= 0:
        return math.inf
    return math.sqrt(max(0.0, var_n0 / slope_sq) / k)


def probing_airtime(
    detector: CollisionDetector,
    timing: TimingModel,
    n0: int,
    n1: int,
    nc: int,
) -> float:
    """Airtime of a probing frame: estimation never runs the ID phase, so
    every non-idle slot costs the *contention* window only."""
    overhead = detector.contention_bits * timing.tau
    return n0 * timing.slot_duration(detector, SlotType.IDLE) + (n1 + nc) * overhead


def estimate_cardinality(
    n_true: int,
    frame_size: int,
    frames: int,
    detector: CollisionDetector,
    timing: TimingModel,
    rng: np.random.Generator,
) -> CardinalityEstimate:
    """Simulate ``frames`` probing frames and return the averaged zero
    estimate with its cost under the given detection scheme."""
    if n_true < 0 or frames < 1:
        raise ValueError("need n_true >= 0 and frames >= 1")
    estimates: list[float] = []
    airtime = 0.0
    slots = 0
    for _ in range(frames):
        occ = np.bincount(
            rng.integers(0, frame_size, n_true), minlength=frame_size
        )
        n0 = int((occ == 0).sum())
        n1 = int((occ == 1).sum())
        nc = frame_size - n0 - n1
        slots += frame_size
        airtime += probing_airtime(detector, timing, n0, n1, nc)
        estimates.append(zero_estimator(n0, frame_size))
    finite = [e for e in estimates if math.isfinite(e)]
    n_hat = sum(finite) / len(finite) if finite else math.inf
    stderr = (
        _zero_estimator_stderr(n_hat, frame_size, max(1, len(finite)))
        if math.isfinite(n_hat)
        else math.inf
    )
    return CardinalityEstimate(
        n_hat=n_hat,
        frames=frames,
        slots=slots,
        airtime=airtime,
        stderr=stderr,
    )
