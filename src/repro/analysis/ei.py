"""Efficiency-improvement (EI) formulas (paper Section V, Tables II/III).

The paper charges airtime per slot (see
:class:`repro.core.timing.TimingModel`) and defines

    EI = (t_crc − t_qcd) / t_crc.

**FSA (Section V-A).**  At the optimal operating point, identifying ``n``
tags takes ``n/λ_max = 2.7·n`` slots: ``n`` singles plus ``1.7·n``
idle-or-collided.  Hence::

    t_crc = 2.7·n·τ·(l_id + l_crc)
    t_qcd = n·τ·(l_prm + l_id) + 1.7·n·τ·l_prm
    EI_FSA = 1 − [(l_prm + l_id) + 1.7·l_prm] / [2.7·(l_id + l_crc)]

**BT (Section V-B).**  Lemma 2 gives ``2.885·n`` slots: ``n`` singles plus
``1.885·n`` idle-or-collided, so::

    EI_BT = 1 − [(l_prm + l_id) + 1.885·l_prm] / [2.885·(l_id + l_crc)]

(The symbolic formulas printed in the paper are OCR-garbled; these
re-derivations reproduce every numeric entry of Tables II and III exactly
-- e.g. with l_id = 64, l_crc = 32: FSA EI ≥ 0.6698 / 0.5864 / 0.4198 and
BT EI ≈ 0.6856 / 0.6023 / 0.4356 for strengths 4 / 8 / 16.)
"""

from __future__ import annotations

from repro.analysis.bt_theory import BT_SLOTS_PER_TAG

__all__ = [
    "fsa_ei_lower_bound",
    "bt_ei_average",
    "measured_ei",
    "preamble_bits",
]


def preamble_bits(strength: int) -> int:
    """l_prm = 2·l (random integer + its complement)."""
    if strength < 1:
        raise ValueError("strength must be >= 1")
    return 2 * strength


def fsa_ei_lower_bound(
    strength: int, id_bits: int = 64, crc_bits: int = 32
) -> float:
    """Minimum EI of QCD over CRC-CD on FSA (Table II).

    "Minimum" because 2.7·n is FSA's *best case* slot total; any
    sub-optimal frame sizing adds idle/collided slots, which QCD makes
    cheap and CRC-CD charges in full, so the real EI is larger (compare
    Figure 8(a)).
    """
    l_prm = preamble_bits(strength)
    # The paper rounds n/λ_max = e·n to 2.7·n; we keep its constant so
    # Table II is reproduced digit-for-digit.
    slots_per_tag = 2.7
    overhead = slots_per_tag - 1.0  # idle + collided slots per tag
    t_crc = slots_per_tag * (id_bits + crc_bits)
    t_qcd = (l_prm + id_bits) + overhead * l_prm
    return 1.0 - t_qcd / t_crc


def bt_ei_average(
    strength: int, id_bits: int = 64, crc_bits: int = 32
) -> float:
    """Average EI of QCD over CRC-CD on BT (Table III)."""
    l_prm = preamble_bits(strength)
    slots_per_tag = BT_SLOTS_PER_TAG
    overhead = slots_per_tag - 1.0
    t_crc = slots_per_tag * (id_bits + crc_bits)
    t_qcd = (l_prm + id_bits) + overhead * l_prm
    return 1.0 - t_qcd / t_crc


def measured_ei(t_baseline: float, t_scheme: float) -> float:
    """EI from two measured inventory times (Figure 8)."""
    if t_baseline <= 0:
        raise ValueError("baseline time must be positive")
    return (t_baseline - t_scheme) / t_baseline
