"""Time-optimal FSA frame sizing under variable-length slots.

Lemma 1 maximizes *slot* throughput: ℱ = n.  But QCD makes slots unequal
-- idle and collided slots cost ``l_prm·τ`` while singles cost
``(l_prm + l_id)·τ`` -- and under Gen2 link timing idle slots are cheaper
than collided ones.  The natural objective is then *time per identified
tag* for a frame of ℱ slots against a backlog of n:

    g(ℱ) = (E[N0]·c0 + E[N1]·c1 + E[Nc]·cc) / E[N1]

with the binomial occupancy expectations of
:func:`repro.protocols.estimators.expected_slot_counts`.

Two results this module makes precise (and the tests verify):

* **Equal overhead costs keep Lemma 1 intact.**  If c0 = cc = c (as in
  both CRC-CD, where all three are equal, and paper-model QCD, where idle
  and collided both cost l_prm), then
  ``g(ℱ) = c·(ℱ/E[N1] − 1) + c1``, which is minimized exactly where
  E[N1]/ℱ is maximized -- at ℱ = n.  QCD changes *how much* time the
  optimum takes, not *where* it is.
* **Cheap idles shift the optimum up.**  When c0 < cc (Gen2: an idle slot
  ends at the T3 timeout, a collided slot rings the whole reply out),
  trading collisions for idles pays, and the time-optimal frame exceeds n
  by roughly ``sqrt(cc/c0)``-flavoured factors; :func:`optimal_frame_size`
  finds it numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detector import CollisionDetector, SlotType
from repro.core.timing import TimingModel
from repro.protocols.estimators import expected_slot_counts

__all__ = ["SlotCosts", "time_per_identification", "optimal_frame_size"]


@dataclass(frozen=True)
class SlotCosts:
    """Per-slot airtime by type."""

    idle: float
    single: float
    collided: float

    def __post_init__(self) -> None:
        if min(self.idle, self.single, self.collided) < 0:
            raise ValueError("slot costs must be non-negative")
        if self.single <= 0:
            raise ValueError("single-slot cost must be positive")

    @classmethod
    def from_timing(
        cls, detector: CollisionDetector, timing: TimingModel
    ) -> "SlotCosts":
        return cls(
            idle=timing.slot_duration(detector, SlotType.IDLE),
            single=timing.slot_duration(detector, SlotType.SINGLE),
            collided=timing.slot_duration(detector, SlotType.COLLIDED),
        )


def time_per_identification(n: int, frame_size: int, costs: SlotCosts) -> float:
    """Expected airtime per identified tag for one frame of ``frame_size``
    slots against a backlog of ``n`` tags.

    Returns ``inf`` when the expected single count is (numerically) zero
    -- a hopelessly undersized frame identifies nobody.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    e0, e1, ec = expected_slot_counts(n, frame_size)
    if e1 <= 1e-12:
        return float("inf")
    return (e0 * costs.idle + e1 * costs.single + ec * costs.collided) / e1


def optimal_frame_size(
    n: int,
    costs: SlotCosts,
    max_factor: float = 16.0,
) -> int:
    """The frame size minimizing :func:`time_per_identification`.

    Searches ℱ in [1, max_factor·n] exactly (the objective is unimodal in
    practice; an exhaustive scan over the integer range keeps the function
    dependable for small n and pathological cost ratios).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    hi = max(2, int(max_factor * n))
    best_f, best_g = 1, float("inf")
    for f in range(1, hi + 1):
        g = time_per_identification(n, f, costs)
        if g < best_g:
            best_f, best_g = f, g
    return best_f
