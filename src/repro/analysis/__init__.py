"""Closed-form models from the paper's Sections III and V.

* :mod:`repro.analysis.fsa_theory` -- Lemma 1 (FSA throughput, optimal
  frame size) and the binomial slot-occupancy model;
* :mod:`repro.analysis.bt_theory`  -- Lemma 2 (BT slot counts, 2.885 n)
  via the exact Capetanakis/Hush-Wood recursion;
* :mod:`repro.analysis.ei`         -- the efficiency-improvement formulas
  behind Tables II/III and Figure 8;
* :mod:`repro.analysis.accuracy`   -- QCD detection-accuracy model
  (Figure 5);
* :mod:`repro.analysis.comparison` -- the CRC-CD vs QCD cost table
  (Table IV).
"""

from repro.analysis.accuracy import (
    expected_accuracy_fsa,
    qcd_miss_probability,
)
from repro.analysis.cardinality import (
    CardinalityEstimate,
    estimate_cardinality,
    zero_estimator,
)
from repro.analysis.bt_theory import (
    BT_COLLIDED_PER_TAG,
    BT_IDLE_PER_TAG,
    BT_SLOTS_PER_TAG,
    bt_average_throughput,
    expected_bt_slots,
)
from repro.analysis.comparison import table4_rows
from repro.analysis.delay import expected_delay_reduction, expected_mean_delay
from repro.analysis.ei import (
    bt_ei_average,
    fsa_ei_lower_bound,
    measured_ei,
)
from repro.analysis.fsa_theory import (
    expected_throughput,
    max_throughput,
    optimal_frame_size,
)
from repro.analysis.optimal_frame import (
    SlotCosts,
    optimal_frame_size as time_optimal_frame_size,
    time_per_identification,
)

__all__ = [
    "expected_throughput",
    "max_throughput",
    "optimal_frame_size",
    "expected_bt_slots",
    "bt_average_throughput",
    "BT_SLOTS_PER_TAG",
    "BT_COLLIDED_PER_TAG",
    "BT_IDLE_PER_TAG",
    "fsa_ei_lower_bound",
    "bt_ei_average",
    "measured_ei",
    "qcd_miss_probability",
    "expected_accuracy_fsa",
    "table4_rows",
    "SlotCosts",
    "time_optimal_frame_size",
    "time_per_identification",
    "CardinalityEstimate",
    "estimate_cardinality",
    "zero_estimator",
    "expected_mean_delay",
    "expected_delay_reduction",
]
