"""QCD detection-accuracy model (paper Section IV-B / VI-B, Figure 5).

A collision among ``m`` tags escapes QCD only if *all* m tags drew the same
random integer from {1, ..., 2^l − 1}:

    P(miss | m) = (2^l − 1)^{−(m−1)}    (paper approximates 0.5^{l·(m−1)})

The expected *accuracy* -- the fraction of collided slots detected -- then
follows from the distribution of collision sizes.  For FSA with ``n`` tags
in a frame of ``F`` slots, slot occupancy is Binomial(n, 1/F), so
conditioning on occupancy ≥ 2::

    accuracy = 1 − Σ_{m≥2} P(occ = m | occ ≥ 2) · P(miss | m)

Because P(miss|m) decays geometrically in m, the m = 2 term dominates:
accuracy ≈ 1 − P(occ = 2 | occ ≥ 2)/(2^l − 1).  This is why Figure 5's
curves move with strength l (16× per 4 bits) and only weakly with the tag
count (which shifts the occupancy mix).
"""

from __future__ import annotations

from scipy.stats import binom

__all__ = [
    "qcd_miss_probability",
    "expected_accuracy_fsa",
    "collision_size_pmf",
    "required_strength",
]


def qcd_miss_probability(m: int, strength: int, exact: bool = True) -> float:
    """P(an m-tag collision is misread as single).

    ``exact=True`` uses the positive-integer draw space of size
    ``2^l − 1``; ``False`` the paper's ``0.5^{l(m−1)}`` approximation.
    """
    if strength < 1:
        raise ValueError("strength must be >= 1")
    if m < 2:
        return 0.0
    if exact:
        return float((1 << strength) - 1) ** (-(m - 1))
    return 0.5 ** (strength * (m - 1))


def collision_size_pmf(
    n: int, frame_size: int, max_m: int | None = None
) -> dict[int, float]:
    """P(occupancy = m | occupancy >= 2) for one slot of an FSA frame.

    Truncated at ``max_m`` (default: where the tail mass drops below
    1e-12).
    """
    if n < 2 or frame_size < 1:
        raise ValueError("need n >= 2 and frame_size >= 1")
    p = 1.0 / frame_size
    p_ge2 = 1.0 - binom.pmf(0, n, p) - binom.pmf(1, n, p)
    if p_ge2 <= 0:
        return {}
    out: dict[int, float] = {}
    upper = max_m if max_m is not None else n
    for m in range(2, upper + 1):
        mass = float(binom.pmf(m, n, p))
        if mass / p_ge2 < 1e-12 and m > 4:
            break
        out[m] = mass / p_ge2
    return out


def expected_accuracy_fsa(
    n: int, frame_size: int, strength: int, exact: bool = True
) -> float:
    """Expected QCD accuracy for the *first* FSA frame of ``n`` tags.

    Later frames have smaller backlogs and hence slightly different
    occupancy mixes; the first frame dominates the collision count, so this
    is an excellent predictor of the full-inventory accuracy the simulation
    measures (validated in ``tests/analysis/test_accuracy.py``).
    """
    if n < 2:
        return 1.0
    pmf = collision_size_pmf(n, frame_size)
    miss = sum(
        w * qcd_miss_probability(m, strength, exact=exact)
        for m, w in pmf.items()
    )
    return 1.0 - miss


def required_strength(target_accuracy: float, n: int, frame_size: int) -> int:
    """Smallest strength l achieving the target expected accuracy -- the
    design aid behind the paper's 'adopt l = 8' recommendation."""
    if not 0.0 < target_accuracy < 1.0:
        raise ValueError("target_accuracy must be in (0, 1)")
    for l in range(1, 65):
        if expected_accuracy_fsa(n, frame_size, l) >= target_accuracy:
            return l
    raise ValueError("no strength up to 64 bits reaches the target")
