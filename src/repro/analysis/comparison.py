"""CRC-CD vs QCD cost comparison (paper Table IV).

Produces the four-row comparison from live measurements of our own
engines rather than by restating the paper's numbers:

* instructions -- averaged operation count of the bitwise CRC shift
  register over random 64-bit IDs (CRC-CD) vs the single complement (QCD);
* complexity   -- O(l) vs O(1);
* memory       -- the 256-entry lookup table a table-driven tag CRC needs
  (1 KB for CRC-32) vs the 2l-bit preamble register;
* transmission -- contention bits per slot: l_id + l_crc = 96 vs
  l_prm = 16.
"""

from __future__ import annotations

from repro.core.cost import CostProfile, measure_crc_cd_cost, measure_qcd_cost
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector

__all__ = ["table4_rows", "table4_profiles"]


def table4_profiles(
    id_bits: int = 64, strength: int = 8
) -> tuple[CostProfile, CostProfile]:
    """Measured cost profiles for the paper's parameter point
    (l_id = 64, l_crc = 32, l = 8)."""
    crc = measure_crc_cd_cost(CRCCDDetector(id_bits=id_bits))
    qcd = measure_qcd_cost(QCDDetector(strength=strength))
    return crc, qcd


def table4_rows(id_bits: int = 64, strength: int = 8) -> list[dict[str, str]]:
    """Table IV as row dicts: one row per axis, columns per scheme."""
    crc, qcd = table4_profiles(id_bits, strength)
    crc_row, qcd_row = crc.as_row(), qcd.as_row()
    axes = ["# of instructions", "complexity", "memory", "transmission"]
    return [
        {
            "axis": axis,
            "CRC-CD": str(crc_row[axis]),
            "QCD": str(qcd_row[axis]),
        }
        for axis in axes
    ]
