"""Closed-form identification-delay model (backs Figure 6).

The paper measures the mean identification delay by simulation.  Under
the expectation dynamics of fixed-frame FSA the same number has a clean
deterministic model:

* the backlog evolves as ``n_{k+1} = n_k − s_k`` with
  ``s_k = n_k·(1 − 1/F)^{n_k − 1}`` singles expected in frame k;
* frame k lasts ``D_k = c0·E[N0] + c1·E[N1] + cc·E[Nc]`` airtime;
* a tag identified in frame k finishes, on average, halfway through the
  frame's airtime (its single slot is uniform among the frame's slots,
  and slot costs are position-independent in expectation), so

      E[delay] = Σ_k (s_k / n) · (T_{k−1} + D_k / 2),

  with ``T_{k−1}`` the cumulative airtime of earlier frames.

Feeding in the two schemes' slot costs reproduces the measured ~61%
delay reduction of QCD over CRC-CD (see
``tests/analysis/test_delay.py``), and makes explicit why the paper's
">80%" figure requires stopping the delay clock before the ID phase:
with ``c1`` set to the preamble alone the same model yields >80%.
"""

from __future__ import annotations

from repro.analysis.optimal_frame import SlotCosts
from repro.protocols.estimators import expected_slot_counts

__all__ = ["expected_mean_delay", "expected_delay_reduction"]


def expected_mean_delay(
    n: int,
    frame_size: int,
    costs: SlotCosts,
    tail: float = 0.5,
    max_frames: int = 100_000,
) -> float:
    """Expected mean identification delay for fixed-frame FSA.

    ``tail`` stops the expectation recursion once the remaining backlog
    drops below it (the residual mass contributes negligibly).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if frame_size < 2:
        raise ValueError("frame_size must be >= 2 (F=1 deadlocks for n>=2)")
    backlog = float(n)
    elapsed = 0.0
    weighted = 0.0
    identified_mass = 0.0
    frames = 0
    while backlog > tail:
        if frames >= max_frames:
            raise RuntimeError(
                "delay recursion did not converge (frame too small for n?)"
            )
        frames += 1
        e0, e1, ec = expected_slot_counts(int(round(backlog)), frame_size)
        duration = e0 * costs.idle + e1 * costs.single + ec * costs.collided
        if e1 <= 1e-12:
            raise RuntimeError(
                "expected zero singles per frame: the frame size is "
                "hopelessly undersized for this backlog"
            )
        weighted += e1 * (elapsed + duration / 2.0)
        identified_mass += e1
        elapsed += duration
        backlog -= e1
    return weighted / identified_mass


def expected_delay_reduction(
    n: int,
    frame_size: int,
    baseline: SlotCosts,
    scheme: SlotCosts,
) -> float:
    """1 − E[delay_scheme] / E[delay_baseline] for the same process."""
    d_base = expected_mean_delay(n, frame_size, baseline)
    d_new = expected_mean_delay(n, frame_size, scheme)
    return 1.0 - d_new / d_base
