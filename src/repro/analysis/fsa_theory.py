"""FSA throughput theory (paper Section III-A, Lemma 1).

With ``n`` tags choosing uniformly among ``F`` slots, slot occupancy is
binomial and the expected single-slot count is
``E[N1] = n·(1 − 1/F)^(n−1) ≈ n·e^(−n/F)``.  The throughput

    λ = E[N1] / F ≈ (n/F)·e^(−n/F)

is maximized at ``F = n`` with ``λ_max = 1/e ≈ 0.37`` -- Lemma 1, the
number the paper leans on to argue that >63 % of FSA slots are idle or
collided and thus worth making cheap to classify.
"""

from __future__ import annotations

import math

from repro.protocols.estimators import expected_slot_counts

__all__ = [
    "expected_throughput",
    "max_throughput",
    "optimal_frame_size",
    "expected_total_slots",
]


def expected_throughput(n: int, frame_size: int, exact: bool = True) -> float:
    """E[λ] for one frame of ``frame_size`` slots and ``n`` tags.

    ``exact=True`` uses the binomial model; ``False`` the paper's Poisson
    approximation ``(n/F)·e^(−n/F)``.
    """
    if n < 0 or frame_size < 1:
        raise ValueError("need n >= 0 and frame_size >= 1")
    if n == 0:
        return 0.0
    if exact:
        _, e1, _ = expected_slot_counts(n, frame_size)
        return e1 / frame_size
    return (n / frame_size) * math.exp(-n / frame_size)


def max_throughput() -> float:
    """Lemma 1: λ_max = 1/e ≈ 0.37 (at F = n)."""
    return 1.0 / math.e


def optimal_frame_size(n: int) -> int:
    """The frame size maximizing Lemma 1's throughput: F = n."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return n


def expected_total_slots(n: int) -> float:
    """Minimum expected slot total for identifying ``n`` tags with FSA at
    the optimal operating point: ``n / λ_max = e·n ≈ 2.7·n``
    (Section V-A's ``2.7 n``)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    return n * math.e
