"""Binary-tree slot-count theory (paper Section III-B, Lemma 2).

Lemma 2 (borrowing Capetanakis 1979 / Hush & Wood 1998): resolving ``n``
tags with fair binary splitting takes on average ``2.885·n`` slots --
``n`` singles, ``1.443·n`` collided, ``0.442·n`` idle -- for an average
throughput of 0.35.

We compute the *exact* expectations with the standard recursion.  Let
``L(n)`` be the expected total number of slots to resolve a group of ``n``
tags (including the group's own slot).  ``L(0) = L(1) = 1`` and for
``n >= 2``, conditioning on the Binomial(n, 1/2) split::

    L(n) = 1 + Σ_k C(n,k) 2^{-n} · (L(k) + L(n−k))

The self-referential terms (k = 0 and k = n both contribute ``L(n)``)
are moved to the left-hand side::

    L(n)·(1 − 2^{1−n}) = 1 + 2^{1−n}·L(0) + Σ_{0<k<n} C(n,k) 2^{-n}·(L(k)+L(n−k))

The same scheme yields the expected collided-slot count ``C(n)``
(``C(n) = 1 + E[C(k)+C(n−k)]`` for n >= 2, else 0) and idle count
``I(n)`` (``I(0) = 1`` else recursion).  As n grows, ``L(n)/n → 2.885``,
``C(n)/n → 1.443`` and ``I(n)/n → 0.442``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.stats import binom

__all__ = [
    "expected_bt_slots",
    "expected_bt_collided",
    "expected_bt_idle",
    "bt_average_throughput",
    "BT_SLOTS_PER_TAG",
    "BT_COLLIDED_PER_TAG",
    "BT_IDLE_PER_TAG",
]

#: Lemma 2 asymptotic constants.
BT_SLOTS_PER_TAG = 2.885
BT_COLLIDED_PER_TAG = 1.443
BT_IDLE_PER_TAG = 0.442


@lru_cache(maxsize=None)
def _split_pmf(n: int) -> tuple[float, ...]:
    """Binomial(n, 1/2) pmf as a tuple (cached; n is small in practice)."""
    return tuple(binom.pmf(np.arange(n + 1), n, 0.5))


def _solve(n: int, own_slot: float, table: list[float]) -> float:
    """One step of the self-referential recursion described above.

    ``own_slot`` is this group's contribution to the counted quantity:
    1 for total slots, 1 for collided slots (a group of n >= 2 collides),
    0 for idle slots.
    """
    pmf = _split_pmf(n)
    rhs = own_slot
    for k in range(1, n):
        rhs += pmf[k] * (table[k] + table[n - k])
    rhs += 2.0 * pmf[0] * table[0]
    return rhs / (1.0 - 2.0 * pmf[0])


def _build_table(n: int, l0: float, l1: float, own_slot: float) -> list[float]:
    table = [l0, l1]
    for m in range(2, n + 1):
        table.append(_solve(m, own_slot, table))
    return table


def expected_bt_slots(n: int) -> float:
    """Exact E[total slots] to resolve ``n`` tags (including idles)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if n <= 1:
        return 1.0
    return _build_table(n, 1.0, 1.0, 1.0)[n]


def expected_bt_collided(n: int) -> float:
    """Exact E[collided slots]."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if n <= 1:
        return 0.0
    return _build_table(n, 0.0, 0.0, 1.0)[n]


def expected_bt_idle(n: int) -> float:
    """Exact E[idle slots]."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if n == 0:
        return 1.0
    if n == 1:
        return 0.0
    return _build_table(n, 1.0, 0.0, 0.0)[n]


def bt_average_throughput(n: int | None = None) -> float:
    """λ_avg = n / E[total slots].

    With ``n=None`` returns Lemma 2's asymptotic value
    ``1 / 2.885 ≈ 0.35``.
    """
    if n is None:
        return 1.0 / BT_SLOTS_PER_TAG
    if n < 1:
        raise ValueError("n must be >= 1")
    return n / expected_bt_slots(n)
