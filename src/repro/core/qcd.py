"""Quick Collision Detection (QCD) -- Algorithm 1 of the paper.

The tag side: when answering a slot, a tag transmits only its collision
preamble ``r ⊕ r̄`` (``2l`` bits).  The reader side (Algorithm 1):

1. receive the superposed signal ``s``;
2. if ``s = 0`` (or nothing was received): **idle**;
3. otherwise split ``s`` into ``r`` and ``c``;
4. if ``c = f(r)``: **single** -- the reader then ACKs and the tag
   transmits its ID in a second phase;
5. else: **collided**.

The scheme is exact whenever at least two colliding tags drew different
random integers (Theorem 1); the residual miss probability for an m-tag
collision is ``2^{-l(m-1)}`` (all m draws equal).  The detector counts the
checks it performs so Table IV's "1 instruction per check" claim can be
reported from measurement.
"""

from __future__ import annotations

import numpy as np

from repro.bits.bitvec import BitVector
from repro.bits.rng import RngStream
from repro.core.collision_function import BitwiseComplement, CollisionFunction
from repro.core.detector import CollisionDetector, SlotOutcome, SlotType
from repro.core.preamble import PreambleCodec

__all__ = ["QCDDetector"]


class QCDDetector(CollisionDetector):
    """Quick Collision Detection with configurable strength.

    Parameters
    ----------
    strength:
        l, the bit length of the random preamble integer (paper recommends
        8; evaluation sweeps 4/8/16).
    function:
        Collision function; defaults to bitwise complement.  Supplying a
        non-collision function (e.g. the identity) degrades detection and
        is supported only for ablation experiments.
    """

    needs_id_phase = True

    def __init__(
        self, strength: int = 8, function: CollisionFunction | None = None
    ) -> None:
        self.codec = PreambleCodec(strength, function)
        self.name = f"QCD-{strength}"
        # The uint64 fast path needs the whole 2l-bit preamble in one
        # machine word and a collision function it can apply to plain
        # ints; the paper's complement qualifies, ablation functions fall
        # back to the object path.
        self.packed_bits = (
            2 * strength
            if 2 * strength <= 64
            and isinstance(self.codec.function, BitwiseComplement)
            else None
        )
        #: Instrumentation: number of classify() calls and of collision-
        #: function evaluations (one complement per non-idle slot).
        self.classify_calls = 0
        self.function_evaluations = 0

    @property
    def strength(self) -> int:
        return self.codec.strength

    @property
    def contention_bits(self) -> int:
        """l_prm = 2l bits on the air per responding tag."""
        return self.codec.preamble_bits

    def contention_payload(self, tag_id: int, rng: RngStream) -> BitVector:
        """Tags transmit only the preamble -- the ID waits for the ACK."""
        return self.codec.draw(rng).to_signal()

    def classify(self, signal: BitVector | None) -> SlotOutcome:
        """Algorithm 1.  ``decoded_id`` is always None: the ID arrives in
        the second phase of a single slot, outside the detector."""
        self.classify_calls += 1
        if signal is None or signal.is_zero():
            return SlotOutcome(SlotType.IDLE)
        preamble = self.codec.decode(signal)
        self.function_evaluations += 1
        if self.codec.is_consistent(preamble):
            return SlotOutcome(SlotType.SINGLE)
        return SlotOutcome(SlotType.COLLIDED)

    def contention_payload_packed(self, tag_id: int, rng: RngStream) -> int:
        """Packed ``r ⊕ r̄``: the same single draw as :meth:`codec.draw`.

        Bit layout matches :meth:`CollisionPreamble.to_signal` -- ``r`` in
        the high l bits, the complement in the low l bits -- so a packed
        superposition ORs exactly the bits the object channel ORs.
        """
        l = self.codec.strength
        r = int(rng.integers(1, 1 << l))
        return (r << l) | (r ^ ((1 << l) - 1))

    def classify_packed(self, value: int | None) -> SlotOutcome:
        """Algorithm 1 over a packed superposition (same counters)."""
        self.classify_calls += 1
        if not value:
            return SlotOutcome(SlotType.IDLE)
        l = self.codec.strength
        mask = (1 << l) - 1
        self.function_evaluations += 1
        if value & mask == (value >> l) ^ mask:
            return SlotOutcome(SlotType.SINGLE)
        return SlotOutcome(SlotType.COLLIDED)

    def classify_packed_many(
        self, values: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Vectorized Algorithm 1 over one frame of superpositions.

        The preamble integers are strictly positive, so a zero value *is*
        an idle slot and ``counts`` is not consulted.  Counters advance
        exactly as per-slot :meth:`classify_packed` calls would: one
        classify per slot, one complement evaluation per non-idle slot.
        """
        del counts
        n_slots = len(values)
        self.classify_calls += n_slots
        l = np.uint64(self.codec.strength)
        mask = np.uint64((1 << self.codec.strength) - 1)
        idle = values == 0
        single = (values & mask) == ((values >> l) ^ mask)
        self.function_evaluations += n_slots - int(idle.sum())
        out = np.full(n_slots, int(SlotType.COLLIDED), dtype=np.int64)
        out[single] = int(SlotType.SINGLE)
        out[idle] = int(SlotType.IDLE)
        return out

    def miss_probability(self, m: int) -> float:
        """Probability an m-tag collision goes undetected.

        All m tags must draw the same value from {1, ..., 2^l - 1}; the
        draws are independent and uniform, so
        ``P(miss) = (2^l - 1)^{-(m-1)}`` (the paper approximates this as
        ``2^{-l(m-1)}``).
        """
        if m < 2:
            return 0.0
        return float((1 << self.strength) - 1) ** (-(m - 1))

    def reset_instrumentation(self) -> None:
        self.classify_calls = 0
        self.function_evaluations = 0
