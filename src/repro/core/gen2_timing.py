"""EPC Class-1 Gen-2 link-timing model ("practical issues", paper §VII).

The paper's evaluation charges airtime as τ per transmitted bit and
ignores inter-message gaps.  A real Gen2 link adds per-slot framing:

* the reader's command (Query/QueryRep/QueryAdjust/ACK) travels on the
  forward link at the reader data rate, derived from ``Tari`` (the
  duration of a data-0 symbol, 6.25-25 µs);
* the tag replies on the backlink at ``BLF = DR / TRcal`` with FM0 or
  Miller-m encoding (one symbol per bit times the Miller factor), after a
  turnaround gap ``T1``; the reader reacts after ``T2``;
* an idle slot still costs a QueryRep plus the ``T1 + T3`` timeout in
  which no reply arrives.

:class:`Gen2TimingModel` maps both detection schemes onto this budget so
the reproduction's orderings can be checked under realistic timing
(see ``benchmarks/test_ablation_gen2_timing.py``):

=========  =========================================================
slot       cost
=========  =========================================================
idle       QueryRep + T1 + T3
collided   QueryRep + T1 + reply(contention bits) + T2
single     QueryRep + T1 + reply(contention bits) + T2
           [+ ACK + T1 + reply(ID bits [+ CRC]) + T2 for two-phase]
=========  =========================================================

For CRC-CD the contention reply *is* ID+CRC; for QCD the contention reply
is the 2l-bit preamble and a single slot appends the ACK'd ID reply.  The
paper assumes reader commands are "the same in both QCD and CRC-CD based
approaches" (Section VI-A), so by default a one-phase single slot is also
charged its acknowledgment round-trip (``ack_one_phase=True``; a Gen2
reader always closes out a successful read with an ACK/QueryRep
handshake).  Set ``ack_one_phase=False`` to model a baseline that ends a
single slot at the reply -- in that regime the forward-link ACK command
(~150 µs at Tari 6.25) outweighs QCD's overhead-slot savings, a
sensitivity the ablation benchmark quantifies.

Defaults follow the Gen2 "fast" profile: Tari 6.25 µs, DR 64/3, TRcal
33.3 µs (BLF 640 kHz), FM0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detector import CollisionDetector, SlotType
from repro.core.timing import TimingModel

__all__ = ["Gen2TimingModel"]

#: Reader command lengths in bits (Gen2 spec, without frame-sync overhead).
QUERY_BITS = 22
QUERY_REP_BITS = 4
ACK_BITS = 18


@dataclass(frozen=True)
class Gen2TimingModel(TimingModel):
    """Slot durations under Gen2 link timing (all times in µs).

    Inherits the logical parameters (``id_bits``, ``crc_bits``,
    ``guard_id_phase``) from :class:`TimingModel`; ``tau`` is unused, the
    rates below take over.

    Parameters
    ----------
    tari:
        Reader data-0 symbol time.  Data-1 is 1.5-2x Tari; we use the
        midpoint 1.75 and charge the average symbol (equiprobable bits).
    dr, trcal:
        Divide ratio and TRcal; backlink frequency is ``dr / trcal`` MHz
        when ``trcal`` is in µs.
    miller:
        Backscatter encoding factor: 1 = FM0, 2/4/8 = Miller subcarrier.
    t1, t2, t3:
        Turnaround times (reader->tag, tag->reader, idle timeout).
    ack_one_phase:
        Charge one-phase schemes (CRC-CD) the single-slot acknowledgment
        round-trip too (the paper's same-commands assumption).
    """

    tari: float = 6.25
    dr: float = 64.0 / 3.0
    trcal: float = 33.33
    miller: int = 1
    t1: float = 12.0
    t2: float = 8.0
    t3: float = 5.0
    ack_one_phase: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.tari <= 0 or self.trcal <= 0 or self.dr <= 0:
            raise ValueError("tari, trcal and dr must be positive")
        if self.miller not in (1, 2, 4, 8):
            raise ValueError("miller must be 1 (FM0), 2, 4, or 8")
        if min(self.t1, self.t2, self.t3) < 0:
            raise ValueError("turnaround times must be non-negative")

    # ------------------------------------------------------------------

    @property
    def forward_bit_time(self) -> float:
        """Average reader-symbol duration: (Tari + 1.75·Tari) / 2."""
        return self.tari * (1.0 + 1.75) / 2.0

    @property
    def backlink_bit_time(self) -> float:
        """Tag-symbol duration: miller / BLF with BLF = dr / trcal."""
        return self.miller * self.trcal / self.dr

    def reader_command_time(self, bits: int) -> float:
        return bits * self.forward_bit_time

    def tag_reply_time(self, bits: int) -> float:
        return bits * self.backlink_bit_time

    # ------------------------------------------------------------------

    def slot_duration(
        self, detector: CollisionDetector, detected: SlotType
    ) -> float:
        base = self.reader_command_time(QUERY_REP_BITS) + self.t1
        if detected is SlotType.IDLE:
            return base + self.t3
        reply = self.tag_reply_time(detector.contention_bits)
        total = base + reply + self.t2
        if detected is SlotType.SINGLE:
            if detector.needs_id_phase:
                id_bits = self.id_bits + (
                    self.crc_bits if self.guard_id_phase else 0
                )
                total += (
                    self.reader_command_time(ACK_BITS)
                    + self.t1
                    + self.tag_reply_time(id_bits)
                    + self.t2
                )
            elif self.ack_one_phase:
                # The reader still closes the read with an acknowledgment
                # command (no large reply follows -- the ID is in hand).
                total += self.reader_command_time(ACK_BITS) + self.t1 + self.t2
        return total
