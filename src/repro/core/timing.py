"""Per-slot airtime accounting (paper Section V).

The paper charges identification time purely in transmitted bits, with
``τ`` the time to transmit one bit (the evaluation uses τ = 1 µs and
ignores synchronization and query broadcast, which are identical across
schemes -- Section VI-A).  Slot durations:

===========  =======================  ==============================
scheme       idle / collided slot     single slot
===========  =======================  ==============================
CRC-CD       ``(l_id + l_crc)·τ``     ``(l_id + l_crc)·τ``
QCD          ``l_prm·τ``              ``(l_prm + l_id)·τ``
QCD+guard    ``l_prm·τ``              ``(l_prm + l_id + l_crc)·τ``
ideal        ``l_id·τ``               ``l_id·τ``
===========  =======================  ==============================

CRC-CD slots are all full-length because the reader cannot know a slot's
type before the whole ``id ⊕ crc(id)`` window has elapsed.  QCD slots are
*variable length*: idle and collided slots end after the preamble; only an
acknowledged single slot is extended by the ID phase.  The ``QCD+guard``
row is our ``crc_guard`` policy (DESIGN.md §5), where the second-phase ID
carries a CRC so that preamble misses are caught; it is off by default to
match the paper's accounting.

Durations are keyed by the *detected* slot type: a collision that QCD
misses is charged as a single slot, because the reader really would run the
ID phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detector import CollisionDetector, SlotType

__all__ = ["TimingModel"]


@dataclass(frozen=True)
class TimingModel:
    """Airtime parameters.

    Attributes
    ----------
    tau:
        Time to transmit one bit (µs in the paper's figures).
    id_bits:
        l_id, the tag ID length (paper: 64).
    crc_bits:
        l_crc, the CRC length used by CRC-CD *and* by the optional
        ``crc_guard`` ID phase (paper: 32).
    guard_id_phase:
        If True, two-phase schemes append a CRC to the second-phase ID
        transmission (the ``crc_guard`` policy).
    """

    tau: float = 1.0
    id_bits: int = 64
    crc_bits: int = 32
    guard_id_phase: bool = False

    def __post_init__(self) -> None:
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.id_bits < 1 or self.crc_bits < 0:
            raise ValueError("invalid bit lengths")

    def slot_duration(
        self, detector: CollisionDetector, detected: SlotType
    ) -> float:
        """Airtime consumed by one slot, given the detector's verdict."""
        contention = detector.contention_bits * self.tau
        if not detector.needs_id_phase:
            # One-phase scheme: every slot is a full contention window.
            return contention
        if detected is SlotType.SINGLE:
            extra = self.id_bits + (self.crc_bits if self.guard_id_phase else 0)
            return contention + extra * self.tau
        return contention

    def inventory_time(
        self,
        detector: CollisionDetector,
        n_idle: int,
        n_single: int,
        n_collided: int,
    ) -> float:
        """Total airtime for an inventory with the given detected-slot
        counts.  This is the closed-form the paper's Section V analysis and
        Figure 7 use."""
        return (
            n_idle * self.slot_duration(detector, SlotType.IDLE)
            + n_single * self.slot_duration(detector, SlotType.SINGLE)
            + n_collided * self.slot_duration(detector, SlotType.COLLIDED)
        )
