"""The real Gen2 baseline: an RN16 contention word with no structure.

EPC Gen2 tags answer a Query with a bare 16-bit random number (RN16).
Unlike QCD's preamble, the RN16 carries **no checkable structure**: the
superposition of two RN16s is just another 16-bit word, so the reader
cannot classify single vs collided from the contention phase at all.  It
ACKs whatever it heard; a collision only surfaces when the garbled EPC
fails its CRC-16 in the second phase, after the full ID window was spent.

This detector models that behaviour so QCD can be compared against the
protocol it actually refines -- QCD *is* an RN16 whose second half is the
complement of its first, which is exactly what buys the early collision
verdict:

=============  ==============  ===========================================
scheme         contention      collision discovered
=============  ==============  ===========================================
RN16 (Gen2)    16 bits, blind  after ACK + ID + CRC (the whole single slot)
QCD            16 bits, checked at the preamble -- collided slots end early
=============  ==============  ===========================================

Use with ``policy="crc_guard"`` and ``TimingModel(guard_id_phase=True)``:
the guard CRC is what catches the garble, and every collided slot is
charged the full ACK'd ID phase it really consumes.
"""

from __future__ import annotations

from repro.bits.bitvec import BitVector
from repro.bits.rng import RngStream
from repro.core.detector import CollisionDetector, SlotOutcome, SlotType

__all__ = ["RN16Detector"]


class RN16Detector(CollisionDetector):
    """Structure-free random-number contention (EPC Gen2 RN16).

    Parameters
    ----------
    rn_bits:
        Length of the random word (Gen2: 16).
    """

    needs_id_phase = True

    def __init__(self, rn_bits: int = 16) -> None:
        if rn_bits < 1:
            raise ValueError("rn_bits must be >= 1")
        self.rn_bits = rn_bits
        self.name = f"RN{rn_bits}"

    @property
    def contention_bits(self) -> int:
        return self.rn_bits

    def contention_payload(self, tag_id: int, rng: RngStream) -> BitVector:
        """A uniformly random, strictly positive word (zero would fake an
        idle slot under OOK, as in QCD)."""
        value = int(rng.integers(1, 1 << self.rn_bits))
        return BitVector(value, self.rn_bits)

    def classify(self, signal: BitVector | None) -> SlotOutcome:
        """No structure, no verdict: any energy is presumed a single (the
        reader will ACK and find out in the ID phase)."""
        if signal is None or signal.is_zero():
            return SlotOutcome(SlotType.IDLE)
        return SlotOutcome(SlotType.SINGLE)

    def miss_probability(self, m: int) -> float:
        """Every contention-phase collision goes unnoticed (to be caught
        by the guard CRC in the ID phase)."""
        return 1.0 if m >= 2 else 0.0
