"""The QCD collision preamble ``r ⊕ f(r)``.

Each tag answering a slot first transmits a *collision preamble*: the
concatenation of a random positive l-bit integer ``r`` (l is the *strength*
of QCD) and its check code ``c = f(r)``.  With ``f`` the bitwise complement
the preamble is ``2l`` bits (``l_prm = 2l``; the paper recommends l = 8,
i.e. a 16-bit preamble).

The reader receives the Boolean sum of all preambles in the slot and splits
it back into ``(r, c)``; the slot is single iff ``c == f(r)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.bitvec import BitVector
from repro.bits.rng import RngStream
from repro.core.collision_function import BitwiseComplement, CollisionFunction

__all__ = ["CollisionPreamble", "PreambleCodec"]


@dataclass(frozen=True)
class CollisionPreamble:
    """A decoded preamble: the random-integer field and the check field."""

    r: BitVector
    c: BitVector

    @property
    def strength(self) -> int:
        return self.r.length

    def to_signal(self) -> BitVector:
        """Wire format: ``r ⊕ c`` (concatenation, r first)."""
        return self.r + self.c


class PreambleCodec:
    """Generates and parses collision preambles of a given strength.

    Parameters
    ----------
    strength:
        l, the bit length of the random integer.  The paper studies
        l ∈ {4, 8, 16} and recommends 8.
    function:
        The collision function; defaults to the paper's bitwise complement.
    """

    def __init__(
        self,
        strength: int,
        function: CollisionFunction | None = None,
    ) -> None:
        if strength < 1:
            raise ValueError("strength must be >= 1")
        self.strength = strength
        self.function = function if function is not None else BitwiseComplement()

    @property
    def preamble_bits(self) -> int:
        """l_prm = 2l."""
        return 2 * self.strength

    def draw(self, rng: RngStream) -> CollisionPreamble:
        """Draw a fresh preamble for one tag transmission.

        The random integer is *strictly positive* (paper Section IV-A), so
        a lone preamble can never be the all-zero signal and an idle slot
        remains unambiguous.
        """
        r_val = int(rng.integers(1, 1 << self.strength))
        r = BitVector(r_val, self.strength)
        return CollisionPreamble(r=r, c=self.function(r))

    def encode(self, r: BitVector) -> BitVector:
        """Wire format for a given random integer."""
        if r.length != self.strength:
            raise ValueError(
                f"r has {r.length} bits, codec strength is {self.strength}"
            )
        if r.is_zero():
            raise ValueError("the preamble integer must be positive")
        return r + self.function(r)

    def decode(self, signal: BitVector) -> CollisionPreamble:
        """Split a received ``2l``-bit signal into ``(r, c)``."""
        if signal.length != self.preamble_bits:
            raise ValueError(
                f"signal has {signal.length} bits, expected {self.preamble_bits}"
            )
        return CollisionPreamble(
            r=signal[: self.strength], c=signal[self.strength :]
        )

    def is_consistent(self, preamble: CollisionPreamble) -> bool:
        """The reader's check: ``c == f(r)`` (single slot iff True)."""
        return preamble.c == self.function(preamble.r)
