"""The collision-detector protocol shared by all schemes.

A slotted anti-collision protocol needs, in every slot, a classification of
the received signal into one of three types (paper Section I):

* **idle** -- no tag responded;
* **single** -- exactly one tag responded, and its payload is recoverable;
* **collided** -- two or more tags responded; their signals OR together.

A :class:`CollisionDetector` encapsulates *how* that classification is made
and what the tags must transmit to enable it.  The simulator composes a
detector with any anti-collision protocol (FSA family or tree family): the
protocol decides *who* talks in each slot, the detector decides *what* they
say and how the reader interprets the superposition.

Two-phase schemes (QCD) first transmit a short contention payload and only
transfer the full ID after the reader acknowledges a single slot; one-phase
schemes (CRC-CD) put the ID in the contention payload itself.  The
``needs_id_phase`` flag distinguishes them, and the timing model charges
slots accordingly.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.bits.bitvec import BitVector
from repro.bits.rng import RngStream

__all__ = ["SlotType", "SlotOutcome", "CollisionDetector"]


class SlotType(enum.IntEnum):
    """Classification of a slot (values match the paper's Algorithm 1)."""

    IDLE = 0
    SINGLE = 1
    COLLIDED = 2


@dataclass(frozen=True)
class SlotOutcome:
    """A detector's verdict for one slot.

    Attributes
    ----------
    slot_type:
        The detector's classification.
    decoded_id:
        For one-phase detectors, the ID recovered from a single slot
        (``None`` otherwise or when the slot is not single).
    """

    slot_type: SlotType
    decoded_id: int | None = None


class CollisionDetector(ABC):
    """Abstract base class for collision-detection schemes.

    Subclasses must be stateless across slots except for instrumentation
    counters; the same instance is reused for every slot of an inventory.
    """

    #: Human-readable scheme name (used in reports).
    name: str = "abstract"

    #: True if a single slot triggers a second phase in which the tag
    #: transmits its ID (QCD); False if the ID is already in the contention
    #: payload (CRC-CD).
    needs_id_phase: bool = False

    #: Width of the packed contention payload in bits, or ``None`` when the
    #: scheme cannot represent its payloads as machine integers.  When set
    #: (<= 64), :meth:`contention_payload_packed` and
    #: :meth:`classify_packed` must be implemented, must consume tag RNG
    #: streams identically to their object counterparts, and must return
    #: identical verdicts -- the Reader's uint64 fast path relies on all
    #: three properties.
    packed_bits: int | None = None

    @property
    @abstractmethod
    def contention_bits(self) -> int:
        """Length in bits of the payload each tag sends in the contention
        phase of a slot."""

    @abstractmethod
    def contention_payload(self, tag_id: int, rng: RngStream) -> BitVector:
        """The bit string a tag transmits when it answers a slot.

        Parameters
        ----------
        tag_id:
            The tag's ID as an integer (``l_id`` bits).
        rng:
            The tag's private random stream (QCD draws its random integer
            from it; CRC-CD ignores it).
        """

    @abstractmethod
    def classify(self, signal: BitVector | None) -> SlotOutcome:
        """Classify the superposed signal of one slot.

        ``signal`` is ``None`` for an idle slot (no transmission).  The
        Boolean-sum channel additionally lets QCD treat an all-zero signal
        as idle, since its preamble integers are strictly positive.
        """

    def contention_payload_packed(self, tag_id: int, rng: RngStream) -> int:
        """:meth:`contention_payload` as a ``packed_bits``-wide integer.

        Must draw from ``rng`` exactly like the object version (same calls,
        same order), so the two paths stay interchangeable mid-experiment.
        Only called when :attr:`packed_bits` is not ``None``.
        """
        raise NotImplementedError(f"{self.name} has no packed payload")

    def classify_packed(self, value: int | None) -> SlotOutcome:
        """:meth:`classify` over a packed superposed value.

        ``value`` is ``None`` for an idle slot, otherwise the bitwise OR
        of the slot's packed payloads.  Must return the same verdict (and
        update the same instrumentation) as :meth:`classify` would for the
        equivalent :class:`BitVector` signal.
        """
        raise NotImplementedError(f"{self.name} has no packed classifier")

    def classify_packed_many(
        self, values: "np.ndarray", counts: "np.ndarray"
    ) -> "np.ndarray":
        """Classify a whole frame of packed superpositions at once.

        ``values[s]`` is slot ``s``'s superposed uint64 (0 when idle) and
        ``counts[s]`` its ground-truth transmitter count -- needed to
        distinguish an idle slot from an all-zero payload, since the
        object channel reports idle as the *absence* of a signal.
        Returns one ``SlotType`` value (as an int) per slot.

        Verdicts and instrumentation counters must match ``len(counts)``
        calls to :meth:`classify_packed`; this default delegates to it
        slot by slot, so packed-capable detectors get the frame-batched
        reader for free and override only for vectorized speed.
        """
        out = np.empty(len(counts), dtype=np.int64)
        for i, (value, count) in enumerate(
            zip(values.tolist(), counts.tolist())
        ):
            out[i] = int(
                self.classify_packed(value if count else None).slot_type
            )
        return out

    def reset_instrumentation(self) -> None:
        """Clear any per-run counters.  Default: nothing to clear."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
