"""PHY-level collision detection via FM0 line-code violations.

The paper's Section I mentions, and dismisses as costly, the alternative
of "special hardware for sensing collisions in wireless channels".  This
module makes that alternative concrete so it can be compared honestly:
tags transmit their ID *FM0-encoded*; under OOK backscatter the channel
ORs the half-symbol envelopes; the reader's demodulator checks the FM0
inversion rules:

* a clean single decodes (the rules hold);
* overlapped distinct transmissions *usually* break a boundary or
  mid-symbol rule -- the classic Manchester/FM0 collision sensing of the
  ISO 18000-6B lineage.

Properties relative to QCD:

* **one-phase** and **preamble-free**: a slot costs exactly ``l_id`` bit
  times (half the CRC-CD slot, no 2l preamble) -- but idle/collided slots
  cost the full ID window, which QCD's variable-length slots undercut 4x;
* **not exact**: the OR of valid FM0 waveforms can itself be valid
  (e.g. FM0(1) ∨ FM0(0) = FM0(0) at matching levels), so collisions of
  tags whose waveforms nest do slip through.  There is no closed form
  for the miss rate; :meth:`FM0ViolationDetector.miss_probability` is a
  cached Monte-Carlo estimate over random ID pairs/groups;
* **decoder hardware**: the rule check runs per half-symbol in the
  reader -- "special hardware" indeed, though trivial; the *tag* needs
  nothing beyond its normal FM0 encoder, which is the interesting part
  the paper's dismissal glosses over.
"""

from __future__ import annotations

from repro.bits.bitvec import BitVector
from repro.bits.linecode import FM0Codec, LineCodeError
from repro.bits.rng import RngStream, make_rng
from repro.core.detector import CollisionDetector, SlotOutcome, SlotType

__all__ = ["FM0ViolationDetector"]


class FM0ViolationDetector(CollisionDetector):
    """Collision detection by FM0 rule checking.

    Parameters
    ----------
    id_bits:
        Tag ID length; the on-air slot cost (``contention_bits``) equals
        it -- the waveform carries two half-symbols per bit but occupies
        one bit time each pair.
    """

    needs_id_phase = False

    def __init__(self, id_bits: int = 64) -> None:
        if id_bits < 1:
            raise ValueError("id_bits must be >= 1")
        self.id_bits = id_bits
        self.codec = FM0Codec(initial_level=1)
        self.name = "FM0-violation"
        self._miss_cache: dict[int, float] = {}

    @property
    def contention_bits(self) -> int:
        """Airtime in bit times: FM0 is rate-1 (two halves per bit time)."""
        return self.id_bits

    def contention_payload(self, tag_id: int, rng: RngStream) -> BitVector:
        """The FM0 waveform of the ID (length ``2·id_bits`` half-symbols)."""
        return self.codec.encode(BitVector(tag_id, self.id_bits))

    def classify(self, signal: BitVector | None) -> SlotOutcome:
        if signal is None:
            return SlotOutcome(SlotType.IDLE)
        try:
            decoded = self.codec.decode(signal)
        except LineCodeError:
            return SlotOutcome(SlotType.COLLIDED)
        return SlotOutcome(SlotType.SINGLE, decoded_id=decoded.to_int())

    # ------------------------------------------------------------------

    def miss_probability(self, m: int, trials: int = 4000) -> float:
        """Monte-Carlo estimate of P(m overlapped random IDs decode as a
        valid single).  Cached per m; used by the vectorized kernels'
        generic fallback."""
        if m < 2:
            return 0.0
        if m not in self._miss_cache:
            rng = make_rng(0xF30 + m)
            misses = 0
            for _ in range(trials):
                waveforms = [
                    self.codec.encode(
                        BitVector.random(self.id_bits, rng.generator)
                    )
                    for _ in range(m)
                ]
                combined = BitVector.superpose(waveforms)
                if self.codec.is_valid(combined):
                    misses += 1
            self._miss_cache[m] = misses / trials
        return self._miss_cache[m]
