"""Computation / memory / communication cost model (paper Table IV).

Table IV compares CRC-CD and QCD along four axes:

=================  ======================  ===================
axis               CRC-CD                  QCD
=================  ======================  ===================
# of instructions  more than 100           1
complexity         O(l)                    O(1)
memory             1 KB (lookup table)     16 bits
transmission       96 bits                 16 bits
=================  ======================  ===================

Rather than restating the table, this module *measures* the first axis from
our own engines (the bitwise CRC engine counts its shift/compare/xor
operations per computation; QCD performs exactly one complement) and
derives the rest from the scheme parameters, so the benchmark that
regenerates Table IV reports live numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.bitvec import BitVector
from repro.bits.crc import CrcEngine
from repro.bits.rng import RngStream
from repro.core.crc_cd import CRCCDDetector
from repro.core.qcd import QCDDetector

__all__ = ["CostProfile", "measure_crc_cd_cost", "measure_qcd_cost"]


@dataclass(frozen=True)
class CostProfile:
    """One column of Table IV."""

    scheme: str
    instructions_per_check: float
    complexity: str
    memory_bits: int
    transmission_bits: int

    def as_row(self) -> dict[str, object]:
        return {
            "scheme": self.scheme,
            "# of instructions": f"{self.instructions_per_check:.0f}",
            "complexity": self.complexity,
            "memory": _format_memory(self.memory_bits),
            "transmission": f"{self.transmission_bits} bits",
        }


def _format_memory(bits: int) -> str:
    if bits >= 8192:
        return f"{bits // 8192} KB"
    if bits % 8 == 0 and bits >= 64:
        return f"{bits // 8} B"
    return f"{bits} bits"


def measure_crc_cd_cost(
    detector: CRCCDDetector, samples: int = 64, seed: int = 7
) -> CostProfile:
    """Measure the per-check cost of CRC-CD on random IDs.

    Instructions are counted by the bitwise shift-register engine: one
    shift + one compare per message bit, plus one xor per fed-back bit --
    ~2.5·(l_id) operations for random data, comfortably "more than 100"
    for a 64-bit ID as the paper states.  Memory is the lookup table a
    table-driven implementation needs (1 KB for CRC-32), since that is the
    implementation a tag would require to cut the instruction count.
    """
    rng = RngStream.from_seed(seed)
    engine = CrcEngine(detector.engine.spec, method="bitwise")
    total_ops = 0
    for _ in range(samples):
        tag_id = BitVector.random(detector.id_bits, rng.generator)
        engine.compute_bits(tag_id)
        total_ops += engine.last_op_count
    table_engine = CrcEngine(detector.engine.spec, method="table")
    return CostProfile(
        scheme=detector.name,
        instructions_per_check=total_ops / samples,
        complexity="O(l)",
        memory_bits=8 * table_engine.table_memory_bytes,
        transmission_bits=detector.contention_bits,
    )


def measure_qcd_cost(detector: QCDDetector) -> CostProfile:
    """QCD's check is a single bitwise complement of an l-bit register,
    O(1) in the word width; the only state is the 2l-bit preamble."""
    return CostProfile(
        scheme=detector.name,
        instructions_per_check=1.0,
        complexity="O(1)",
        memory_bits=detector.contention_bits,
        transmission_bits=detector.contention_bits,
    )
