"""Collision functions (paper Definition 1) and checkers.

Definition 1 of the paper: given positive integers
``R = {r_1, ..., r_m}`` (m >= 1; at least two distinct when m > 1),
``f`` is a *collision function* iff

    m > 1  <=>  f(r_1 ∨ ... ∨ r_m) != f(r_1) ∨ ... ∨ f(r_m)

i.e. ``f`` fails to commute with the Boolean sum exactly when more than one
distinct value participates.  Theorem 1 proves the bitwise complement
``f(r) = r̄`` is a collision function; this module implements it, a
deliberately *broken* alternative (the identity, which commutes with ∨ and
therefore detects nothing), and an exhaustive checker used by the tests and
by :func:`is_collision_function` to validate user-supplied candidates.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod

from repro.bits.bitvec import BitVector

__all__ = [
    "CollisionFunction",
    "BitwiseComplement",
    "IdentityFunction",
    "is_collision_function",
]


class CollisionFunction(ABC):
    """A candidate checking function ``f`` over l-bit integers."""

    #: Name used in reports.
    name: str = "abstract"

    @abstractmethod
    def apply(self, r: BitVector) -> BitVector:
        """Compute ``f(r)``; must return a vector of the same length."""

    def __call__(self, r: BitVector) -> BitVector:
        out = self.apply(r)
        if out.length != r.length:
            raise ValueError(
                f"{self.name}: f must preserve length "
                f"({r.length} -> {out.length})"
            )
        return out


class BitwiseComplement(CollisionFunction):
    """The paper's collision function ``f(r) = r̄`` (Theorem 1).

    One machine instruction, O(1) in the word width, no memory beyond the
    operand -- the properties Table IV contrasts against CRC.
    """

    name = "bitwise-complement"

    def apply(self, r: BitVector) -> BitVector:
        return ~r


class IdentityFunction(CollisionFunction):
    """``f(r) = r`` -- *not* a collision function.

    The identity commutes with the Boolean sum
    (``∨ f(r_i) = ∨ r_i = f(∨ r_i)``), so the equality test in
    Definition 1 always passes and no collision is ever detected.  Kept as a
    negative control for the checker and the test suite.
    """

    name = "identity"

    def apply(self, r: BitVector) -> BitVector:
        return r


def is_collision_function(
    f: CollisionFunction, length: int, max_group: int = 3
) -> bool:
    """Exhaustively verify Definition 1 for all groups of distinct positive
    l-bit integers up to size ``max_group``.

    Complexity is O((2^l)^max_group); intended for small ``length`` (the
    tests use l <= 5).  Returns False on the first counterexample.

    Notes
    -----
    * m = 1 direction: ``f(r) == f(r)`` trivially, so a violation can only
      come from the checker finding ``f(∨) != ∨f`` for a singleton, which is
      impossible; we still check that ``f`` preserves length.
    * m > 1 direction: every multiset with at least two *distinct* members
      must make the equality fail.  (Groups where all members are equal are
      excluded by Definition 1's premise.)
    """
    if length <= 0:
        raise ValueError("length must be positive")
    universe = [BitVector(v, length) for v in range(1, 1 << length)]
    # m = 1: must classify as single (equality holds by construction).
    for r in universe:
        if f(r) != f(r):  # pragma: no cover - defensive
            return False
    for m in range(2, max_group + 1):
        for group in itertools.combinations(universe, m):
            combined = BitVector.superpose(group)
            lhs = f(combined)
            rhs = BitVector.superpose([f(r) for r in group])
            if lhs == rhs:
                return False
    return True
