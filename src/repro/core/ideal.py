"""A genie collision detector -- experimental control.

The ideal detector classifies every slot correctly with zero check overhead:
tags transmit bare IDs and the simulator tells the detector the true number
of transmitters.  It bounds what any detection scheme could achieve and is
used in ablation benchmarks to separate protocol inefficiency (idle and
collided slots are inherent to FSA/BT) from detection inefficiency (the
airtime a scheme spends classifying them).
"""

from __future__ import annotations

from repro.bits.bitvec import BitVector
from repro.bits.rng import RngStream
from repro.core.detector import CollisionDetector, SlotOutcome, SlotType

__all__ = ["IdealDetector"]


class IdealDetector(CollisionDetector):
    """Perfect, oracle-assisted slot classification.

    Unlike the physical schemes, this detector cannot work from the
    superposed signal alone; the simulator must call
    :meth:`observe_transmitters` before :meth:`classify`.  This is exactly
    the "special hardware for sensing collisions" alternative the paper
    mentions (and dismisses as unaffordable) in Section I.
    """

    needs_id_phase = False

    def __init__(self, id_bits: int = 64) -> None:
        self.id_bits = id_bits
        self.name = "ideal"
        self._pending_count: int | None = None
        self._pending_id: int | None = None

    @property
    def contention_bits(self) -> int:
        """Tags transmit the bare ID -- no checking overhead at all."""
        return self.id_bits

    def contention_payload(self, tag_id: int, rng: RngStream) -> BitVector:
        return BitVector(tag_id, self.id_bits)

    def observe_transmitters(self, count: int, sole_id: int | None = None) -> None:
        """Genie side-channel: the true transmitter count for the next slot
        (and the transmitting tag's ID when the count is one)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._pending_count = count
        self._pending_id = sole_id

    def classify(self, signal: BitVector | None) -> SlotOutcome:
        if self._pending_count is None:
            raise RuntimeError(
                "IdealDetector.classify() requires observe_transmitters() first"
            )
        count, sole_id = self._pending_count, self._pending_id
        self._pending_count = None
        self._pending_id = None
        if count == 0:
            return SlotOutcome(SlotType.IDLE)
        if count == 1:
            decoded = sole_id
            if decoded is None and signal is not None:
                decoded = signal.to_int()
            return SlotOutcome(SlotType.SINGLE, decoded_id=decoded)
        return SlotOutcome(SlotType.COLLIDED)

    def miss_probability(self, m: int) -> float:
        """The genie never errs."""
        return 0.0
