"""Gen2 SELECT masks: scoping an inventory to part of the ID space.

Before issuing Queries, a Gen2 reader broadcasts SELECT commands that
match a bit mask against tag memory; only matching tags participate in
the following inventory round.  This is how real systems inventory "just
vendor X's cases" or exclude already-read tags.

:class:`SelectMask` matches a bit pattern at an arbitrary offset of the
ID (for SGTIN-96 EPCs, `for_company` builds the mask straight from the
GS1 partition layout), and composes with the reader via
``Reader.run_inventory(..., select=mask)`` -- non-matching tags simply
never contend, exactly as silenced tags behave on air.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.bits.bitvec import BitVector
from repro.tags.epc import PARTITION_TABLE, Sgtin96
from repro.tags.tag import Tag

__all__ = ["SelectMask"]


@dataclass(frozen=True)
class SelectMask:
    """A bit-pattern match at a fixed offset of the tag ID.

    Attributes
    ----------
    offset:
        MSB-first bit position where the pattern starts.
    pattern:
        The bits that must match there.
    negate:
        If True, select the *non*-matching tags (Gen2's inverse action).
    """

    offset: int
    pattern: BitVector
    negate: bool = False

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("offset must be >= 0")
        if self.pattern.length == 0:
            raise ValueError("pattern must be non-empty")

    @property
    def end(self) -> int:
        return self.offset + self.pattern.length

    def matches(self, tag: Tag) -> bool:
        """True iff the tag participates under this mask."""
        if self.end > tag.id_bits:
            matched = False
        else:
            matched = tag.id_vector[self.offset : self.end] == self.pattern
        return matched != self.negate

    def filter(self, tags: Iterable[Tag]) -> list[Tag]:
        return [t for t in tags if self.matches(t)]

    # ------------------------------------------------------------------

    @classmethod
    def for_prefix(cls, prefix: BitVector, negate: bool = False) -> "SelectMask":
        """Match an ID prefix (offset 0)."""
        return cls(offset=0, pattern=prefix, negate=negate)

    @classmethod
    def for_company(
        cls, partition: int, company_prefix: int, negate: bool = False
    ) -> "SelectMask":
        """Match every SGTIN-96 EPC of one GS1 company prefix.

        The company field sits right after header(8) + filter(3) +
        partition(3); its width comes from the partition table.
        """
        if partition not in PARTITION_TABLE:
            raise ValueError(f"invalid partition {partition}")
        company_bits, _ = PARTITION_TABLE[partition]
        if not 0 <= company_prefix < (1 << company_bits):
            raise ValueError("company_prefix out of range for partition")
        # Match header+filter(any)+partition+company?  The filter bits
        # vary per item, so anchor the pattern at the partition field.
        offset = 8 + 3  # header + filter
        pattern = BitVector(partition, 3) + BitVector(company_prefix, company_bits)
        return cls(offset=offset, pattern=pattern, negate=negate)

    @classmethod
    def excluding(cls, tags: Sequence[Tag]) -> list["SelectMask"]:
        """Masks that silence exactly the given tags (one per tag --
        Gen2 readers chain SELECTs the same way)."""
        return [
            cls(offset=0, pattern=t.id_vector, negate=True) for t in tags
        ]
