"""CRC-CD -- the baseline collision-detection scheme (paper Figure 1).

Every tag answering a slot transmits ``id ⊕ crc(id)``
(EPC Gen2: a 64-bit ID plus a 32-bit CRC, 96 bits total).  The reader
recomputes the CRC over the received (possibly OR-overlapped) ID field and
compares it with the received CRC field:

* signals match  -> **single**, the ID field is the tag's ID;
* mismatch       -> **collided** (``crc(∨ id_i) != ∨ crc(id_i)`` with
  probability ``1 - 2^{-l_crc}`` per the paper's Section IV-A);
* no signal      -> **idle**.

Because the ID travels in the contention payload itself, CRC-CD needs no
second phase -- but every slot, including idle and collided ones, is charged
the full ``(l_id + l_crc)·τ`` airtime (Section V).
"""

from __future__ import annotations

import numpy as np

from repro.bits.bitvec import BitVector
from repro.bits.crc import CRC32_IEEE, CrcEngine, CrcSpec
from repro.bits.rng import RngStream
from repro.core.detector import CollisionDetector, SlotOutcome, SlotType

__all__ = ["CRCCDDetector"]


class CRCCDDetector(CollisionDetector):
    """CRC-based collision detection.

    Parameters
    ----------
    id_bits:
        Tag ID length l_id (paper: 64).
    crc_spec:
        CRC parameter set; defaults to CRC-32 (the paper's ``l_crc = 32``).
    method:
        CRC engine implementation, ``"bitwise"`` or ``"table"``.  The choice
        does not change results, only the cost profile (Table IV).
    """

    needs_id_phase = False

    def __init__(
        self,
        id_bits: int = 64,
        crc_spec: CrcSpec = CRC32_IEEE,
        method: str = "bitwise",
    ) -> None:
        if id_bits < 1:
            raise ValueError("id_bits must be >= 1")
        self.id_bits = id_bits
        self.engine = CrcEngine(crc_spec, method=method)
        self.name = f"CRC-CD/{crc_spec.name}"
        # The uint64 fast path needs the whole id ⊕ crc(id) payload in one
        # machine word: available for e.g. 32-bit IDs with CRC-32, or
        # 48-bit IDs with CRC-16 -- the paper's 64+32 layout stays on the
        # object path.
        self.packed_bits = (
            self.id_bits + self.engine.spec.width
            if self.id_bits + self.engine.spec.width <= 64
            else None
        )
        # A tag's payload is a pure function of its ID, so the packed path
        # memoizes (value, crc_op_count) per ID and replays the op count
        # into the counters on every transmission -- identical Table IV
        # accounting without recomputing the CRC each slot.
        self._payload_memo: dict[int, tuple[int, int]] = {}
        #: Instrumentation for the Table IV comparison.
        self.classify_calls = 0
        self.crc_computations = 0
        self.crc_ops_total = 0

    @property
    def crc_bits(self) -> int:
        return self.engine.spec.width

    @property
    def contention_bits(self) -> int:
        """l_id + l_crc bits on the air per responding tag."""
        return self.id_bits + self.crc_bits

    def contention_payload(self, tag_id: int, rng: RngStream) -> BitVector:
        """``id ⊕ crc(id)``.  The tag-side CRC computation is also counted
        (the paper's point is precisely that *tags* must run CRC)."""
        id_vec = BitVector(tag_id, self.id_bits)
        crc = self.engine.compute_bits(id_vec)
        self.crc_computations += 1
        self.crc_ops_total += self.engine.last_op_count
        return id_vec + crc

    def classify(self, signal: BitVector | None) -> SlotOutcome:
        self.classify_calls += 1
        if signal is None:
            return SlotOutcome(SlotType.IDLE)
        if signal.length != self.contention_bits:
            raise ValueError(
                f"signal has {signal.length} bits, expected {self.contention_bits}"
            )
        id_field = signal[: self.id_bits]
        crc_field = signal[self.id_bits :]
        recomputed = self.engine.compute_bits(id_field)
        self.crc_computations += 1
        self.crc_ops_total += self.engine.last_op_count
        if recomputed == crc_field:
            return SlotOutcome(SlotType.SINGLE, decoded_id=id_field.to_int())
        return SlotOutcome(SlotType.COLLIDED)

    def contention_payload_packed(self, tag_id: int, rng: RngStream) -> int:
        """``id ⊕ crc(id)`` as a ``packed_bits``-wide integer.

        Bit layout matches :meth:`contention_payload`'s concatenation --
        ID in the high bits, CRC in the low bits -- so packed ORs overlap
        exactly the bits the object channel ORs.  CRC-CD draws nothing
        from ``rng`` on either path.  The tag-side CRC is still *charged*
        every transmission (the paper's point is that tags must run CRC);
        only the recomputation is memoized.
        """
        del rng
        memo = self._payload_memo.get(tag_id)
        if memo is None:
            crc = self.engine.compute_bits(BitVector(tag_id, self.id_bits))
            memo = (
                (tag_id << self.crc_bits) | crc.to_int(),
                self.engine.last_op_count,
            )
            self._payload_memo[tag_id] = memo
        self.crc_computations += 1
        self.crc_ops_total += memo[1]
        return memo[0]

    def classify_packed(self, value: int | None) -> SlotOutcome:
        """CRC check over a packed superposition (same counters).

        Unlike QCD, an all-zero payload is possible (an ID whose CRC is
        zero), so idle is signalled by ``None`` -- mirroring the object
        channel's no-signal convention -- never inferred from the value.
        """
        self.classify_calls += 1
        if value is None:
            return SlotOutcome(SlotType.IDLE)
        id_field = value >> self.crc_bits
        crc_field = value & ((1 << self.crc_bits) - 1)
        recomputed = self.engine.compute_bits(
            BitVector(id_field, self.id_bits)
        )
        self.crc_computations += 1
        self.crc_ops_total += self.engine.last_op_count
        if recomputed.to_int() == crc_field:
            return SlotOutcome(SlotType.SINGLE, decoded_id=id_field)
        return SlotOutcome(SlotType.COLLIDED)

    def classify_packed_many(
        self, values: "np.ndarray", counts: "np.ndarray"
    ) -> "np.ndarray":
        """Frame classification: vectorized idle handling, scalar CRCs.

        The CRC over each occupied slot's (possibly OR-overlapped) ID
        field cannot be vectorized without forfeiting the data-dependent
        ``crc_ops_total`` accounting, so occupied slots delegate to
        :meth:`classify_packed`; the win is skipping the idle majority of
        late frames.
        """
        n_slots = len(counts)
        out = np.full(n_slots, int(SlotType.IDLE), dtype=np.int64)
        occupied = np.flatnonzero(counts)
        self.classify_calls += n_slots - len(occupied)
        slot_values = values.tolist()
        for slot in occupied.tolist():
            out[slot] = int(self.classify_packed(slot_values[slot]).slot_type)
        return out

    def miss_probability(self, m: int) -> float:
        """Approximate probability an m-tag collision is misread as single:
        the overlapped CRC field coincides with the CRC of the overlapped ID
        field by chance, ~``2^{-l_crc}`` (paper Section IV-A)."""
        if m < 2:
            return 0.0
        return 2.0 ** (-self.crc_bits)

    def reset_instrumentation(self) -> None:
        self.classify_calls = 0
        self.crc_computations = 0
        self.crc_ops_total = 0
