"""Gen2 reader command codecs (Query / QueryRep / QueryAdjust / ACK).

The paper treats reader commands as constant overhead "the same in both
schemes".  We implement the actual Gen2 command formats so that overhead
is grounded: the Query command carries the Q parameter and is protected by
**CRC-5** (the consumer of :data:`repro.bits.crc.CRC5_EPC`), QueryAdjust
carries the Q delta, ACK echoes the tag's 16-bit handle.  The bit lengths
these codecs produce are exactly the constants
:class:`repro.core.gen2_timing.Gen2TimingModel` charges.

Field layouts (simplified to the collision-relevant parameters; session /
select / target flags are carried but fixed by default):

=============  ====================================================  ====
command        fields                                                bits
=============  ====================================================  ====
Query          1000 ⊕ DR(1) M(2) TRext(1) Sel(2) Session(2) Target(1)
               Q(4) ⊕ CRC-5                                           22
QueryRep       00 ⊕ Session(2)                                         4
QueryAdjust    1001 ⊕ Session(2) ⊕ UpDn(3)                             9
ACK            01 ⊕ RN16(16)                                          18
=============  ====================================================  ====
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.bitvec import BitVector
from repro.bits.crc import CRC5_EPC, CrcEngine

__all__ = ["Query", "QueryRep", "QueryAdjust", "Ack", "decode_command"]

_CRC5 = CrcEngine(CRC5_EPC)


@dataclass(frozen=True)
class Query:
    """The frame-opening command; carries Q and is CRC-5 protected."""

    q: int
    dr: int = 0  # divide ratio select: 0 = 8, 1 = 64/3
    m: int = 0  # miller: 0=FM0, 1=M2, 2=M4, 3=M8
    trext: int = 0
    sel: int = 0
    session: int = 0
    target: int = 0

    PREFIX = BitVector(0b1000, 4)

    def __post_init__(self) -> None:
        if not 0 <= self.q <= 15:
            raise ValueError("Q must be in [0, 15]")
        for name, width in (
            ("dr", 1),
            ("m", 2),
            ("trext", 1),
            ("sel", 2),
            ("session", 2),
            ("target", 1),
        ):
            if not 0 <= getattr(self, name) < (1 << width):
                raise ValueError(f"{name} out of range")

    def body(self) -> BitVector:
        return (
            self.PREFIX
            + BitVector(self.dr, 1)
            + BitVector(self.m, 2)
            + BitVector(self.trext, 1)
            + BitVector(self.sel, 2)
            + BitVector(self.session, 2)
            + BitVector(self.target, 1)
            + BitVector(self.q, 4)
        )

    def encode(self) -> BitVector:
        body = self.body()
        return body + _CRC5.compute_bits(body)

    @classmethod
    def decode(cls, frame: BitVector) -> "Query":
        if frame.length != 22:
            raise ValueError(f"Query frame is 22 bits, got {frame.length}")
        body, crc = frame[:17], frame[17:]
        if _CRC5.compute_bits(body) != crc:
            raise ValueError("Query CRC-5 check failed")
        if body[:4] != cls.PREFIX:
            raise ValueError("not a Query frame")
        pos = 4
        fields = {}
        for name, width in (
            ("dr", 1),
            ("m", 2),
            ("trext", 1),
            ("sel", 2),
            ("session", 2),
            ("target", 1),
            ("q", 4),
        ):
            fields[name] = body[pos : pos + width].to_int()
            pos += width
        return cls(**fields)


@dataclass(frozen=True)
class QueryRep:
    """Slot advance: decrement every tag's slot counter."""

    session: int = 0

    PREFIX = BitVector(0b00, 2)

    def __post_init__(self) -> None:
        if not 0 <= self.session < 4:
            raise ValueError("session out of range")

    def encode(self) -> BitVector:
        return self.PREFIX + BitVector(self.session, 2)

    @classmethod
    def decode(cls, frame: BitVector) -> "QueryRep":
        if frame.length != 4 or frame[:2] != cls.PREFIX:
            raise ValueError("not a QueryRep frame")
        return cls(session=frame[2:].to_int())


@dataclass(frozen=True)
class QueryAdjust:
    """Mid-round Q adjustment; tags redraw their slot counters."""

    session: int = 0
    updn: int = 0  # 0: unchanged, 0b110: Q+1, 0b011: Q-1

    PREFIX = BitVector(0b1001, 4)
    UP, DOWN, HOLD = 0b110, 0b011, 0b000

    def __post_init__(self) -> None:
        if not 0 <= self.session < 4:
            raise ValueError("session out of range")
        if self.updn not in (self.UP, self.DOWN, self.HOLD):
            raise ValueError("updn must be UP (110), DOWN (011) or HOLD (000)")

    def encode(self) -> BitVector:
        return self.PREFIX + BitVector(self.session, 2) + BitVector(self.updn, 3)

    @classmethod
    def decode(cls, frame: BitVector) -> "QueryAdjust":
        if frame.length != 9 or frame[:4] != cls.PREFIX:
            raise ValueError("not a QueryAdjust frame")
        return cls(session=frame[4:6].to_int(), updn=frame[6:].to_int())


@dataclass(frozen=True)
class Ack:
    """Acknowledge a single slot; echoes the tag's 16-bit random handle.

    Under QCD the natural handle is the tag's preamble integer padded to
    16 bits -- the reader already holds it from the contention phase.
    """

    rn16: int

    PREFIX = BitVector(0b01, 2)

    def __post_init__(self) -> None:
        if not 0 <= self.rn16 < (1 << 16):
            raise ValueError("rn16 must be a 16-bit value")

    def encode(self) -> BitVector:
        return self.PREFIX + BitVector(self.rn16, 16)

    @classmethod
    def decode(cls, frame: BitVector) -> "Ack":
        if frame.length != 18 or frame[:2] != cls.PREFIX:
            raise ValueError("not an ACK frame")
        return cls(rn16=frame[2:].to_int())


def decode_command(frame: BitVector):
    """Dispatch on the command prefix; returns the decoded dataclass."""
    if frame.length >= 4 and frame[:4] == Query.PREFIX and frame.length == 22:
        return Query.decode(frame)
    if frame.length == 9 and frame[:4] == QueryAdjust.PREFIX:
        return QueryAdjust.decode(frame)
    if frame.length == 18 and frame[:2] == Ack.PREFIX:
        return Ack.decode(frame)
    if frame.length == 4 and frame[:2] == QueryRep.PREFIX:
        return QueryRep.decode(frame)
    raise ValueError(f"unrecognized command frame ({frame.length} bits)")
