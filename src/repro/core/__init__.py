"""The paper's primary contribution: collision-detection schemes.

Public surface:

* :class:`~repro.core.detector.SlotType`,
  :class:`~repro.core.detector.CollisionDetector` -- the detector protocol
  shared by all schemes;
* :class:`~repro.core.qcd.QCDDetector` -- Quick Collision Detection
  (collision preamble ``r ⊕ r̄``, Algorithm 1 of the paper);
* :class:`~repro.core.crc_cd.CRCCDDetector` -- the CRC-CD baseline;
* :class:`~repro.core.ideal.IdealDetector` -- a genie detector (perfect,
  zero-overhead classification) used as an experimental control;
* :class:`~repro.core.timing.TimingModel` -- per-slot airtime accounting
  (Section V of the paper);
* :mod:`~repro.core.cost` -- the computation/memory cost model behind
  Table IV.
"""

from repro.core.collision_function import (
    BitwiseComplement,
    CollisionFunction,
    IdentityFunction,
    is_collision_function,
)
from repro.core.commands import Ack, Query, QueryAdjust, QueryRep, decode_command
from repro.core.crc_cd import CRCCDDetector
from repro.core.detector import CollisionDetector, SlotOutcome, SlotType
from repro.core.gen2_timing import Gen2TimingModel
from repro.core.ideal import IdealDetector
from repro.core.phy import FM0ViolationDetector
from repro.core.preamble import CollisionPreamble, PreambleCodec
from repro.core.qcd import QCDDetector
from repro.core.rn16 import RN16Detector
from repro.core.select import SelectMask
from repro.core.timing import TimingModel

__all__ = [
    "SlotType",
    "SlotOutcome",
    "CollisionDetector",
    "CollisionFunction",
    "BitwiseComplement",
    "IdentityFunction",
    "is_collision_function",
    "CollisionPreamble",
    "PreambleCodec",
    "QCDDetector",
    "CRCCDDetector",
    "IdealDetector",
    "FM0ViolationDetector",
    "RN16Detector",
    "SelectMask",
    "TimingModel",
    "Gen2TimingModel",
    "Query",
    "QueryRep",
    "QueryAdjust",
    "Ack",
    "decode_command",
]
