"""Debug-mode engine invariants (the checks behind ``docs/VERIFICATION.md``).

The reader's slot loop and the mobile engine re-derive, on demand, the
facts the rest of the reproduction takes for granted:

* **slot truth** -- a slot's ground-truth type is exactly determined by
  its responder count (0 -> idle, 1 -> single, >= 2 -> collided);
* **durations** -- every slot's airtime equals the
  :class:`~repro.core.timing.TimingModel` re-derivation for the detector
  and the *detected* verdict;
* **QCD consistency** -- a slot the detector called single carries a
  preamble satisfying ``c == f(r)`` (Algorithm 1's acceptance test);
* **partition** -- true and detected slot counts both partition the
  trace (paper Section III: X + Y + Z = 1 per slot);
* **identification** -- identified IDs are unique, a subset of the
  population, disjoint from lost IDs; the airtime clock is monotone; a
  completed static inventory accounts for every tag.

The checker follows the :mod:`repro.obs.state` switchboard pattern: the
hot paths pay one attribute load and branch when it is off (budget
asserted by ``benchmarks/test_ablation_verify.py``).  Enable it in-process
via :func:`enable` / :func:`checking`, or from the environment with
``REPRO_VERIFY_INVARIANTS=1`` (strict: violations raise) or
``REPRO_VERIFY_INVARIANTS=collect`` (record only).  Violations are also
counted into the observability registry (when enabled) under
``repro_invariant_violations_total{check=...}``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from repro.core.detector import SlotType
from repro.core.qcd import QCDDetector
from repro.obs import instruments as _inst
from repro.obs.state import STATE as _OBS

__all__ = [
    "ENV_FLAG",
    "InvariantViolation",
    "Violation",
    "InvariantState",
    "STATE",
    "enable",
    "disable",
    "reset",
    "is_enabled",
    "checking",
    "check_slot",
    "check_inventory",
]

#: Set to ``1`` (strict) or ``collect`` (record-only) to enable from the
#: environment; anything falsy leaves the checker off.
ENV_FLAG = "REPRO_VERIFY_INVARIANTS"


class InvariantViolation(AssertionError):
    """An engine invariant failed (raised only in strict mode)."""


@dataclass(frozen=True)
class Violation:
    """One recorded invariant failure."""

    check: str
    message: str


class InvariantState:
    """The flag, the mode and the violation log, in one attribute load."""

    __slots__ = ("enabled", "strict", "violations")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.strict: bool = True
        self.violations: list[Violation] = []


#: The process-wide instance the instrumented engines guard on.
STATE = InvariantState()


def enable(strict: bool = True) -> InvariantState:
    """Turn invariant checking on.

    ``strict=True`` raises :class:`InvariantViolation` at the first
    failure; ``strict=False`` records failures in ``STATE.violations``
    (and the obs registry) and lets the run continue.
    """
    STATE.enabled = True
    STATE.strict = strict
    return STATE


def disable() -> InvariantState:
    STATE.enabled = False
    return STATE


def reset() -> InvariantState:
    """Clear the violation log (the enabled flag is untouched)."""
    STATE.violations = []
    return STATE


def is_enabled() -> bool:
    return STATE.enabled


class checking:
    """Context manager: enable checks inside, restore the prior state after.

    >>> with checking(strict=False) as inv:
    ...     reader.run_inventory(tags, protocol)
    >>> inv.violations
    []
    """

    def __init__(self, strict: bool = True) -> None:
        self._strict = strict
        self._prior: tuple[bool, bool] | None = None

    def __enter__(self) -> InvariantState:
        self._prior = (STATE.enabled, STATE.strict)
        enable(strict=self._strict)
        return STATE

    def __exit__(self, *exc) -> None:
        assert self._prior is not None
        STATE.enabled, STATE.strict = self._prior


def _report(check: str, message: str) -> None:
    STATE.violations.append(Violation(check, message))
    if _OBS.enabled:
        _OBS.registry.counter(
            _inst.INVARIANT_VIOLATIONS,
            "Engine invariant violations",
            labelnames=("check",),
        ).labels(check=check).inc()
    if STATE.strict:
        raise InvariantViolation(f"{check}: {message}")


def check_slot(record, detector, timing, signal) -> None:
    """Per-slot invariants; called by the engines when the checker is on.

    ``record`` is the freshly built :class:`~repro.sim.trace.SlotRecord`,
    ``signal`` the superposed channel output the detector classified
    (typed loosely so this module never imports :mod:`repro.sim`, which
    imports it back).
    """
    n = record.n_responders
    expected_true = (
        SlotType.IDLE
        if n == 0
        else SlotType.SINGLE
        if n == 1
        else SlotType.COLLIDED
    )
    if record.true_type is not expected_true:
        _report(
            "slot_true_type",
            f"slot {record.index}: {n} responders but true_type="
            f"{record.true_type.name}",
        )
    expected_duration = timing.slot_duration(detector, record.detected_type)
    if record.duration != expected_duration:
        _report(
            "slot_duration",
            f"slot {record.index}: duration {record.duration} != "
            f"TimingModel re-derivation {expected_duration} "
            f"({detector.name}, detected {record.detected_type.name})",
        )
    if (
        record.detected_type is SlotType.SINGLE
        and signal is not None
        and isinstance(detector, QCDDetector)
        and not signal.is_zero()
    ):
        preamble = detector.codec.decode(signal)
        if not detector.codec.is_consistent(preamble):
            _report(
                "qcd_preamble",
                f"slot {record.index}: detector accepted a single whose "
                f"preamble fails c == f(r)",
            )


def check_inventory(
    trace: Sequence,
    population_ids: Sequence[int],
    identified_ids: Sequence[int],
    lost_ids: Sequence[int],
    complete: bool = False,
) -> None:
    """Whole-inventory invariants; ``complete=True`` for static runs
    where the protocol finished over a fixed population (every tag must
    then be accounted for as identified or lost)."""
    true_total = detected_total = 0
    known = (SlotType.IDLE, SlotType.SINGLE, SlotType.COLLIDED)
    prev_end = None
    for rec in trace:
        if rec.true_type in known:
            true_total += 1
        if rec.detected_type in known:
            detected_total += 1
        if rec.duration < 0:
            _report(
                "clock_monotone",
                f"slot {rec.index}: negative duration {rec.duration}",
            )
        if prev_end is not None and rec.end_time < prev_end:
            _report(
                "clock_monotone",
                f"slot {rec.index}: end_time {rec.end_time} < previous "
                f"{prev_end}",
            )
        prev_end = rec.end_time
    if true_total != len(trace) or detected_total != len(trace):
        _report(
            "slot_partition",
            f"slot types do not partition the trace: {true_total} true / "
            f"{detected_total} detected of {len(trace)} slots",
        )
    pop = set(population_ids)
    ident = list(identified_ids)
    ident_set = set(ident)
    if len(ident_set) != len(ident):
        _report(
            "identified_unique",
            f"{len(ident) - len(ident_set)} duplicate identified IDs",
        )
    if not ident_set <= pop:
        _report(
            "identified_subset",
            f"{len(ident_set - pop)} identified IDs outside the population",
        )
    lost_set = set(lost_ids)
    if lost_set & ident_set:
        _report(
            "lost_disjoint",
            f"{len(lost_set & ident_set)} IDs both identified and lost",
        )
    if complete and (ident_set | lost_set) != pop:
        missing = pop - (ident_set | lost_set)
        _report(
            "inventory_complete",
            f"{len(missing)} tags neither identified nor lost after a "
            f"completed inventory",
        )


_env = os.environ.get(ENV_FLAG, "").strip()
if _env and _env not in ("0", "false", "False"):
    enable(strict=_env != "collect")
del _env
