"""``python -m repro.verify`` -- alias for the ``repro-verify`` CLI."""

from repro.verify.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
