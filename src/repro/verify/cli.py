"""``repro-verify`` -- run the differential-oracle suite from the shell.

Examples::

    repro-verify --quick                 # CI smoke: all oracles, 8 rounds
    repro-verify --oracle bt-slots-vs-theory --rounds 48
    repro-verify --list
    repro-verify --quick --workers 4 --report verify-report.json

Exit status is 0 iff every check of every executed oracle passed, so the
command gates CI directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.experiments.report import render_table
from repro.sim.export import nan_to_none
from repro.verify.oracles import all_oracles
from repro.verify.runner import VerificationRunner, report_rows

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description=(
            "Differential-oracle verification: prove the exact reader, "
            "the vectorized kernels and the closed-form theory simulate "
            "the same stochastic process."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke depth (fewer Monte-Carlo rounds, same tolerances)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="override Monte-Carlo rounds per oracle batch",
    )
    parser.add_argument(
        "--seed", type=int, default=2010, help="root seed (default 2010)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard kernel batches across N processes",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist oracle verdicts to this directory (content-hashed)",
    )
    parser.add_argument(
        "--oracle",
        action="append",
        dest="oracles",
        metavar="NAME",
        help="run only this oracle (repeatable)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the machine-readable JSON verdict report to FILE",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_oracles",
        help="list registered oracles and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_oracles:
        print(
            render_table(
                [
                    {
                        "oracle": o.name,
                        "kind": o.kind,
                        "description": o.description,
                    }
                    for o in all_oracles()
                ],
                title="Registered oracle pairs",
            )
        )
        return 0
    with VerificationRunner(
        rounds=args.rounds,
        seed=args.seed,
        quick=args.quick,
        workers=args.workers,
        cache_dir=args.cache_dir,
    ) as runner:
        report = runner.run(args.oracles)
    title = (
        f"repro-verify: {len(report.reports)} oracles, "
        f"{report.rounds} rounds, seed {report.seed}"
    )
    print(render_table(report_rows(report), title=title))
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(
                nan_to_none(report.to_dict()), fh, indent=2, allow_nan=False
            )
            fh.write("\n")
    if report.passed:
        print(f"\nPASS: all {len(report.reports)} oracle pairs agree")
        return 0
    failed = ", ".join(r.oracle for r in report.failures)
    print(f"\nFAIL: tolerance violations in: {failed}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
