"""The differential-oracle registry.

An *oracle pair* binds two implementations of the same quantity -- a
vectorized kernel and the exact reader, or a simulation and a closed-form
prediction from :mod:`repro.analysis` -- to a comparison statistic and a
tolerance (:mod:`repro.verify.comparisons`).  Every oracle runs fixed
seeds, so a failure is reproducible, never flaky; tolerances are sized
for the default round counts of :class:`repro.verify.runner.VerificationRunner`.

The registered pairs:

=========================  =============  =====================================
name                       kind           compares
=========================  =============  =====================================
fsa-kernel-vs-reader       kernel-reader  ``fsa_fast`` vs exact ``Reader`` (QCD
                                          counts/time/delay, CRC time, low-l
                                          accuracy, KS on airtime)
bt-kernel-vs-reader        kernel-reader  ``bt_fast`` vs exact ``Reader``
batch-vs-streamed          kernel-kernel  round-batched kernels bit-identical
                                          to the streamed per-round loop, for
                                          any shard split of the round streams
batch-reader               reader-reader  frame-batched exact Reader trace-
                                          identical to the object and per-slot
                                          packed paths (records, IDs, counters)
fsa-frame-vs-theory        sim-theory     first-frame slot counts vs the
                                          binomial model (Lemma 1's E[N1])
bt-slots-vs-theory         sim-theory     BT slot totals vs the Lemma 2
                                          recursion
fsa-ei-vs-theory           sim-theory     measured EI at F = n vs Table II's
                                          lower bounds
bt-ei-vs-theory            sim-theory     measured BT EI vs Table III averages
qcd-accuracy-vs-theory     sim-theory     low-strength accuracy vs the Section
                                          IV-B occupancy model
invariant-sweep            invariant      strict engine invariants over the
                                          protocol × detector × policy grid
=========================  =============  =====================================

Adding an oracle for a new backend: write a function taking an
:class:`OracleContext` and returning ``Check`` tuples, then decorate it
with :func:`oracle` (see ``docs/VERIFICATION.md``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.analysis.accuracy import expected_accuracy_fsa
from repro.analysis.bt_theory import (
    expected_bt_collided,
    expected_bt_idle,
    expected_bt_slots,
)
from repro.analysis.ei import bt_ei_average, fsa_ei_lower_bound, measured_ei
from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.experiments.config import SimulationCase
from repro.experiments.parallel import GridPointJob, make_detector
from repro.experiments.runner import _stable_hash
from repro.protocols.bt import BinaryTree
from repro.protocols.dfsa import DynamicFSA
from repro.protocols.estimators import SchouteEstimator, expected_slot_counts
from repro.protocols.fsa import FramedSlottedAloha
from repro.protocols.qt import QueryTree
from repro.sim.batch import (
    bt_fast_batch,
    dfsa_fast_batch,
    fsa_fast_batch,
    stats_equal,
)
from repro.sim.fast import bt_fast, dfsa_fast, fsa_fast
from repro.sim.metrics import InventoryStats
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation
from repro.verify import invariants
from repro.verify.comparisons import (
    Check,
    check_absolute,
    check_exact,
    check_ks,
    check_lower_bound,
    check_relative,
)

__all__ = [
    "Oracle",
    "OracleContext",
    "OracleReport",
    "ORACLES",
    "oracle",
    "get",
    "all_oracles",
]


@dataclass(frozen=True)
class OracleContext:
    """Execution knobs an oracle receives from the runner.

    ``executor`` is the PR-2 round executor (serial or process pool);
    kernel batches go through it via :meth:`kernel_rounds`, so
    ``repro-verify --workers N`` shards oracle rounds exactly like the
    experiment grid shards Monte-Carlo rounds.
    """

    rounds: int
    seed: int
    timing: TimingModel
    executor: object
    quick: bool = False

    def kernel_rounds(
        self,
        protocol: str,
        scheme: str,
        n_tags: int,
        frame_size: int = 1,
    ) -> list[InventoryStats]:
        """Per-round kernel stats for one grid point, deterministically
        seeded the same way :class:`~repro.experiments.runner.ExperimentSuite`
        seeds grid points (name fixed to ``"verify"``)."""
        case = SimulationCase("verify", n_tags, frame_size)
        seq = np.random.SeedSequence(
            [
                self.seed,
                _stable_hash(case.name),
                case.n_tags,
                case.frame_size,
                _stable_hash(protocol),
                _stable_hash(scheme),
            ]
        )
        job = GridPointJob(
            case=case,
            protocol=protocol,
            scheme=scheme,
            children=tuple(seq.spawn(self.rounds)),
            timing=self.timing,
        )
        return self.executor.run(job)

    def reader_rounds(
        self,
        protocol_factory: Callable[[], object],
        detector_factory: Callable[[], object],
        n_tags: int,
        salt: str,
        policy: str = "paper",
    ) -> list[InventoryStats]:
        """Per-round exact-reader stats (one fresh population, protocol
        and detector per round; seeds derived from ``seed`` and ``salt``)."""
        base = self.seed * 1_000_003 + _stable_hash(salt)
        out = []
        for i in range(self.rounds):
            pop = TagPopulation(
                n_tags, id_bits=self.timing.id_bits, rng=make_rng(base + i)
            )
            reader = Reader(detector_factory(), self.timing, policy=policy)
            out.append(
                reader.run_inventory(pop.tags, protocol_factory()).stats
            )
        return out


@dataclass(frozen=True)
class Oracle:
    """A registered oracle pair."""

    name: str
    kind: str  # "kernel-reader" | "kernel-kernel" | "sim-theory" | "invariant"
    description: str
    fn: Callable[[OracleContext], Sequence[Check]] = field(compare=False)

    def run(self, ctx: OracleContext) -> "OracleReport":
        return OracleReport(
            oracle=self.name, kind=self.kind, checks=tuple(self.fn(ctx))
        )


@dataclass(frozen=True)
class OracleReport:
    """The verdict of one oracle run."""

    oracle: str
    kind: str
    checks: tuple[Check, ...]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def to_dict(self) -> dict[str, object]:
        return {
            "oracle": self.oracle,
            "kind": self.kind,
            "passed": self.passed,
            "checks": [c.to_dict() for c in self.checks],
        }

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "OracleReport":
        return cls(
            oracle=str(doc["oracle"]),
            kind=str(doc["kind"]),
            checks=tuple(
                Check.from_dict(c) for c in doc["checks"]  # type: ignore[union-attr]
            ),
        )


#: The registry, in registration order (the order ``repro-verify`` runs).
ORACLES: dict[str, Oracle] = {}


def oracle(name: str, kind: str, description: str):
    """Decorator registering an oracle function under ``name``."""

    def wrap(fn: Callable[[OracleContext], Sequence[Check]]) -> Oracle:
        if name in ORACLES:
            raise ValueError(f"oracle {name!r} already registered")
        orc = Oracle(name=name, kind=kind, description=description, fn=fn)
        ORACLES[name] = orc
        return orc

    return wrap


def get(name: str) -> Oracle:
    try:
        return ORACLES[name]
    except KeyError:
        raise KeyError(
            f"unknown oracle {name!r}; registered: {sorted(ORACLES)}"
        ) from None


def all_oracles() -> list[Oracle]:
    return list(ORACLES.values())


def _mean(stats: Sequence[InventoryStats], f) -> float:
    return statistics.mean(f(s) for s in stats)


# ----------------------------------------------------------------------
# kernel <-> reader


@oracle(
    "fsa-kernel-vs-reader",
    "kernel-reader",
    "fsa_fast vs exact Reader: slot counts, airtime, delay, accuracy",
)
def _fsa_kernel_vs_reader(ctx: OracleContext) -> list[Check]:
    n, frame = 120, 64
    exact = ctx.reader_rounds(
        lambda: FramedSlottedAloha(frame),
        lambda: QCDDetector(8),
        n,
        salt="fsa-exact-qcd8",
    )
    fast = ctx.kernel_rounds("fsa", "qcd-8", n, frame)
    checks = [
        check_relative(
            f"mean_{f}",
            _mean(fast, lambda s, f=f: getattr(s.true_counts, f)),
            _mean(exact, lambda s, f=f: getattr(s.true_counts, f)),
            0.15,
        )
        for f in ("idle", "single", "collided")
    ]
    checks.append(
        check_relative(
            "mean_total_time",
            _mean(fast, lambda s: s.total_time),
            _mean(exact, lambda s: s.total_time),
            0.10,
        )
    )
    checks.append(
        check_relative(
            "mean_delay",
            _mean(fast, lambda s: s.delay.mean),
            _mean(exact, lambda s: s.delay.mean),
            0.15,
        )
    )
    checks.append(
        check_ks(
            "ks_total_time",
            [s.total_time for s in fast],
            [s.total_time for s in exact],
        )
    )
    exact_crc = ctx.reader_rounds(
        lambda: FramedSlottedAloha(frame),
        lambda: CRCCDDetector(id_bits=ctx.timing.id_bits),
        n,
        salt="fsa-exact-crc",
    )
    fast_crc = ctx.kernel_rounds("fsa", "crc", n, frame)
    checks.append(
        check_relative(
            "crc_mean_total_time",
            _mean(fast_crc, lambda s: s.total_time),
            _mean(exact_crc, lambda s: s.total_time),
            0.10,
        )
    )
    # l = 2 misses collisions often; the kernels must reproduce the rate.
    exact_lo = ctx.reader_rounds(
        lambda: FramedSlottedAloha(frame),
        lambda: QCDDetector(2),
        n,
        salt="fsa-exact-qcd2",
    )
    fast_lo = ctx.kernel_rounds("fsa", "qcd-2", n, frame)
    checks.append(
        check_absolute(
            "qcd2_mean_accuracy",
            _mean(fast_lo, lambda s: s.accuracy),
            _mean(exact_lo, lambda s: s.accuracy),
            0.05,
        )
    )
    return checks


@oracle(
    "bt-kernel-vs-reader",
    "kernel-reader",
    "bt_fast vs exact Reader: slot counts, airtime, exact single count",
)
def _bt_kernel_vs_reader(ctx: OracleContext) -> list[Check]:
    n = 120
    exact = ctx.reader_rounds(
        BinaryTree, lambda: QCDDetector(8), n, salt="bt-exact-qcd8"
    )
    fast = ctx.kernel_rounds("bt", "qcd-8", n)
    checks = [
        check_relative(
            f"mean_{f}",
            _mean(fast, lambda s, f=f: getattr(s.true_counts, f)),
            _mean(exact, lambda s, f=f: getattr(s.true_counts, f)),
            0.15,
        )
        for f in ("idle", "single", "collided")
    ]
    checks.append(
        check_relative(
            "mean_total_time",
            _mean(fast, lambda s: s.total_time),
            _mean(exact, lambda s: s.total_time),
            0.10,
        )
    )
    # BT identifies every tag in exactly one single slot, both backends.
    checks.append(
        check_exact(
            "min_singles", min(s.true_counts.single for s in fast), n
        )
    )
    checks.append(
        check_exact(
            "reader_min_singles", min(s.true_counts.single for s in exact), n
        )
    )
    checks.append(
        check_ks(
            "ks_total_time",
            [s.total_time for s in fast],
            [s.total_time for s in exact],
        )
    )
    return checks


# ----------------------------------------------------------------------
# kernel <-> kernel


@oracle(
    "batch-vs-streamed",
    "kernel-kernel",
    "round-batched kernels bit-identical to the streamed per-round loop",
)
def _batch_vs_streamed(ctx: OracleContext) -> list[Check]:
    """Bit-equality needs no statistics, so a handful of rounds suffices;
    every field of every round's :class:`InventoryStats` must match, and
    the batched runs must be invariant under any shard split of the
    round streams (the PR-2 executors split them arbitrarily)."""
    rounds = max(5, min(ctx.rounds, 12))
    n, frame = 120, 64

    def children(salt: str):
        return np.random.SeedSequence(
            [ctx.seed, _stable_hash("batch-vs-streamed"), _stable_hash(salt)]
        ).spawn(rounds)

    def gen(child):
        return np.random.Generator(np.random.PCG64(child))

    checks = []
    for label, scheme, proto in (
        ("fsa_qcd8", "qcd-8", "fsa"),
        ("fsa_crc", "crc", "fsa"),
        ("bt_qcd8", "qcd-8", "bt"),
        ("dfsa_qcd8", "qcd-8", "dfsa"),
    ):
        kids = children(label)
        det = make_detector(scheme, ctx.timing.id_bits)
        if proto == "fsa":
            batch = fsa_fast_batch(n, frame, det, ctx.timing, kids)
            streamed = [
                fsa_fast(n, frame, det, ctx.timing, gen(c)) for c in kids
            ]
        elif proto == "bt":
            batch = bt_fast_batch(n, det, ctx.timing, kids)
            streamed = [bt_fast(n, det, ctx.timing, gen(c)) for c in kids]
        else:
            batch = dfsa_fast_batch(
                n, 16, SchouteEstimator(), det, ctx.timing, kids
            )
            streamed = [
                dfsa_fast(
                    n, 16, SchouteEstimator(), det, ctx.timing, gen(c)
                )
                for c in kids
            ]
        equal = sum(
            stats_equal(a, b) for a, b in zip(batch.runs, streamed)
        )
        checks.append(check_exact(f"identical_rounds_{label}", equal, rounds))

    # Shard-split invariance: concatenating per-shard batches reproduces
    # the single whole-batch call, because each round owns its stream.
    kids = children("shards")
    det = make_detector("qcd-8", ctx.timing.id_bits)
    whole = fsa_fast_batch(n, frame, det, ctx.timing, kids).runs
    parts: list[InventoryStats] = []
    for lo, hi in ((0, 1), (1, 4), (4, rounds)):
        parts.extend(
            fsa_fast_batch(n, frame, det, ctx.timing, kids[lo:hi]).runs
        )
    equal = sum(stats_equal(a, b) for a, b in zip(whole, parts))
    checks.append(check_exact("shard_split_invariance", equal, rounds))
    return checks


# ----------------------------------------------------------------------
# reader <-> reader


@oracle(
    "batch-reader",
    "reader-reader",
    "frame-batched Reader trace-identical to the object and per-slot paths",
)
def _batch_reader(ctx: OracleContext) -> list[Check]:
    """Trace identity needs no statistics: every ``SlotRecord``, the
    identified/lost ID lists and the channel counters must match across
    the Reader's three tiers (object, per-slot packed, frame-batched) on
    the same population, so each round contributes to one exact count."""
    rounds = max(3, min(ctx.rounds, 8))
    base = ctx.seed * 1_000_003 + _stable_hash("batch-reader")
    timing32 = TimingModel(id_bits=32)
    configs = (
        ("fsa_qcd8", lambda: FramedSlottedAloha(16),
         lambda: QCDDetector(8), "paper", ctx.timing, 37),
        ("fsa_qcd2_lost", lambda: FramedSlottedAloha(8),
         lambda: QCDDetector(2), "lost", ctx.timing, 29),
        ("dfsa_qcd8", lambda: DynamicFSA(initial_frame_size=8),
         lambda: QCDDetector(8), "paper", ctx.timing, 37),
        # CRC-CD packs id ⊕ crc(id); 32-bit IDs keep it in one word.
        ("dfsa_crc", lambda: DynamicFSA(initial_frame_size=8),
         lambda: CRCCDDetector(id_bits=32), "paper", timing32, 23),
    )
    checks = []
    for c_i, (label, proto, det, policy, timing, n) in enumerate(configs):
        equal = 0
        for i in range(rounds):
            seed = base + 10_000 * c_i + i
            runs = []
            for packed, frame_batched in (
                (False, True), (True, False), (True, True)
            ):
                pop = TagPopulation(
                    n, id_bits=timing.id_bits, rng=make_rng(seed)
                )
                reader = Reader(
                    det(), timing, policy=policy, packed=packed,
                    frame_batched=frame_batched,
                )
                res = reader.run_inventory(pop.tags, proto())
                runs.append(
                    (
                        res.trace,
                        res.identified_ids,
                        res.lost_ids,
                        reader.channel.stats,
                    )
                )
            equal += all(run == runs[0] for run in runs[1:])
        checks.append(check_exact(f"identical_rounds_{label}", equal, rounds))
    return checks


# ----------------------------------------------------------------------
# simulation <-> theory


@oracle(
    "fsa-frame-vs-theory",
    "sim-theory",
    "exact Reader first-frame slot counts vs the binomial occupancy model",
)
def _fsa_frame_vs_theory(ctx: OracleContext) -> list[Check]:
    n, frame = 60, 64
    base = ctx.seed * 1_000_003 + _stable_hash("fsa-frame-theory")
    firsts = []
    for i in range(ctx.rounds):
        pop = TagPopulation(
            n, id_bits=ctx.timing.id_bits, rng=make_rng(base + i)
        )
        res = Reader(QCDDetector(8), ctx.timing).run_inventory(
            pop.tags, FramedSlottedAloha(frame)
        )
        first = [r for r in res.trace if r.frame == 1]
        idle = sum(1 for r in first if r.n_responders == 0)
        single = sum(1 for r in first if r.n_responders == 1)
        firsts.append((idle, single, len(first) - idle - single))
    e0, e1, ec = expected_slot_counts(n, frame)
    return [
        check_relative(
            "first_frame_idle",
            statistics.mean(f[0] for f in firsts),
            e0,
            0.15,
        ),
        check_relative(
            "first_frame_single",
            statistics.mean(f[1] for f in firsts),
            e1,
            0.15,
        ),
        check_relative(
            "first_frame_collided",
            statistics.mean(f[2] for f in firsts),
            ec,
            0.20,
        ),
    ]


@oracle(
    "bt-slots-vs-theory",
    "sim-theory",
    "bt_fast slot totals vs the Lemma 2 exact recursion",
)
def _bt_slots_vs_theory(ctx: OracleContext) -> list[Check]:
    n = 96
    fast = ctx.kernel_rounds("bt", "qcd-16", n)
    return [
        check_relative(
            "mean_total_slots",
            _mean(fast, lambda s: s.true_counts.total),
            expected_bt_slots(n),
            0.08,
        ),
        check_relative(
            "mean_collided",
            _mean(fast, lambda s: s.true_counts.collided),
            expected_bt_collided(n),
            0.12,
        ),
        check_relative(
            "mean_idle",
            _mean(fast, lambda s: s.true_counts.idle),
            expected_bt_idle(n),
            0.20,
        ),
    ]


@oracle(
    "fsa-ei-vs-theory",
    "sim-theory",
    "measured FSA EI at F = n vs Table II's lower bounds (l = 4/8/16)",
)
def _fsa_ei_vs_theory(ctx: OracleContext) -> list[Check]:
    n = 256
    t_crc = _mean(
        ctx.kernel_rounds("fsa", "crc", n, n), lambda s: s.total_time
    )
    checks = []
    for strength in (4, 8, 16):
        t_qcd = _mean(
            ctx.kernel_rounds("fsa", f"qcd-{strength}", n, n),
            lambda s: s.total_time,
        )
        checks.append(
            check_lower_bound(
                f"ei_qcd{strength}",
                measured_ei(t_crc, t_qcd),
                fsa_ei_lower_bound(
                    strength, ctx.timing.id_bits, ctx.timing.crc_bits
                ),
                slack=0.02,
            )
        )
    return checks


@oracle(
    "bt-ei-vs-theory",
    "sim-theory",
    "measured BT EI vs Table III's averages (l = 4/8/16)",
)
def _bt_ei_vs_theory(ctx: OracleContext) -> list[Check]:
    n = 256
    t_crc = _mean(ctx.kernel_rounds("bt", "crc", n), lambda s: s.total_time)
    checks = []
    for strength in (4, 8, 16):
        t_qcd = _mean(
            ctx.kernel_rounds("bt", f"qcd-{strength}", n),
            lambda s: s.total_time,
        )
        checks.append(
            check_absolute(
                f"ei_qcd{strength}",
                measured_ei(t_crc, t_qcd),
                bt_ei_average(
                    strength, ctx.timing.id_bits, ctx.timing.crc_bits
                ),
                0.03,
            )
        )
    return checks


@oracle(
    "qcd-accuracy-vs-theory",
    "sim-theory",
    "fsa_fast low-strength accuracy vs the Section IV-B occupancy model",
)
def _qcd_accuracy_vs_theory(ctx: OracleContext) -> list[Check]:
    n, frame = 200, 128
    checks = []
    for strength, tol in ((2, 0.05), (4, 0.02)):
        fast = ctx.kernel_rounds("fsa", f"qcd-{strength}", n, frame)
        checks.append(
            check_absolute(
                f"accuracy_qcd{strength}",
                _mean(fast, lambda s: s.accuracy),
                expected_accuracy_fsa(n, frame, strength),
                tol,
            )
        )
    return checks


# ----------------------------------------------------------------------
# invariants


@oracle(
    "invariant-sweep",
    "invariant",
    "strict engine invariants over the protocol × detector × policy grid",
)
def _invariant_sweep(ctx: OracleContext) -> list[Check]:
    sizes = (0, 1, 2, 17)
    protocols: list[Callable[[], object]] = [
        lambda: FramedSlottedAloha(16),
        BinaryTree,
        QueryTree,
        lambda: DynamicFSA(initial_frame_size=8),
    ]
    detectors: list[Callable[[], object]] = [
        lambda: QCDDetector(8),
        lambda: QCDDetector(2),
        lambda: CRCCDDetector(id_bits=ctx.timing.id_bits),
        lambda: IdealDetector(ctx.timing.id_bits),
    ]
    base = ctx.seed * 1_000_003 + _stable_hash("invariant-sweep")
    configs = 0
    invariants.reset()
    with invariants.checking(strict=False):
        for p_i, proto in enumerate(protocols):
            for d_i, det in enumerate(detectors):
                for n in sizes:
                    pop = TagPopulation(
                        n,
                        id_bits=ctx.timing.id_bits,
                        rng=make_rng(base + 1000 * p_i + 100 * d_i + n),
                    )
                    Reader(det(), ctx.timing).run_inventory(
                        pop.tags, proto()
                    )
                    configs += 1
        # The "lost" policy exercises the lost-ID bookkeeping paths.
        for n in sizes:
            pop = TagPopulation(
                n, id_bits=ctx.timing.id_bits, rng=make_rng(base + 9000 + n)
            )
            Reader(
                QCDDetector(2), ctx.timing, policy="lost"
            ).run_inventory(pop.tags, FramedSlottedAloha(16))
            configs += 1
    violations = len(invariants.STATE.violations)
    invariants.reset()
    return [
        check_exact("violations", violations, 0),
        check_exact(
            "configs_run", configs, len(protocols) * len(detectors) * len(sizes) + len(sizes)
        ),
    ]
