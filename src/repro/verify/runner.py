"""The verification sweep driver behind the ``repro-verify`` CLI.

Executes registered oracle pairs (:mod:`repro.verify.oracles`) and
collects their verdicts into one machine-readable report.  Execution
reuses the PR-2 infrastructure end-to-end:

* kernel round batches go through
  :func:`repro.experiments.parallel.make_executor`, so ``--workers N``
  shards them over a process pool exactly like the experiment grid;
* finished oracle reports persist into a
  :class:`repro.experiments.cache.ResultCache` (the cache is
  payload-agnostic), keyed by a content hash of everything that
  determines the verdict -- oracle name, rounds, seed, timing model and
  the verify schema version -- so repeated CI runs skip green oracles
  whose inputs have not changed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.core.timing import TimingModel
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import make_executor
from repro.verify.oracles import (
    Oracle,
    OracleContext,
    OracleReport,
    all_oracles,
    get,
)

__all__ = [
    "VERIFY_SCHEMA_VERSION",
    "QUICK_ROUNDS",
    "FULL_ROUNDS",
    "VerificationReport",
    "VerificationRunner",
]

#: Bump when oracle definitions or tolerances change meaning; every
#: cached verdict then misses and recomputes.
VERIFY_SCHEMA_VERSION = 1

QUICK_ROUNDS = 8
FULL_ROUNDS = 24


@dataclass(frozen=True)
class VerificationReport:
    """All oracle verdicts of one sweep."""

    reports: tuple[OracleReport, ...]
    rounds: int
    seed: int
    quick: bool

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.reports)

    @property
    def failures(self) -> list[OracleReport]:
        return [r for r in self.reports if not r.passed]

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": VERIFY_SCHEMA_VERSION,
            "passed": self.passed,
            "rounds": self.rounds,
            "seed": self.seed,
            "quick": self.quick,
            "oracles": [r.to_dict() for r in self.reports],
        }


class VerificationRunner:
    """Runs oracle pairs with shared execution knobs.

    Parameters
    ----------
    rounds:
        Monte-Carlo rounds per oracle batch (default:
        :data:`FULL_ROUNDS`, or :data:`QUICK_ROUNDS` with ``quick``).
    seed:
        Root seed; oracles derive deterministic substreams from it.
    quick:
        Smaller round counts for CI smoke runs.  Same oracles, same
        tolerances -- the tolerances are sized to hold at quick depth.
    workers:
        Processes to shard kernel batches across (1 = in-process).
    cache_dir:
        Directory for cached verdicts; ``None`` disables persistence.
    timing:
        Airtime model (paper constants by default).
    executor:
        Pluggable executor override (anything with ``run``/``close``/
        ``workers``), as in :class:`~repro.experiments.runner.ExperimentSuite`.
    """

    def __init__(
        self,
        rounds: int | None = None,
        seed: int = 2010,
        quick: bool = False,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        timing: TimingModel | None = None,
        executor=None,
    ) -> None:
        if rounds is None:
            rounds = QUICK_ROUNDS if quick else FULL_ROUNDS
        if rounds < 2:
            raise ValueError("rounds must be >= 2 (two-sample statistics)")
        self.rounds = rounds
        self.seed = seed
        self.quick = quick
        self.timing = timing if timing is not None else TimingModel()
        self._executor = (
            executor if executor is not None else make_executor(workers)
        )
        self.workers = self._executor.workers
        self._disk = ResultCache(cache_dir) if cache_dir is not None else None

    # ------------------------------------------------------------------

    def close(self) -> None:
        self._executor.close()

    def __enter__(self) -> "VerificationRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def context(self) -> OracleContext:
        return OracleContext(
            rounds=self.rounds,
            seed=self.seed,
            timing=self.timing,
            executor=self._executor,
            quick=self.quick,
        )

    def _cache_params(self, oracle: Oracle) -> dict[str, object]:
        return {
            "verify_schema": VERIFY_SCHEMA_VERSION,
            "oracle": oracle.name,
            "rounds": self.rounds,
            "seed": self.seed,
            "tau": self.timing.tau,
            "id_bits": self.timing.id_bits,
            "crc_bits": self.timing.crc_bits,
        }

    def _load_cached(self, params: Mapping[str, object]) -> OracleReport | None:
        if self._disk is None:
            return None
        doc = self._disk.load(params)
        if doc is None:
            return None
        try:
            return OracleReport.from_dict(doc)
        except (KeyError, TypeError, ValueError):
            return None  # stale/foreign entry: recompute

    def run_oracle(self, oracle: Oracle) -> OracleReport:
        params = self._cache_params(oracle)
        report = self._load_cached(params)
        if report is None:
            report = oracle.run(self.context())
            if self._disk is not None:
                self._disk.store(params, report.to_dict())
        return report

    def run(self, names: Sequence[str] | None = None) -> VerificationReport:
        """Run the named oracles (default: the whole registry, in
        registration order)."""
        oracles = (
            [get(n) for n in names] if names else all_oracles()
        )
        return VerificationReport(
            reports=tuple(self.run_oracle(o) for o in oracles),
            rounds=self.rounds,
            seed=self.seed,
            quick=self.quick,
        )


def _fmt(value: float) -> str:
    if math.isnan(value):
        return "nan"
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.4g}"


def report_rows(report: VerificationReport) -> list[dict[str, str]]:
    """Flatten a report into renderable rows (one per check)."""
    rows = []
    for orc in report.reports:
        for check in orc.checks:
            rows.append(
                {
                    "oracle": orc.oracle,
                    "kind": orc.kind,
                    "check": check.name,
                    "statistic": check.statistic,
                    "observed": _fmt(check.observed),
                    "reference": _fmt(check.reference),
                    "tolerance": _fmt(check.tolerance),
                    "verdict": "ok" if check.passed else "FAIL",
                }
            )
    return rows
