"""Differential-oracle verification and engine invariants.

The reproduction simulates the same stochastic process three times over
-- the exact bit-level :class:`~repro.sim.reader.Reader`, the vectorized
kernels of :mod:`repro.sim.fast` and the closed-form theory in
:mod:`repro.analysis` -- and this package is the standing proof that they
agree:

* :mod:`repro.verify.comparisons` -- the comparison statistics (exact
  equality, relative/absolute error bands, two-sample KS and mean tests);
* :mod:`repro.verify.oracles` -- the registry of oracle pairs, each
  binding two backends to a statistic and a tolerance;
* :mod:`repro.verify.runner` -- the sweep driver (``repro-verify`` CLI)
  that executes oracles over the config grid, reusing the parallel
  executor and on-disk result cache of :mod:`repro.experiments`;
* :mod:`repro.verify.invariants` -- debug-mode invariant checks hooked
  into the reader/engine slot loops, off by default and near-zero-cost
  when off;
* :mod:`repro.verify.strategies` -- the shared Hypothesis strategy
  library the property suites draw from.

Submodules are loaded lazily: ``strategies`` needs Hypothesis (a dev-only
dependency), and ``oracles``/``runner`` import :mod:`repro.sim`, which
itself imports :mod:`repro.verify.invariants` at load -- eager imports
here would either drag in dev dependencies or create an import cycle.
"""

from __future__ import annotations

import importlib

_SUBMODULES = (
    "cli",
    "comparisons",
    "invariants",
    "oracles",
    "runner",
    "strategies",
)

__all__ = list(_SUBMODULES)


def __getattr__(name: str):
    if name in _SUBMODULES:
        return importlib.import_module(f"repro.verify.{name}")
    raise AttributeError(f"module 'repro.verify' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_SUBMODULES))
