"""Comparison statistics the differential oracles declare.

Each helper condenses one backend-vs-backend comparison into a
:class:`Check`: a named, machine-readable verdict carrying the observed
value, the reference it was held against, the tolerance and the outcome.
The statistics cover the three regimes the oracles need:

* **exact** -- fields that must match bit-for-bit (deterministic
  re-derivations, invariant-violation counts);
* **rel / abs / lower_bound** -- Monte-Carlo means against closed-form
  theory or another backend's means, within an error band;
* **ks / mean_z** -- distributional equivalence of two round batches
  that simulate the same process with different random streams.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Sequence

from scipy.stats import ks_2samp

__all__ = [
    "Check",
    "check_exact",
    "check_relative",
    "check_absolute",
    "check_lower_bound",
    "check_ks",
    "check_mean_z",
]


@dataclass(frozen=True)
class Check:
    """One adjudicated comparison.

    ``observed`` / ``reference`` hold the two sides of the comparison
    (for ``ks`` the p-value and the alpha level; for ``mean_z`` the z
    statistic and 0).  ``tolerance`` is the band the oracle declared.
    """

    name: str
    statistic: str
    observed: float
    reference: float
    tolerance: float
    passed: bool

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "Check":
        # JSON round-trips NaN as null (RFC-8259 clean, like the result
        # cache); restore it here.
        def num(v: object) -> float:
            return math.nan if v is None else float(v)  # type: ignore[arg-type]

        return cls(
            name=str(doc["name"]),
            statistic=str(doc["statistic"]),
            observed=num(doc["observed"]),
            reference=num(doc["reference"]),
            tolerance=num(doc["tolerance"]),
            passed=bool(doc["passed"]),
        )


def check_exact(name: str, observed: float, reference: float) -> Check:
    """Bit-for-bit field equality."""
    obs, ref = float(observed), float(reference)
    return Check(name, "exact", obs, ref, 0.0, obs == ref)


def check_relative(
    name: str, observed: float, reference: float, tolerance: float
) -> Check:
    """``|observed - reference| / |reference|`` within ``tolerance``.

    A zero reference degenerates to an absolute comparison against the
    tolerance itself (so "expected zero" still admits MC jitter).
    """
    obs, ref = float(observed), float(reference)
    scale = abs(ref)
    err = abs(obs - ref) / scale if scale > 0 else abs(obs - ref)
    return Check(name, "rel", obs, ref, tolerance, err <= tolerance)


def check_absolute(
    name: str, observed: float, reference: float, tolerance: float
) -> Check:
    obs, ref = float(observed), float(reference)
    return Check(name, "abs", obs, ref, tolerance, abs(obs - ref) <= tolerance)


def check_lower_bound(
    name: str, observed: float, bound: float, slack: float = 0.0
) -> Check:
    """``observed >= bound - slack`` (theory *lower* bounds: the measured
    value may legitimately exceed the bound by any amount)."""
    obs, ref = float(observed), float(bound)
    return Check(name, "lower_bound", obs, ref, slack, obs >= ref - slack)


def check_ks(
    name: str,
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    alpha: float = 1e-3,
) -> Check:
    """Two-sample Kolmogorov-Smirnov test; passes unless the samples are
    distinguishable at level ``alpha``.

    ``alpha`` is deliberately loose (the oracles run fixed seeds, so a
    failure is reproducible, not flaky): the test is meant to catch a
    backend drifting to a *different* distribution, not to certify
    equality.
    """
    result = ks_2samp(list(sample_a), list(sample_b))
    p = float(result.pvalue)
    return Check(name, "ks", p, alpha, alpha, p >= alpha)


def check_mean_z(
    name: str,
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    z_max: float = 4.0,
) -> Check:
    """Welch two-sample z statistic on the means, bounded by ``z_max``."""
    a, b = [float(v) for v in sample_a], [float(v) for v in sample_b]
    if not a or not b:
        raise ValueError("both samples must be non-empty")
    mean_a, mean_b = sum(a) / len(a), sum(b) / len(b)
    var_a = sum((v - mean_a) ** 2 for v in a) / max(len(a) - 1, 1)
    var_b = sum((v - mean_b) ** 2 for v in b) / max(len(b) - 1, 1)
    se = math.sqrt(var_a / len(a) + var_b / len(b))
    if se == 0.0:
        z = 0.0 if mean_a == mean_b else math.inf
    else:
        z = abs(mean_a - mean_b) / se
    return Check(name, "mean_z", z, 0.0, z_max, z <= z_max)
