"""Shared Hypothesis strategies for the property suites.

One library instead of per-file copies: the bit-algebra, codec, detector
and protocol property tests all draw their inputs from here, so the
input distributions (and their documented edge cases -- n = 0/1/2,
frame size 1, zero-length vectors) stay consistent across suites.

This module imports :mod:`hypothesis`, which is a dev-only dependency;
it is therefore *not* imported by the runtime verification code
(:mod:`repro.verify` loads its submodules lazily).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.bits.bitvec import BitVector
from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.tags.population import TagPopulation

__all__ = [
    "bitvectors",
    "sized_bitvectors",
    "data_vectors",
    "preamble_values",
    "distinct_preamble_values",
    "tag_ids",
    "distinct_tag_ids",
    "seeds",
    "populations",
    "adequate_frame",
    "frame_slacks",
    "detectors",
    "timing_models",
]

#: Strength values the paper's evaluation sweeps (plus the miss-prone 2).
STRENGTHS = (2, 4, 8, 16)


def bitvectors(max_length: int = 64, min_length: int = 0) -> st.SearchStrategy:
    """Arbitrary :class:`~repro.bits.bitvec.BitVector`\\ s, length included
    (``min_length=0`` admits the empty vector)."""
    return st.integers(min_length, max_length).flatmap(
        lambda n: st.integers(0, (1 << n) - 1 if n else 0).map(
            lambda v: BitVector(v, n)
        )
    )


def sized_bitvectors(length: int, min_value: int = 0) -> st.SearchStrategy:
    """BitVectors of one fixed ``length`` (e.g. slot payloads)."""
    if length < 0:
        raise ValueError("length must be >= 0")
    upper = (1 << length) - 1 if length else 0
    return st.integers(min_value, upper).map(lambda v: BitVector(v, length))


def data_vectors(max_bits: int = 24) -> st.SearchStrategy:
    """Non-empty BitVectors (line-code payloads: codecs need >= 1 bit)."""
    return st.integers(1, max_bits).flatmap(
        lambda n: st.integers(0, (1 << n) - 1).map(lambda v: BitVector(v, n))
    )


def preamble_values(strength: int = 8) -> st.SearchStrategy:
    """Valid QCD random integers: strictly positive l-bit values (paper
    Section IV-A -- zero would impersonate an idle slot)."""
    if strength < 1:
        raise ValueError("strength must be >= 1")
    return st.integers(1, (1 << strength) - 1)


def distinct_preamble_values(
    strength: int = 8, min_size: int = 2, max_size: int = 8
) -> st.SearchStrategy:
    """Lists of pairwise-distinct preamble integers (the Theorem 1
    always-detected case)."""
    return st.lists(
        preamble_values(strength),
        min_size=min_size,
        max_size=max_size,
        unique=True,
    )


def tag_ids(id_bits: int = 64) -> st.SearchStrategy:
    """Tag IDs over the full ``id_bits`` space."""
    if id_bits < 1:
        raise ValueError("id_bits must be >= 1")
    return st.integers(0, (1 << id_bits) - 1)


def distinct_tag_ids(
    id_bits: int = 64, min_size: int = 2, max_size: int = 5
) -> st.SearchStrategy:
    return st.lists(
        tag_ids(id_bits), min_size=min_size, max_size=max_size, unique=True
    )


def seeds(max_seed: int = 10_000) -> st.SearchStrategy:
    """Root seeds for reproducible population / stream construction."""
    return st.integers(0, max_seed)


@st.composite
def populations(
    draw, max_size: int = 40, id_bits: int = 16, min_size: int = 0
) -> TagPopulation:
    """Reproducible random tag populations, edges (n = 0, 1, 2) included."""
    n = draw(st.integers(min_size, max_size))
    seed = draw(seeds())
    return TagPopulation(n, id_bits=id_bits, rng=make_rng(seed))


def adequate_frame(n_tags: int, slack: int = 0) -> int:
    """A frame size fixed-frame FSA terminates with: ``n/F <= 2`` with an
    absolute floor of 2 slots.  Fixed-frame FSA with n >> F·ln(n)
    essentially never produces a single slot (F = 1 with two tags
    literally never does) -- a real protocol pathology the generators
    must stay clear of, not a bug (pinned by
    ``test_fsa_frame_of_one_deadlocks``)."""
    if n_tags < 0 or slack < 0:
        raise ValueError("need n_tags >= 0 and slack >= 0")
    return n_tags // 2 + 2 + slack


def frame_slacks(max_slack: int = 40) -> st.SearchStrategy:
    """Extra frame headroom to sweep alongside :func:`adequate_frame`."""
    return st.integers(0, max_slack)


def detectors(
    strengths: tuple[int, ...] = STRENGTHS,
    id_bits: int = 64,
    include_crc: bool = True,
    include_ideal: bool = False,
) -> st.SearchStrategy:
    """Fresh detector instances (stateful instrumentation counters, so a
    new object per example)."""
    options = [st.sampled_from(strengths).map(QCDDetector)]
    if include_crc:
        options.append(st.just(0).map(lambda _: CRCCDDetector(id_bits=id_bits)))
    if include_ideal:
        options.append(st.just(0).map(lambda _: IdealDetector(id_bits)))
    return st.one_of(options)


def timing_models() -> st.SearchStrategy:
    """Timing models around the paper's constants (τ = 1, 64-bit IDs,
    CRC-32), plus scaled variants."""
    return st.builds(
        TimingModel,
        tau=st.sampled_from((0.5, 1.0, 2.0)),
        id_bits=st.sampled_from((16, 64, 96)),
        crc_bits=st.sampled_from((16, 32)),
    )
