"""Shared Hypothesis strategies for the property suites.

One library instead of per-file copies: the bit-algebra, codec, detector
and protocol property tests all draw their inputs from here, so the
input distributions (and their documented edge cases -- n = 0/1/2,
frame size 1, zero-length vectors) stay consistent across suites.

This module imports :mod:`hypothesis`, which is a dev-only dependency;
it is therefore *not* imported by the runtime verification code
(:mod:`repro.verify` loads its submodules lazily).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.bits.bitvec import BitVector
from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.tags.population import TagPopulation

__all__ = [
    "bitvectors",
    "sized_bitvectors",
    "data_vectors",
    "preamble_values",
    "distinct_preamble_values",
    "tag_ids",
    "distinct_tag_ids",
    "seeds",
    "populations",
    "population_factories",
    "adequate_frame",
    "frame_slacks",
    "detectors",
    "timing_models",
    "simulate_requests",
    "malformed_simulate_requests",
    "gateway_frames",
    "binary_frames",
    "malformed_binary_frames",
]

#: Strength values the paper's evaluation sweeps (plus the miss-prone 2).
STRENGTHS = (2, 4, 8, 16)


def bitvectors(max_length: int = 64, min_length: int = 0) -> st.SearchStrategy:
    """Arbitrary :class:`~repro.bits.bitvec.BitVector`\\ s, length included
    (``min_length=0`` admits the empty vector)."""
    return st.integers(min_length, max_length).flatmap(
        lambda n: st.integers(0, (1 << n) - 1 if n else 0).map(
            lambda v: BitVector(v, n)
        )
    )


def sized_bitvectors(length: int, min_value: int = 0) -> st.SearchStrategy:
    """BitVectors of one fixed ``length`` (e.g. slot payloads)."""
    if length < 0:
        raise ValueError("length must be >= 0")
    upper = (1 << length) - 1 if length else 0
    return st.integers(min_value, upper).map(lambda v: BitVector(v, length))


def data_vectors(max_bits: int = 24) -> st.SearchStrategy:
    """Non-empty BitVectors (line-code payloads: codecs need >= 1 bit)."""
    return st.integers(1, max_bits).flatmap(
        lambda n: st.integers(0, (1 << n) - 1).map(lambda v: BitVector(v, n))
    )


def preamble_values(strength: int = 8) -> st.SearchStrategy:
    """Valid QCD random integers: strictly positive l-bit values (paper
    Section IV-A -- zero would impersonate an idle slot)."""
    if strength < 1:
        raise ValueError("strength must be >= 1")
    return st.integers(1, (1 << strength) - 1)


def distinct_preamble_values(
    strength: int = 8, min_size: int = 2, max_size: int = 8
) -> st.SearchStrategy:
    """Lists of pairwise-distinct preamble integers (the Theorem 1
    always-detected case)."""
    return st.lists(
        preamble_values(strength),
        min_size=min_size,
        max_size=max_size,
        unique=True,
    )


def tag_ids(id_bits: int = 64) -> st.SearchStrategy:
    """Tag IDs over the full ``id_bits`` space."""
    if id_bits < 1:
        raise ValueError("id_bits must be >= 1")
    return st.integers(0, (1 << id_bits) - 1)


def distinct_tag_ids(
    id_bits: int = 64, min_size: int = 2, max_size: int = 5
) -> st.SearchStrategy:
    return st.lists(
        tag_ids(id_bits), min_size=min_size, max_size=max_size, unique=True
    )


def seeds(max_seed: int = 10_000) -> st.SearchStrategy:
    """Root seeds for reproducible population / stream construction."""
    return st.integers(0, max_seed)


@st.composite
def populations(
    draw, max_size: int = 40, id_bits: int = 16, min_size: int = 0
) -> TagPopulation:
    """Reproducible random tag populations, edges (n = 0, 1, 2) included."""
    n = draw(st.integers(min_size, max_size))
    seed = draw(seeds())
    return TagPopulation(n, id_bits=id_bits, rng=make_rng(seed))


@st.composite
def population_factories(
    draw, max_size: int = 40, id_bits: int = 16, min_size: int = 0
):
    """Zero-arg factories rebuilding one drawn population from scratch.

    Differential suites that replay the same inventory through several
    engine paths need a *fresh* copy per path -- an inventory mutates the
    tags (identified/lost flags) and advances their private RNG streams
    -- so they draw the population's parameters once and reconstruct it,
    bit-identically, per run.  Same draw space as :func:`populations`.
    """
    n = draw(st.integers(min_size, max_size))
    seed = draw(seeds())
    return lambda: TagPopulation(n, id_bits=id_bits, rng=make_rng(seed))


def adequate_frame(n_tags: int, slack: int = 0) -> int:
    """A frame size fixed-frame FSA terminates with: ``n/F <= 2`` with an
    absolute floor of 2 slots.  Fixed-frame FSA with n >> F·ln(n)
    essentially never produces a single slot (F = 1 with two tags
    literally never does) -- a real protocol pathology the generators
    must stay clear of, not a bug (pinned by
    ``test_fsa_frame_of_one_deadlocks``)."""
    if n_tags < 0 or slack < 0:
        raise ValueError("need n_tags >= 0 and slack >= 0")
    return n_tags // 2 + 2 + slack


def frame_slacks(max_slack: int = 40) -> st.SearchStrategy:
    """Extra frame headroom to sweep alongside :func:`adequate_frame`."""
    return st.integers(0, max_slack)


def detectors(
    strengths: tuple[int, ...] = STRENGTHS,
    id_bits: int = 64,
    include_crc: bool = True,
    include_ideal: bool = False,
) -> st.SearchStrategy:
    """Fresh detector instances (stateful instrumentation counters, so a
    new object per example)."""
    options = [st.sampled_from(strengths).map(QCDDetector)]
    if include_crc:
        options.append(st.just(0).map(lambda _: CRCCDDetector(id_bits=id_bits)))
    if include_ideal:
        options.append(st.just(0).map(lambda _: IdealDetector(id_bits)))
    return st.one_of(options)


def timing_models() -> st.SearchStrategy:
    """Timing models around the paper's constants (τ = 1, 64-bit IDs,
    CRC-32), plus scaled variants."""
    return st.builds(
        TimingModel,
        tau=st.sampled_from((0.5, 1.0, 2.0)),
        id_bits=st.sampled_from((16, 64, 96)),
        crc_bits=st.sampled_from((16, 32)),
    )


# ----------------------------------------------------------------------
# repro.serve wire documents


def _inline_case_docs() -> st.SearchStrategy:
    """Inline case objects whose names cannot collide with the paper's
    named cases (uniqueness is judged on the parsed SimulationCase)."""
    return st.builds(
        lambda n_tags, frame_size: {
            "name": f"inline-{n_tags}x{frame_size}",
            "n_tags": n_tags,
            "frame_size": frame_size,
        },
        n_tags=st.integers(0, 500),
        frame_size=st.integers(1, 500),
    )


def _case_axis() -> st.SearchStrategy:
    """Nonempty, duplicate-free ``cases`` axes mixing named and inline
    entries (an inline doc equal to a named case would parse to the same
    SimulationCase, so inline names are kept out of the named namespace)."""
    from repro.experiments.config import CASES

    named = st.lists(
        st.sampled_from(sorted(CASES)), min_size=0, max_size=4, unique=True
    )
    inline = st.lists(
        _inline_case_docs(),
        min_size=0,
        max_size=3,
        unique_by=lambda d: (d["n_tags"], d["frame_size"]),
    )
    return st.tuples(named, inline).map(
        lambda pair: list(pair[0]) + list(pair[1])
    ).filter(bool)


def _scheme_axis() -> st.SearchStrategy:
    schemes = st.one_of(
        st.just("crc"),
        st.integers(1, 64).map(lambda s: f"qcd-{s}"),
    )
    return st.lists(schemes, min_size=1, max_size=4, unique=True)


@st.composite
def simulate_requests(draw, max_points: int = 16) -> dict:
    """Valid ``POST /v1/simulate`` wire documents.

    Every draw satisfies :func:`repro.serve.protocol.parse_simulate_request`
    by construction: unique axis entries, cross product within
    ``max_points``, optional keys present or defaulted at random.
    """
    from repro.serve import protocol as proto

    cases = draw(_case_axis())
    protocols = draw(
        st.lists(
            st.sampled_from(proto.PROTOCOLS),
            min_size=1,
            max_size=len(proto.PROTOCOLS),
            unique=True,
        )
    )
    schemes = draw(_scheme_axis())
    # Shrink axes (never below one entry) until the grid fits.
    while len(cases) * len(protocols) * len(schemes) > max_points:
        longest = max((cases, protocols, schemes), key=len)
        longest.pop()
    doc: dict = {
        "version": proto.PROTOCOL_VERSION,
        "cases": cases,
        "protocols": protocols,
        "schemes": schemes,
    }
    if draw(st.booleans()):
        doc["rounds"] = draw(st.integers(1, proto.MAX_ROUNDS))
    if draw(st.booleans()):
        doc["seed"] = draw(st.integers(0, proto.MAX_SEED))
    if draw(st.booleans()):
        doc["mode"] = draw(st.sampled_from(proto.MODES))
    if draw(st.booleans()):
        doc["priority"] = draw(
            st.integers(proto.MIN_PRIORITY, proto.MAX_PRIORITY)
        )
    if draw(st.booleans()):
        doc["client"] = draw(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("L", "N"), max_codepoint=0x7E
                ),
                min_size=1,
                max_size=proto.MAX_CLIENT_LEN,
            )
        )
    return doc


#: One targeted corruption per malformed draw; the label names the rule
#: being violated so failures shrink to a readable counterexample.
_MUTATIONS: tuple[tuple[str, object], ...] = (
    ("unknown_key", lambda doc: {**doc, "bogus": 1}),
    ("missing_cases", lambda doc: {k: v for k, v in doc.items() if k != "cases"}),
    ("missing_version", lambda doc: {k: v for k, v in doc.items() if k != "version"}),
    ("future_version", lambda doc: {**doc, "version": 2}),
    ("string_version", lambda doc: {**doc, "version": "1"}),
    ("bool_version", lambda doc: {**doc, "version": True}),
    ("empty_cases", lambda doc: {**doc, "cases": []}),
    ("non_list_cases", lambda doc: {**doc, "cases": "I"}),
    ("unknown_case", lambda doc: {**doc, "cases": ["V"]}),
    (
        "case_extra_key",
        lambda doc: {
            **doc,
            "cases": [{"name": "x", "n_tags": 1, "frame_size": 1, "tau": 2}],
        },
    ),
    (
        "case_missing_key",
        lambda doc: {**doc, "cases": [{"name": "x", "n_tags": 1}]},
    ),
    (
        "case_bool_tags",
        lambda doc: {
            **doc,
            "cases": [{"name": "x", "n_tags": True, "frame_size": 1}],
        },
    ),
    ("duplicate_cases", lambda doc: {**doc, "cases": ["I", "I"]}),
    ("unknown_protocol", lambda doc: {**doc, "protocols": ["aloha"]}),
    ("duplicate_protocols", lambda doc: {**doc, "protocols": ["fsa", "fsa"]}),
    ("empty_schemes", lambda doc: {**doc, "schemes": []}),
    ("zero_strength", lambda doc: {**doc, "schemes": ["qcd-0"]}),
    ("huge_strength", lambda doc: {**doc, "schemes": ["qcd-65"]}),
    ("leading_zero_strength", lambda doc: {**doc, "schemes": ["qcd-08"]}),
    ("bare_qcd", lambda doc: {**doc, "schemes": ["qcd-"]}),
    ("uppercase_scheme", lambda doc: {**doc, "schemes": ["CRC"]}),
    ("duplicate_schemes", lambda doc: {**doc, "schemes": ["crc", "crc"]}),
    ("zero_rounds", lambda doc: {**doc, "rounds": 0}),
    ("bool_rounds", lambda doc: {**doc, "rounds": True}),
    ("string_rounds", lambda doc: {**doc, "rounds": "10"}),
    ("huge_rounds", lambda doc: {**doc, "rounds": 10_001}),
    ("negative_seed", lambda doc: {**doc, "seed": -1}),
    ("float_seed", lambda doc: {**doc, "seed": 1.5}),
    ("bad_mode", lambda doc: {**doc, "mode": "batch"}),
    ("priority_too_high", lambda doc: {**doc, "priority": 10}),
    ("priority_negative", lambda doc: {**doc, "priority": -1}),
    ("empty_client", lambda doc: {**doc, "client": ""}),
    ("long_client", lambda doc: {**doc, "client": "c" * 65}),
    ("unprintable_client", lambda doc: {**doc, "client": "a\nb"}),
    (
        "grid_too_large",
        lambda doc: {
            **doc,
            "cases": [
                {"name": f"g{i}", "n_tags": i, "frame_size": 1}
                for i in range(33)
            ],
            "protocols": ["fsa", "bt"],
            "schemes": ["crc"],
        },
    ),
    ("not_an_object", lambda doc: [doc]),
    ("null_body", lambda doc: None),
)


@st.composite
def malformed_simulate_requests(draw) -> tuple[str, object]:
    """``(rule, doc)`` pairs where ``doc`` violates exactly one protocol
    rule of an otherwise-valid simulate request.

    The contract under test: every draw must raise
    :class:`~repro.serve.protocol.ProtocolError` (a 4xx) -- never any
    other exception, and never parse.
    """
    base = draw(simulate_requests())
    rule, mutate = draw(st.sampled_from(_MUTATIONS))
    return rule, mutate(base)


# ----------------------------------------------------------------------
# repro.gateway binary wire frames


def _gateway_schemes() -> st.SearchStrategy:
    return st.one_of(
        st.just("crc"), st.integers(1, 64).map(lambda s: f"qcd-{s}")
    )


def _finite_or_inf_floats() -> st.SearchStrategy:
    # NaN != NaN would break round-trip equality assertions; every other
    # IEEE-754 double survives struct '>d' bit-exactly.
    return st.floats(allow_nan=False)


@st.composite
def gateway_frames(draw):
    """Arbitrary *valid* typed frames, every command type reachable.

    Field values cover the full wire range of each struct field (not
    just semantically sensible ones): a ``StartInventory`` with
    ``n_tags=0`` encodes fine and must be *refused* by the gateway's
    validation layer, not break the codec.
    """
    from repro.gateway import codec

    kind = draw(st.sampled_from([
        "get_capabilities", "capabilities", "start", "started", "stop",
        "stopped", "keepalive", "keepalive_ack", "report", "complete",
        "error",
    ]))
    u8 = st.integers(0, 0xFF)
    u16 = st.integers(0, 0xFFFF)
    u32 = st.integers(0, 0xFFFFFFFF)
    u64 = st.integers(0, (1 << 64) - 1)
    if kind == "get_capabilities":
        return codec.GetCapabilities()
    if kind == "capabilities":
        # Canonical (declaration-order) subsets: decode rebuilds the
        # tuples from bitmasks in PROTOCOL_CODES/DETECTOR_KINDS order.
        protocols = tuple(
            name
            for name in codec.PROTOCOL_CODES
            if draw(st.booleans())
        )
        detectors = tuple(
            name
            for name in codec.DETECTOR_KINDS
            if draw(st.booleans())
        )
        return codec.Capabilities(
            version=draw(u8),
            n_readers=draw(u8),
            max_tags=draw(u16),
            max_frame_size=draw(u16),
            protocols=protocols,
            detectors=detectors,
            max_qcd_strength=draw(u8),
        )
    if kind == "start":
        return codec.StartInventory(
            reader_id=draw(u8),
            protocol=draw(st.sampled_from(("fsa", "dfsa"))),
            scheme=draw(_gateway_schemes()),
            frame_size=draw(u16),
            n_tags=draw(u16),
            seed=draw(u64),
        )
    if kind == "started":
        return codec.InventoryStarted(reader_id=draw(u8), session=draw(u16))
    if kind == "stop":
        return codec.StopInventory(reader_id=draw(u8))
    if kind == "stopped":
        return codec.InventoryStopped(reader_id=draw(u8), session=draw(u16))
    if kind == "keepalive":
        return codec.Keepalive()
    if kind == "keepalive_ack":
        return codec.KeepaliveAck()
    if kind == "report":
        return codec.TagReport(
            reader_id=draw(u8),
            session=draw(u16),
            slot=draw(u32),
            frame=draw(u32),
            tag_id=draw(u64),
            airtime=draw(_finite_or_inf_floats()),
        )
    if kind == "complete":
        return codec.InventoryComplete(
            reader_id=draw(u8),
            session=draw(u16),
            identified=draw(u32),
            lost=draw(u32),
            slots=draw(u32),
            frames=draw(u32),
            airtime=draw(_finite_or_inf_floats()),
            stopped=draw(st.booleans()),
        )
    # Short messages only: a message the encoder would truncate at the
    # payload cap could tear a multi-byte codepoint and round-trip
    # inexactly (by design -- decode uses errors="replace").
    return codec.ErrorFrame(
        code=draw(st.sampled_from(sorted(codec.ERROR_CODES))),
        message=draw(st.text(max_size=64)),
    )


@st.composite
def binary_frames(draw) -> bytes:
    """Wire encodings of valid frames (header..CRC trailer)."""
    from repro.gateway import codec

    return codec.encode_frame(draw(gateway_frames()))


def _flip_bit(data: bytes, index: int, bit: int) -> bytes:
    out = bytearray(data)
    out[index] ^= 1 << bit
    return bytes(out)


def _with_crc(body: bytes) -> bytes:
    """Frame up an arbitrary body with a *correct* trailer, to reach
    decode stages past the CRC check (unknown command, bad payload)."""
    import struct

    from repro.gateway import codec

    return (
        bytes([codec.HEADER_BYTE])
        + body
        + struct.pack(">H", codec.crc16(body))
    )


@st.composite
def malformed_binary_frames(draw) -> tuple[str, bytes]:
    """``(rule, blob)`` pairs where ``blob`` is *not* one valid frame.

    The contract under test (``tests/gateway/test_codec_properties.py``):
    ``decode_frame`` raises :class:`~repro.gateway.codec.FrameError` --
    never anything else -- and a gateway fed the blob answers with a
    typed ERROR frame or a clean close, never a crash.
    """
    import struct

    from repro.gateway import codec

    good = draw(binary_frames())
    rule = draw(
        st.sampled_from((
            "truncated",
            "bad_crc",
            "corrupt_body",
            "bad_header",
            "oversized_len",
            "unknown_cmd",
            "wrong_payload_len",
            "bad_error_code",
            "garbage",
        ))
    )
    if rule == "truncated":
        cut = draw(st.integers(1, len(good) - 1))
        return rule, good[:cut]
    if rule == "bad_crc":
        index = len(good) - draw(st.integers(1, 2))
        return rule, _flip_bit(good, index, draw(st.integers(0, 7)))
    if rule == "corrupt_body":
        # Any body flip invalidates the trailer (CRC minimum distance),
        # except a flip inside LEN, which may instead tear the framing;
        # both are malformations.
        index = draw(st.integers(1, len(good) - 3))
        return rule, _flip_bit(good, index, draw(st.integers(0, 7)))
    if rule == "bad_header":
        first = draw(st.integers(0, 0xFF).filter(
            lambda b: b != codec.HEADER_BYTE
        ))
        return rule, bytes([first]) + good[1:]
    if rule == "oversized_len":
        length = draw(st.integers(codec.MAX_PAYLOAD + 1, 0xFFFF))
        return rule, good[:3] + struct.pack(">H", length) + good[5:]
    if rule == "unknown_cmd":
        cmd = draw(st.integers(0, 0xFF).filter(
            lambda c: c not in {0x01, 0x02, 0x03, 0x10, 0x12, 0x7F}
        ))
        body = bytes([cmd, draw(st.sampled_from((0x00, 0x80)))]) + good[3:-2]
        return rule, _with_crc(body)
    if rule == "wrong_payload_len":
        # KEEPALIVE with a nonempty payload: framing and CRC are fine,
        # the typed decoder must still refuse it.
        extra = draw(st.binary(min_size=1, max_size=8))
        body = struct.pack(">BBH", 0x10, 0x00, len(extra)) + extra
        return rule, _with_crc(body)
    if rule == "bad_error_code":
        code = draw(st.integers(0, 0xFF).filter(
            lambda c: c not in codec.ERROR_CODES.values()
        ))
        payload = bytes([code]) + draw(st.binary(max_size=8))
        body = struct.pack(">BBH", 0x7F, 0x80, len(payload)) + payload
        return rule, _with_crc(body)
    # Pure noise.  A non-0xAA first byte keeps single-shot decode_frame
    # deterministic; embedded 0xAA bytes still exercise the
    # reassembler's resync hunt.
    blob = draw(st.binary(min_size=1, max_size=64))
    first = draw(st.integers(0, 0xFF).filter(
        lambda b: b != codec.HEADER_BYTE
    ))
    return "garbage", bytes([first]) + blob
