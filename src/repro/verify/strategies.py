"""Shared Hypothesis strategies for the property suites.

One library instead of per-file copies: the bit-algebra, codec, detector
and protocol property tests all draw their inputs from here, so the
input distributions (and their documented edge cases -- n = 0/1/2,
frame size 1, zero-length vectors) stay consistent across suites.

This module imports :mod:`hypothesis`, which is a dev-only dependency;
it is therefore *not* imported by the runtime verification code
(:mod:`repro.verify` loads its submodules lazily).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.bits.bitvec import BitVector
from repro.bits.rng import make_rng
from repro.core.crc_cd import CRCCDDetector
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.tags.population import TagPopulation

__all__ = [
    "bitvectors",
    "sized_bitvectors",
    "data_vectors",
    "preamble_values",
    "distinct_preamble_values",
    "tag_ids",
    "distinct_tag_ids",
    "seeds",
    "populations",
    "population_factories",
    "adequate_frame",
    "frame_slacks",
    "detectors",
    "timing_models",
    "simulate_requests",
    "malformed_simulate_requests",
]

#: Strength values the paper's evaluation sweeps (plus the miss-prone 2).
STRENGTHS = (2, 4, 8, 16)


def bitvectors(max_length: int = 64, min_length: int = 0) -> st.SearchStrategy:
    """Arbitrary :class:`~repro.bits.bitvec.BitVector`\\ s, length included
    (``min_length=0`` admits the empty vector)."""
    return st.integers(min_length, max_length).flatmap(
        lambda n: st.integers(0, (1 << n) - 1 if n else 0).map(
            lambda v: BitVector(v, n)
        )
    )


def sized_bitvectors(length: int, min_value: int = 0) -> st.SearchStrategy:
    """BitVectors of one fixed ``length`` (e.g. slot payloads)."""
    if length < 0:
        raise ValueError("length must be >= 0")
    upper = (1 << length) - 1 if length else 0
    return st.integers(min_value, upper).map(lambda v: BitVector(v, length))


def data_vectors(max_bits: int = 24) -> st.SearchStrategy:
    """Non-empty BitVectors (line-code payloads: codecs need >= 1 bit)."""
    return st.integers(1, max_bits).flatmap(
        lambda n: st.integers(0, (1 << n) - 1).map(lambda v: BitVector(v, n))
    )


def preamble_values(strength: int = 8) -> st.SearchStrategy:
    """Valid QCD random integers: strictly positive l-bit values (paper
    Section IV-A -- zero would impersonate an idle slot)."""
    if strength < 1:
        raise ValueError("strength must be >= 1")
    return st.integers(1, (1 << strength) - 1)


def distinct_preamble_values(
    strength: int = 8, min_size: int = 2, max_size: int = 8
) -> st.SearchStrategy:
    """Lists of pairwise-distinct preamble integers (the Theorem 1
    always-detected case)."""
    return st.lists(
        preamble_values(strength),
        min_size=min_size,
        max_size=max_size,
        unique=True,
    )


def tag_ids(id_bits: int = 64) -> st.SearchStrategy:
    """Tag IDs over the full ``id_bits`` space."""
    if id_bits < 1:
        raise ValueError("id_bits must be >= 1")
    return st.integers(0, (1 << id_bits) - 1)


def distinct_tag_ids(
    id_bits: int = 64, min_size: int = 2, max_size: int = 5
) -> st.SearchStrategy:
    return st.lists(
        tag_ids(id_bits), min_size=min_size, max_size=max_size, unique=True
    )


def seeds(max_seed: int = 10_000) -> st.SearchStrategy:
    """Root seeds for reproducible population / stream construction."""
    return st.integers(0, max_seed)


@st.composite
def populations(
    draw, max_size: int = 40, id_bits: int = 16, min_size: int = 0
) -> TagPopulation:
    """Reproducible random tag populations, edges (n = 0, 1, 2) included."""
    n = draw(st.integers(min_size, max_size))
    seed = draw(seeds())
    return TagPopulation(n, id_bits=id_bits, rng=make_rng(seed))


@st.composite
def population_factories(
    draw, max_size: int = 40, id_bits: int = 16, min_size: int = 0
):
    """Zero-arg factories rebuilding one drawn population from scratch.

    Differential suites that replay the same inventory through several
    engine paths need a *fresh* copy per path -- an inventory mutates the
    tags (identified/lost flags) and advances their private RNG streams
    -- so they draw the population's parameters once and reconstruct it,
    bit-identically, per run.  Same draw space as :func:`populations`.
    """
    n = draw(st.integers(min_size, max_size))
    seed = draw(seeds())
    return lambda: TagPopulation(n, id_bits=id_bits, rng=make_rng(seed))


def adequate_frame(n_tags: int, slack: int = 0) -> int:
    """A frame size fixed-frame FSA terminates with: ``n/F <= 2`` with an
    absolute floor of 2 slots.  Fixed-frame FSA with n >> F·ln(n)
    essentially never produces a single slot (F = 1 with two tags
    literally never does) -- a real protocol pathology the generators
    must stay clear of, not a bug (pinned by
    ``test_fsa_frame_of_one_deadlocks``)."""
    if n_tags < 0 or slack < 0:
        raise ValueError("need n_tags >= 0 and slack >= 0")
    return n_tags // 2 + 2 + slack


def frame_slacks(max_slack: int = 40) -> st.SearchStrategy:
    """Extra frame headroom to sweep alongside :func:`adequate_frame`."""
    return st.integers(0, max_slack)


def detectors(
    strengths: tuple[int, ...] = STRENGTHS,
    id_bits: int = 64,
    include_crc: bool = True,
    include_ideal: bool = False,
) -> st.SearchStrategy:
    """Fresh detector instances (stateful instrumentation counters, so a
    new object per example)."""
    options = [st.sampled_from(strengths).map(QCDDetector)]
    if include_crc:
        options.append(st.just(0).map(lambda _: CRCCDDetector(id_bits=id_bits)))
    if include_ideal:
        options.append(st.just(0).map(lambda _: IdealDetector(id_bits)))
    return st.one_of(options)


def timing_models() -> st.SearchStrategy:
    """Timing models around the paper's constants (τ = 1, 64-bit IDs,
    CRC-32), plus scaled variants."""
    return st.builds(
        TimingModel,
        tau=st.sampled_from((0.5, 1.0, 2.0)),
        id_bits=st.sampled_from((16, 64, 96)),
        crc_bits=st.sampled_from((16, 32)),
    )


# ----------------------------------------------------------------------
# repro.serve wire documents


def _inline_case_docs() -> st.SearchStrategy:
    """Inline case objects whose names cannot collide with the paper's
    named cases (uniqueness is judged on the parsed SimulationCase)."""
    return st.builds(
        lambda n_tags, frame_size: {
            "name": f"inline-{n_tags}x{frame_size}",
            "n_tags": n_tags,
            "frame_size": frame_size,
        },
        n_tags=st.integers(0, 500),
        frame_size=st.integers(1, 500),
    )


def _case_axis() -> st.SearchStrategy:
    """Nonempty, duplicate-free ``cases`` axes mixing named and inline
    entries (an inline doc equal to a named case would parse to the same
    SimulationCase, so inline names are kept out of the named namespace)."""
    from repro.experiments.config import CASES

    named = st.lists(
        st.sampled_from(sorted(CASES)), min_size=0, max_size=4, unique=True
    )
    inline = st.lists(
        _inline_case_docs(),
        min_size=0,
        max_size=3,
        unique_by=lambda d: (d["n_tags"], d["frame_size"]),
    )
    return st.tuples(named, inline).map(
        lambda pair: list(pair[0]) + list(pair[1])
    ).filter(bool)


def _scheme_axis() -> st.SearchStrategy:
    schemes = st.one_of(
        st.just("crc"),
        st.integers(1, 64).map(lambda s: f"qcd-{s}"),
    )
    return st.lists(schemes, min_size=1, max_size=4, unique=True)


@st.composite
def simulate_requests(draw, max_points: int = 16) -> dict:
    """Valid ``POST /v1/simulate`` wire documents.

    Every draw satisfies :func:`repro.serve.protocol.parse_simulate_request`
    by construction: unique axis entries, cross product within
    ``max_points``, optional keys present or defaulted at random.
    """
    from repro.serve import protocol as proto

    cases = draw(_case_axis())
    protocols = draw(
        st.lists(
            st.sampled_from(proto.PROTOCOLS),
            min_size=1,
            max_size=len(proto.PROTOCOLS),
            unique=True,
        )
    )
    schemes = draw(_scheme_axis())
    # Shrink axes (never below one entry) until the grid fits.
    while len(cases) * len(protocols) * len(schemes) > max_points:
        longest = max((cases, protocols, schemes), key=len)
        longest.pop()
    doc: dict = {
        "version": proto.PROTOCOL_VERSION,
        "cases": cases,
        "protocols": protocols,
        "schemes": schemes,
    }
    if draw(st.booleans()):
        doc["rounds"] = draw(st.integers(1, proto.MAX_ROUNDS))
    if draw(st.booleans()):
        doc["seed"] = draw(st.integers(0, proto.MAX_SEED))
    if draw(st.booleans()):
        doc["mode"] = draw(st.sampled_from(proto.MODES))
    if draw(st.booleans()):
        doc["priority"] = draw(
            st.integers(proto.MIN_PRIORITY, proto.MAX_PRIORITY)
        )
    if draw(st.booleans()):
        doc["client"] = draw(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("L", "N"), max_codepoint=0x7E
                ),
                min_size=1,
                max_size=proto.MAX_CLIENT_LEN,
            )
        )
    return doc


#: One targeted corruption per malformed draw; the label names the rule
#: being violated so failures shrink to a readable counterexample.
_MUTATIONS: tuple[tuple[str, object], ...] = (
    ("unknown_key", lambda doc: {**doc, "bogus": 1}),
    ("missing_cases", lambda doc: {k: v for k, v in doc.items() if k != "cases"}),
    ("missing_version", lambda doc: {k: v for k, v in doc.items() if k != "version"}),
    ("future_version", lambda doc: {**doc, "version": 2}),
    ("string_version", lambda doc: {**doc, "version": "1"}),
    ("bool_version", lambda doc: {**doc, "version": True}),
    ("empty_cases", lambda doc: {**doc, "cases": []}),
    ("non_list_cases", lambda doc: {**doc, "cases": "I"}),
    ("unknown_case", lambda doc: {**doc, "cases": ["V"]}),
    (
        "case_extra_key",
        lambda doc: {
            **doc,
            "cases": [{"name": "x", "n_tags": 1, "frame_size": 1, "tau": 2}],
        },
    ),
    (
        "case_missing_key",
        lambda doc: {**doc, "cases": [{"name": "x", "n_tags": 1}]},
    ),
    (
        "case_bool_tags",
        lambda doc: {
            **doc,
            "cases": [{"name": "x", "n_tags": True, "frame_size": 1}],
        },
    ),
    ("duplicate_cases", lambda doc: {**doc, "cases": ["I", "I"]}),
    ("unknown_protocol", lambda doc: {**doc, "protocols": ["aloha"]}),
    ("duplicate_protocols", lambda doc: {**doc, "protocols": ["fsa", "fsa"]}),
    ("empty_schemes", lambda doc: {**doc, "schemes": []}),
    ("zero_strength", lambda doc: {**doc, "schemes": ["qcd-0"]}),
    ("huge_strength", lambda doc: {**doc, "schemes": ["qcd-65"]}),
    ("leading_zero_strength", lambda doc: {**doc, "schemes": ["qcd-08"]}),
    ("bare_qcd", lambda doc: {**doc, "schemes": ["qcd-"]}),
    ("uppercase_scheme", lambda doc: {**doc, "schemes": ["CRC"]}),
    ("duplicate_schemes", lambda doc: {**doc, "schemes": ["crc", "crc"]}),
    ("zero_rounds", lambda doc: {**doc, "rounds": 0}),
    ("bool_rounds", lambda doc: {**doc, "rounds": True}),
    ("string_rounds", lambda doc: {**doc, "rounds": "10"}),
    ("huge_rounds", lambda doc: {**doc, "rounds": 10_001}),
    ("negative_seed", lambda doc: {**doc, "seed": -1}),
    ("float_seed", lambda doc: {**doc, "seed": 1.5}),
    ("bad_mode", lambda doc: {**doc, "mode": "batch"}),
    ("priority_too_high", lambda doc: {**doc, "priority": 10}),
    ("priority_negative", lambda doc: {**doc, "priority": -1}),
    ("empty_client", lambda doc: {**doc, "client": ""}),
    ("long_client", lambda doc: {**doc, "client": "c" * 65}),
    ("unprintable_client", lambda doc: {**doc, "client": "a\nb"}),
    (
        "grid_too_large",
        lambda doc: {
            **doc,
            "cases": [
                {"name": f"g{i}", "n_tags": i, "frame_size": 1}
                for i in range(33)
            ],
            "protocols": ["fsa", "bt"],
            "schemes": ["crc"],
        },
    ),
    ("not_an_object", lambda doc: [doc]),
    ("null_body", lambda doc: None),
)


@st.composite
def malformed_simulate_requests(draw) -> tuple[str, object]:
    """``(rule, doc)`` pairs where ``doc`` violates exactly one protocol
    rule of an otherwise-valid simulate request.

    The contract under test: every draw must raise
    :class:`~repro.serve.protocol.ProtocolError` (a 4xx) -- never any
    other exception, and never parse.
    """
    base = draw(simulate_requests())
    rule, mutate = draw(st.sampled_from(_MUTATIONS))
    return rule, mutate(base)
