"""Observability for the simulation stack: metrics, tracing, profiling.

The post-hoc analysis layer (:mod:`repro.sim.metrics`) is pure over slot
traces -- nothing is visible until a run returns.  This package makes a
running experiment observable *live*, with zero third-party dependencies
and near-zero cost when disabled (the default):

* :mod:`repro.obs.registry`   -- counters / gauges / fixed-bucket
  histograms, exportable as Prometheus text and JSON;
* :mod:`repro.obs.tracing`    -- inventory -> frame -> slot span/event
  records to pluggable sinks (ring buffer, JSONL file, null);
* :mod:`repro.obs.profiling`  -- wall-time histograms around the hot
  kernels and the exact reader's inventory loop;
* :mod:`repro.obs.instruments`-- the canonical metric names and the
  helpers the instrumented modules share.

Quick start::

    from repro import obs

    obs.enable(sink=obs.RingBufferSink())
    ... run any reader / kernel / suite ...
    print(obs.STATE.registry.to_prometheus())
    obs.disable()

or from the CLI: ``repro-experiments table7 --metrics-out metrics.json``
and ``repro-experiments obs-report``.

Overhead contract: with observability disabled, instrumented hot paths
pay one attribute load and branch (per slot) or one no-op context manager
(per kernel call); ``benchmarks/test_ablation_observability.py`` holds
this under 5 % against an uninstrumented replica of the slot loop.
"""

from __future__ import annotations

from typing import Mapping

from repro.obs.context import (
    bound_context,
    current_request_id,
    current_tracer,
    new_request_id,
)
from repro.obs.instruments import SLOTS
from repro.obs.profiling import PROFILE_METRIC, profile, profiled
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.state import (
    STATE,
    ObsState,
    disable,
    enable,
    is_enabled,
    reset,
)
from repro.obs.tracing import (
    JsonlSink,
    NullSink,
    RingBufferSink,
    Tracer,
    TraceSink,
)

__all__ = [
    "STATE",
    "ObsState",
    "enable",
    "disable",
    "reset",
    "is_enabled",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "TraceSink",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "profile",
    "profiled",
    "PROFILE_METRIC",
    "slot_totals",
    "bound_context",
    "current_request_id",
    "current_tracer",
    "new_request_id",
]


def slot_totals(
    registry: MetricsRegistry | None = None, by: str = "true_type"
) -> Mapping[str, float]:
    """Slot-outcome totals from ``repro_slots_total``.

    ``by`` is ``"true_type"`` or ``"detected_type"``; the result maps
    ``{"IDLE": n0, "SINGLE": n1, "COLLIDED": nc}`` (missing outcomes
    absent).  For a single instrumented run this equals
    :func:`repro.sim.metrics.slot_counts` on the run's trace.
    """
    reg = registry if registry is not None else STATE.registry
    totals = reg.counter_totals(SLOTS, by=by)
    assert isinstance(totals, Mapping)
    return totals
