"""Profiling timers: wall-time histograms per named code section.

Sections record into the registry histogram ``repro_profile_seconds``
with one ``section`` label per instrumented hot path (the exact reader's
inventory loop, each vectorized kernel, each Monte-Carlo grid point --
see ``docs/OBSERVABILITY.md`` for the full list).

Usage::

    from repro.obs.profiling import profile, profiled

    with profile("fast.fsa_fast"):
        ...hot path...

    @profiled("analysis.heavy")
    def heavy(...): ...

When observability is disabled :func:`profile` returns a shared no-op
context manager -- no allocation, no clock read -- so wrapping a hot path
costs one function call and one ``with`` setup.  That is cheap per
*inventory or kernel call*; per-slot granularity should use the counter
guard pattern instead (see :mod:`repro.obs.state`).
"""

from __future__ import annotations

import functools
import time
from typing import Callable, TypeVar

from repro.obs.state import STATE

__all__ = ["profile", "profiled", "PROFILE_METRIC"]

PROFILE_METRIC = "repro_profile_seconds"
_PROFILE_HELP = "Wall time of instrumented code sections"

F = TypeVar("F", bound=Callable)


class _NullTimer:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_TIMER = _NullTimer()


class _Timer:
    __slots__ = ("section", "_t0")

    def __init__(self, section: str) -> None:
        self.section = section

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._t0
        STATE.registry.histogram(
            PROFILE_METRIC, _PROFILE_HELP, labelnames=("section",)
        ).labels(section=self.section).observe(elapsed)


def profile(section: str):
    """Context manager timing ``section`` into the profile histogram.

    Returns a shared no-op when observability is disabled.
    """
    if not STATE.enabled:
        return _NULL_TIMER
    return _Timer(section)


def profiled(section: str) -> Callable[[F], F]:
    """Decorator form of :func:`profile`."""

    def deco(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object):
            if not STATE.enabled:
                return fn(*args, **kwargs)
            with _Timer(section):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco
