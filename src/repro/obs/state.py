"""Process-wide observability switchboard.

Everything the instrumented hot paths touch lives on one slotted object,
:data:`STATE`, imported once at module load by the instrumented modules::

    from repro.obs.state import STATE as _OBS
    ...
    if _OBS.enabled:          # one attribute load + branch when disabled
        _OBS.registry.counter(...).inc()

Disabled is the default and must stay near-zero-cost: the slot loop of
:class:`repro.sim.reader.Reader` runs hundreds of thousands of times per
experiment, so the *only* thing it may pay when observability is off is
that single guard (budget asserted by
``benchmarks/test_ablation_observability.py``).  All metric/trace work --
including building label dicts and f-strings -- must sit behind the guard.
"""

from __future__ import annotations

from repro.obs.context import CURRENT_TRACER
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import NullSink, Tracer, TraceSink

__all__ = ["ObsState", "STATE", "enable", "disable", "reset", "is_enabled"]


class ObsState:
    """The flag, the registry and the tracer, in one attribute load.

    ``tracer`` is context-aware: when :data:`repro.obs.context.
    CURRENT_TRACER` is bound (the serve layer binds one tracer per
    request), it wins; otherwise the process-wide base tracer set by
    :func:`enable`/:func:`reset` is returned.  The lookup only happens
    on the *enabled* path -- disabled hot loops never touch ``tracer``,
    so the overhead contract (one attribute load + branch per slot) is
    untouched.
    """

    __slots__ = ("enabled", "registry", "_base_tracer")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.registry = MetricsRegistry()
        self._base_tracer = Tracer(NullSink())

    @property
    def tracer(self) -> Tracer:
        bound = CURRENT_TRACER.get()
        return bound if bound is not None else self._base_tracer

    @tracer.setter
    def tracer(self, tracer: Tracer) -> None:
        self._base_tracer = tracer


#: The process-wide instance every instrumented module guards on.
STATE = ObsState()


def enable(sink: TraceSink | None = None) -> ObsState:
    """Turn instrumentation on, optionally routing trace records to ``sink``.

    Metrics accumulate into the existing registry (call :func:`reset`
    first for a clean slate).  Returns :data:`STATE` for chaining.
    """
    if sink is not None:
        STATE.tracer = Tracer(sink)
    STATE.enabled = True
    return STATE


def disable(close_sink: bool = False) -> ObsState:
    """Turn instrumentation off; optionally close the tracer's sink."""
    STATE.enabled = False
    if close_sink:
        STATE.tracer.close()
    return STATE


def reset() -> ObsState:
    """Clear all metrics and replace the tracer (sink is NOT closed)."""
    STATE.registry.reset()
    STATE.tracer = Tracer(NullSink())
    return STATE


def is_enabled() -> bool:
    return STATE.enabled
