"""Dependency-free metrics registry: counters, gauges, histograms.

The registry is the numeric half of the observability layer
(:mod:`repro.obs`): long-running drivers (``ContinuousMonitor``, the
Monte-Carlo grid, multi-reader sweeps) increment named metrics while they
execute, so progress is visible *during* a run instead of only in the
post-hoc trace analysis of :mod:`repro.sim.metrics`.

Model (a deliberately small subset of the Prometheus data model):

* a **metric family** has a name, a help string, a metric type and a fixed
  tuple of label names;
* each distinct label-value combination owns one **child** holding the
  actual number(s); a family with no labels has a single anonymous child
  and forwards ``inc``/``set``/``observe`` to it directly;
* families are get-or-create: ``registry.counter("x")`` returns the same
  object every time, and re-registering a name with a different type or
  label set is an error.

Two export formats, both loss-free over the counters:

* :meth:`MetricsRegistry.to_prometheus` -- the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` / ``name{label="v"} value``);
* :meth:`MetricsRegistry.to_dict` / :meth:`~MetricsRegistry.to_json` --
  a plain JSON document for programmatic consumption.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
]

#: One process-wide lock serializes every metric mutation, child/family
#: creation and export snapshot.  The serve layer increments counters
#: and observes histograms from ``asyncio.to_thread`` worker threads
#: while the event loop renders ``/metrics``; without the lock,
#: ``value += amount`` (three bytecodes) can lose increments under
#: preemption and an export can iterate a dict another thread is
#: growing.  The lock lives at module level -- not on the instances --
#: so metric objects stay ``__slots__``-small and picklable (worker
#: processes ship whole registries back to be merged).  Reentrant
#: because exports and merges call locked child operations.
_LOCK = threading.RLock()

#: Default histogram buckets for wall-time observations, in seconds.
#: Geometric 1-2.5-5 ladder from 10 µs to 10 s -- wide enough for both a
#: single vectorized frame and a 50 000-tag exact inventory.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name cannot start with a digit: {name!r}")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{k}="{_escape_label(str(v))}"'
        for k, v in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with _LOCK:
            self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter in (totals add)."""
        with _LOCK:
            self.value += other.value


class Gauge:
    """Arbitrary settable value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        with _LOCK:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with _LOCK:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with _LOCK:
            self.value -= amount

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in.

        Gauges merge additively: in the sharded Monte-Carlo use case each
        worker's gauge holds that worker's contribution, so the merged
        value is the sum (there is no meaningful "last write" across
        processes).
        """
        with _LOCK:
            self.value += other.value


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    ``bucket_counts[i]`` counts observations <= ``upper_bounds[i]``
    (non-cumulative internally; the exporter cumulates), plus an implicit
    +Inf bucket.
    """

    __slots__ = ("upper_bounds", "bucket_counts", "inf_count", "sum", "count")

    def __init__(self, upper_bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in upper_bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be non-empty, sorted and unique")
        self.upper_bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with _LOCK:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.upper_bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.inf_count += 1

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (bucket-wise; schemas must match)."""
        if self.upper_bounds != other.upper_bounds:
            raise ValueError(
                "cannot merge histograms with different buckets: "
                f"{self.upper_bounds} vs {other.upper_bounds}"
            )
        with _LOCK:
            for i, n in enumerate(other.bucket_counts):
                self.bucket_counts[i] += n
            self.inf_count += other.inf_count
            self.sum += other.sum
            self.count += other.count

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``[(le, cumulative_count), ...]`` ending with (+Inf, count)."""
        with _LOCK:
            out: list[tuple[float, int]] = []
            running = 0
            for bound, n in zip(self.upper_bounds, self.bucket_counts):
                running += n
                out.append((bound, running))
            out.append((math.inf, self.count))
            return out


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge}


class MetricFamily:
    """One named metric with a fixed label schema and per-labelset children.

    A family with an empty label schema forwards the child operations
    (``inc`` / ``set`` / ``dec`` / ``observe`` / ``value``) to its single
    anonymous child, so ``registry.counter("runs_total").inc()`` works
    without an explicit ``.labels()`` hop.
    """

    __slots__ = ("name", "help", "type", "labelnames", "buckets", "_children")

    def __init__(
        self,
        name: str,
        type_: str,
        help_: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        _validate_name(name)
        for label in labelnames:
            _validate_name(label)
        self.name = name
        self.type = type_
        self.help = help_
        self.labelnames = tuple(labelnames)
        self.buckets = (
            tuple(buckets) if buckets is not None else DEFAULT_TIME_BUCKETS
        )
        self._children: dict[tuple[str, ...], object] = {}

    # -- child access ---------------------------------------------------

    def labels(self, **labelvalues: object):
        """The child for this label-value combination (created on demand)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[k]) for k in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with _LOCK:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self):
        if self.type == "histogram":
            return Histogram(self.buckets)
        return _CHILD_TYPES[self.type]()

    def _anonymous(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {self.labelnames}; use .labels()"
            )
        child = self._children.get(())
        if child is None:
            with _LOCK:
                child = self._children.get(())
                if child is None:
                    child = self._make_child()
                    self._children[()] = child
        return child

    # -- label-free conveniences ---------------------------------------

    def inc(self, amount: float = 1) -> None:
        self._anonymous().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._anonymous().dec(amount)

    def set(self, value: float) -> None:
        self._anonymous().set(value)

    def observe(self, value: float) -> None:
        self._anonymous().observe(value)

    @property
    def value(self) -> float:
        return self._anonymous().value

    # -- introspection --------------------------------------------------

    def samples(self) -> list[tuple[dict[str, str], object]]:
        """``[(labels_dict, child), ...]`` in insertion order."""
        with _LOCK:
            return [
                (dict(zip(self.labelnames, key)), child)
                for key, child in self._children.items()
            ]

    def total(self) -> float:
        """Sum of all children (counter/gauge families only)."""
        if self.type == "histogram":
            raise ValueError("total() is not defined for histograms")
        with _LOCK:
            return sum(c.value for c in self._children.values())

    # -- merging --------------------------------------------------------

    def merge_from(self, other: "MetricFamily") -> None:
        """Fold another family's children into this one.

        The other family must have the same type and label schema (and
        bucket ladder, for histograms); children that only exist on one
        side are kept/created, shared children combine element-wise.
        """
        if other.type != self.type:
            raise ValueError(
                f"{self.name}: cannot merge {other.type} into {self.type}"
            )
        if other.labelnames != self.labelnames:
            raise ValueError(
                f"{self.name}: label schema mismatch "
                f"({other.labelnames} vs {self.labelnames})"
            )
        if self.type == "histogram" and other.buckets != self.buckets:
            raise ValueError(f"{self.name}: histogram bucket mismatch")
        for key, child in other._children.items():
            mine = self._children.get(key)
            if mine is None:
                mine = self._make_child()
                self._children[key] = mine
            mine.merge(child)  # type: ignore[attr-defined]


class MetricsRegistry:
    """Named collection of metric families.

    The process-wide default lives in :data:`repro.obs.STATE`; independent
    registries can be created freely (tests do).
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    # -- registration ---------------------------------------------------

    def _get_or_create(
        self,
        name: str,
        type_: str,
        help_: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            with _LOCK:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(
                        name, type_, help_, labelnames, buckets
                    )
                    self._families[name] = family
                    return family
        if family.type != type_:
            raise ValueError(
                f"{name} already registered as {family.type}, not {type_}"
            )
        if labelnames and tuple(labelnames) != family.labelnames:
            raise ValueError(
                f"{name} already registered with labels {family.labelnames}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        return self._get_or_create(name, "histogram", help, labelnames, buckets)

    # -- access ---------------------------------------------------------

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def families(self) -> Iterable[MetricFamily]:
        return self._families.values()

    def reset(self) -> None:
        """Drop every family (names, schemas and values)."""
        with _LOCK:
            self._families.clear()

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's metrics into this one; returns ``self``.

        Counters and gauges add, histograms combine bucket-wise; families
        unknown here are adopted with the other registry's schema.  This
        is how the parallel Monte-Carlo runner folds each worker's
        registry back into the process-wide one, so ``--metrics-out``
        reflects the whole run regardless of worker count.  A name
        registered with a conflicting type/label schema raises
        ``ValueError``.
        """
        with _LOCK:
            for family in other.families():
                mine = self._families.get(family.name)
                if mine is None:
                    mine = MetricFamily(
                        family.name,
                        family.type,
                        family.help,
                        family.labelnames,
                        family.buckets,
                    )
                    self._families[family.name] = mine
                mine.merge_from(family)
            return self

    # -- export ---------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        The snapshot is taken under the registry lock, so a render
        racing concurrent increments is internally consistent: within
        one exposition, every histogram's ``_count`` equals its +Inf
        bucket and no family is half-rendered.
        """
        with _LOCK:
            return self._to_prometheus_locked()

    def _to_prometheus_locked(self) -> str:
        lines: list[str] = []
        for family in self._families.values():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.type}")
            for labels, child in family.samples():
                values = tuple(labels[k] for k in family.labelnames)
                if family.type == "histogram":
                    assert isinstance(child, Histogram)
                    for le, cum in child.cumulative_buckets():
                        suffix = _label_suffix(
                            (*family.labelnames, "le"),
                            (*values, _format_value(le)),
                        )
                        lines.append(f"{family.name}_bucket{suffix} {cum}")
                    plain = _label_suffix(family.labelnames, values)
                    lines.append(
                        f"{family.name}_sum{plain} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{plain} {child.count}")
                else:
                    suffix = _label_suffix(family.labelnames, values)
                    lines.append(
                        f"{family.name}{suffix} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict[str, object]:
        """JSON-ready snapshot: {name: {type, help, labelnames, samples}}."""
        with _LOCK:
            return self._to_dict_locked()

    def _to_dict_locked(self) -> dict[str, object]:
        out: dict[str, object] = {}
        for family in self._families.values():
            samples: list[dict[str, object]] = []
            for labels, child in family.samples():
                if family.type == "histogram":
                    assert isinstance(child, Histogram)
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": {
                                _format_value(le): cum
                                for le, cum in child.cumulative_buckets()
                            },
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.type,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "samples": samples,
            }
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, allow_nan=True)

    # -- derived views ---------------------------------------------------

    def counter_totals(
        self, name: str, by: str | None = None
    ) -> Mapping[str, float] | float:
        """Total of a counter family, optionally grouped by one label.

        ``by=None`` returns the scalar grand total; ``by="true_type"``
        returns ``{label_value: subtotal}``.  Missing family -> 0 / {}.
        """
        family = self._families.get(name)
        if family is None:
            return {} if by else 0.0
        if by is None:
            return family.total()
        if by not in family.labelnames:
            raise ValueError(f"{name} has no label {by!r}")
        out: dict[str, float] = {}
        for labels, child in family.samples():
            key = labels[by]
            out[key] = out.get(key, 0.0) + child.value
        return out
