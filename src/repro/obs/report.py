"""Offline trace/metrics analysis: ``repro-obs-report``.

Reads the artifacts the live system writes -- span JSONL files
(``repro-serve --trace-out`` / ``repro-experiments --trace-out``) and
registry JSON dumps (``--metrics-out``) -- and answers the questions an
operator asks after the fact:

* ``repro-obs-report serve TRACE.jsonl`` -- per-stage latency
  percentiles across every request in the trace, critical-path
  attribution (which stage dominated request wall time), and the
  slowest requests; ``--request-id`` prints one request's full span
  tree (the serve spans with the engine's grid_point -> inventory ->
  frame spans nested under them);
* ``repro-obs-report metrics METRICS.json`` -- p50/p90/p99 summaries
  for every histogram family in a registry dump, estimated by linear
  interpolation over the cumulative buckets (the standard
  ``histogram_quantile`` estimator).

Everything here is pure over the input files, so the analysis is
reproducible and unit-testable without a server.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = [
    "histogram_quantile",
    "histogram_percentiles",
    "load_trace",
    "spans_for_request",
    "span_tree_lines",
    "serve_stage_stats",
    "serve_attribution",
    "metrics_percentile_rows",
    "render_serve_report",
    "main",
    "build_parser",
]

#: The serve pipeline's stage span names, in pipeline order.
#: ``serve.compute`` nests inside ``serve.coalesce`` (the leader's
#: compute happens under its coalesce lease), so attribution sums
#: queue_wait + coalesce + stream and reports compute separately.
SERVE_STAGES = (
    "serve.queue_wait",
    "serve.coalesce",
    "serve.compute",
    "serve.stream",
)
_ADDITIVE_STAGES = ("serve.queue_wait", "serve.coalesce", "serve.stream")


# ----------------------------------------------------------------------
# Percentiles


def histogram_quantile(
    buckets: Sequence[tuple[float, float]], q: float
) -> float:
    """Estimate the ``q``-th percentile from cumulative buckets.

    ``buckets`` is ascending ``[(le, cumulative_count), ...]``, the last
    entry usually ``(inf, total)`` -- exactly what
    :meth:`repro.obs.registry.Histogram.cumulative_buckets` returns.
    Linear interpolation inside the containing bucket (lower edge of the
    first bucket taken as 0); a percentile landing in the +Inf bucket
    returns the highest finite bound (the estimate saturates, as
    Prometheus's ``histogram_quantile`` does).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if not buckets:
        return float("nan")
    total = buckets[-1][1]
    if total <= 0:
        return float("nan")
    target = (q / 100.0) * total
    prev_le, prev_cum = 0.0, 0.0
    for le, cum in buckets:
        if cum >= target:
            if math.isinf(le):
                return prev_le
            if cum == prev_cum:
                return le
            return prev_le + (le - prev_le) * (target - prev_cum) / (
                cum - prev_cum
            )
        prev_le, prev_cum = le, cum
    return prev_le


def histogram_percentiles(
    buckets: Sequence[tuple[float, float]],
    qs: Sequence[float] = (50.0, 90.0, 99.0),
) -> dict[str, float]:
    """``{"p50": ..., "p90": ..., "p99": ...}`` via bucket interpolation."""
    return {f"p{q:g}": histogram_quantile(buckets, q) for q in qs}


def _exact_percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ascending values (spans carry exact
    durations, so no bucket estimation is needed offline)."""
    if not sorted_values:
        return float("nan")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


# ----------------------------------------------------------------------
# Trace loading and per-request views


def load_trace(path: str | Path) -> list[dict]:
    """Parse a span/event JSONL file; malformed lines are skipped."""
    records: list[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def spans_for_request(
    records: Iterable[dict], request_id: str
) -> list[dict]:
    """Every span stamped with ``request_id``, in emission order."""
    return [
        r
        for r in records
        if r.get("type") == "span" and r.get("trace_id") == request_id
    ]


def span_tree_lines(spans: Sequence[dict]) -> list[str]:
    """Render spans as an indented tree (children under parents).

    Spans whose parent is absent from ``spans`` (e.g. grid points of an
    async job whose ``serve.request`` root closed at the 202) root the
    tree alongside genuine roots, so the reconstruction never drops
    records.
    """
    by_id = {s["span_id"]: s for s in spans}
    children: dict[object, list[dict]] = {}
    roots: list[dict] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    lines: list[str] = []

    def walk(span: dict, depth: int) -> None:
        duration = span.get("duration")
        dur = (
            f"{duration * 1000.0:9.3f} ms"
            if isinstance(duration, (int, float))
            else "         --"
        )
        lines.append(f"{dur}  {'  ' * depth}{span['name']}")
        kids = children.get(span["span_id"], [])
        kids.sort(key=lambda s: s.get("start", 0.0))
        for kid in kids:
            walk(kid, depth + 1)

    roots.sort(key=lambda s: s.get("start", 0.0))
    for root in roots:
        walk(root, 0)
    return lines


def _group_by_trace(records: Iterable[dict]) -> dict[str, list[dict]]:
    grouped: dict[str, list[dict]] = {}
    for r in records:
        if r.get("type") != "span":
            continue
        trace_id = r.get("trace_id")
        if isinstance(trace_id, str):
            grouped.setdefault(trace_id, []).append(r)
    return grouped


def serve_stage_stats(records: Iterable[dict]) -> dict[str, dict[str, float]]:
    """Per-stage latency stats over every serve span in the trace.

    ``{span_name: {"n", "p50", "p90", "p99", "max"}}`` (seconds), for
    ``serve.request`` plus each pipeline stage observed.
    """
    durations: dict[str, list[float]] = {}
    for r in records:
        if r.get("type") != "span":
            continue
        name = r.get("name")
        duration = r.get("duration")
        if (
            isinstance(name, str)
            and name.startswith("serve.")
            and isinstance(duration, (int, float))
        ):
            durations.setdefault(name, []).append(float(duration))
    stats: dict[str, dict[str, float]] = {}
    for name, values in durations.items():
        values.sort()
        stats[name] = {
            "n": len(values),
            "p50": _exact_percentile(values, 50),
            "p90": _exact_percentile(values, 90),
            "p99": _exact_percentile(values, 99),
            "max": values[-1],
        }
    return stats


def serve_attribution(records: Iterable[dict]) -> list[dict]:
    """Critical-path attribution per request, slowest first.

    For each request with a ``serve.request`` span: its wall time, the
    max duration per stage across its grid points (points run
    concurrently, so the max approximates the critical path), and the
    unattributed remainder (parse/validate/response time outside any
    stage span).
    """
    out: list[dict] = []
    for trace_id, spans in _group_by_trace(records).items():
        roots = [s for s in spans if s["name"] == "serve.request"]
        if not roots:
            continue
        total = float(roots[0].get("duration") or 0.0)
        stages: dict[str, float] = {}
        for span in spans:
            name = span["name"]
            if name in SERVE_STAGES:
                duration = float(span.get("duration") or 0.0)
                if duration > stages.get(name, 0.0):
                    stages[name] = duration
        attributed = sum(stages.get(n, 0.0) for n in _ADDITIVE_STAGES)
        out.append(
            {
                "request_id": trace_id,
                "total_s": total,
                "stages_s": stages,
                "unattributed_s": max(0.0, total - attributed),
            }
        )
    out.sort(key=lambda entry: entry["total_s"], reverse=True)
    return out


def render_serve_report(records: list[dict], slowest: int = 10) -> str:
    """The human-readable ``serve`` report over a loaded trace."""
    lines: list[str] = []
    stats = serve_stage_stats(records)
    if not stats:
        return "no serve.* spans found in the trace\n"
    lines.append("stage latency (seconds):")
    lines.append(
        f"  {'span':<18} {'n':>6} {'p50':>10} {'p90':>10} "
        f"{'p99':>10} {'max':>10}"
    )
    for name in ("serve.request", *SERVE_STAGES):
        s = stats.get(name)
        if s is None:
            continue
        lines.append(
            f"  {name:<18} {int(s['n']):>6} {s['p50']:>10.6f} "
            f"{s['p90']:>10.6f} {s['p99']:>10.6f} {s['max']:>10.6f}"
        )
    requests = serve_attribution(records)
    if requests:
        totals = sum(r["total_s"] for r in requests) or 1.0
        shares: dict[str, float] = {}
        for r in requests:
            for name in _ADDITIVE_STAGES:
                shares[name] = shares.get(name, 0.0) + r["stages_s"].get(
                    name, 0.0
                )
            shares["unattributed"] = (
                shares.get("unattributed", 0.0) + r["unattributed_s"]
            )
        lines.append("")
        lines.append(
            f"critical-path attribution over {len(requests)} request(s):"
        )
        for name in (*_ADDITIVE_STAGES, "unattributed"):
            lines.append(
                f"  {name:<18} {shares.get(name, 0.0) / totals:>7.1%}"
            )
        lines.append("")
        lines.append(f"slowest {min(slowest, len(requests))} request(s):")
        for r in requests[:slowest]:
            breakdown = ", ".join(
                f"{name.removeprefix('serve.')}={seconds:.6f}s"
                for name, seconds in sorted(r["stages_s"].items())
            )
            lines.append(
                f"  {r['total_s']:>10.6f}s  {r['request_id']}"
                + (f"  ({breakdown})" if breakdown else "")
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Metrics dumps


def metrics_percentile_rows(
    dump: Mapping[str, object], names: Sequence[str] | None = None
) -> list[dict[str, str]]:
    """Percentile rows for every histogram family in a registry dump.

    ``dump`` is :meth:`repro.obs.registry.MetricsRegistry.to_dict` (or
    its JSON file); each labelled child becomes one row with p50/p90/p99
    estimated by bucket interpolation.  ``names`` restricts the
    families.
    """
    rows: list[dict[str, str]] = []
    for name in sorted(dump):
        family = dump[name]
        if not isinstance(family, Mapping) or family.get("type") != "histogram":
            continue
        if names is not None and name not in names:
            continue
        for sample in family.get("samples", ()):  # type: ignore[union-attr]
            buckets = [
                (float(le), float(cum))
                for le, cum in sorted(
                    sample["buckets"].items(), key=lambda kv: float(kv[0])
                )
            ]
            labels = sample.get("labels") or {}
            label_text = ",".join(
                f"{k}={v}" for k, v in sorted(labels.items())
            )
            pct = histogram_percentiles(buckets)
            count = buckets[-1][1] if buckets else 0
            rows.append(
                {
                    "histogram": f"{name}{{{label_text}}}"
                    if label_text
                    else name,
                    "count": str(int(count)),
                    "p50": f"{pct['p50']:.6g}",
                    "p90": f"{pct['p90']:.6g}",
                    "p99": f"{pct['p99']:.6g}",
                }
            )
    return rows


def _render_rows(rows: list[dict[str, str]]) -> str:
    if not rows:
        return "no histogram families found\n"
    headers = list(rows[0])
    widths = {
        h: max(len(h), *(len(r[h]) for r in rows)) for h in headers
    }
    lines = [
        "  ".join(h.ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for r in rows:
        lines.append("  ".join(r[h].ljust(widths[h]) for h in headers))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# CLI


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs-report",
        description="Offline analysis of repro.obs trace JSONL files "
        "and metrics dumps (docs/OBSERVABILITY.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    serve = sub.add_parser(
        "serve",
        help="per-stage percentiles + critical-path attribution over a "
        "serve trace",
    )
    serve.add_argument("trace", type=Path, help="span JSONL file")
    serve.add_argument(
        "--request-id",
        default=None,
        help="print this request's full span tree instead of the summary",
    )
    serve.add_argument(
        "--slowest",
        type=int,
        default=10,
        help="requests listed in the slow table (default 10)",
    )
    metrics = sub.add_parser(
        "metrics",
        help="p50/p90/p99 (bucket interpolation) for every histogram in "
        "a registry JSON dump",
    )
    metrics.add_argument("dump", type=Path, help="registry JSON dump")
    metrics.add_argument(
        "--name",
        action="append",
        default=None,
        metavar="FAMILY",
        help="restrict to this histogram family (repeatable)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        records = load_trace(args.trace)
        if args.request_id:
            spans = spans_for_request(records, args.request_id)
            if not spans:
                print(
                    f"no spans for request {args.request_id!r}",
                    file=sys.stderr,
                )
                return 1
            print(f"span tree for {args.request_id}:")
            for line in span_tree_lines(spans):
                print(line)
            return 0
        sys.stdout.write(
            render_serve_report(records, slowest=args.slowest)
        )
        return 0
    dump = json.loads(Path(args.dump).read_text())
    rows = metrics_percentile_rows(
        dump, names=args.name if args.name else None
    )
    sys.stdout.write(_render_rows(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
