"""Structured tracing: span/event records to pluggable sinks.

The trace half of :mod:`repro.obs`.  Where the metrics registry answers
"how many / how fast so far", the tracer answers "what is the run doing
right now and in what order": the instrumented drivers emit a span tree

    inventory -> frame -> slot (events)

(and analogous spans for monitoring rounds, mobile runs, multi-reader
sweeps and Monte-Carlo grid points) to whatever sink is configured.

Records are plain dicts so every sink serializes them trivially:

``span``  -- ``{"type": "span", "name", "span_id", "parent_id", "start",
"end", "duration", "attrs"}`` (emitted when the span *closes*);
``event`` -- ``{"type": "event", "name", "span_id", "time", "attrs"}``
(``span_id`` is the enclosing span, or ``None`` at top level).

Sinks:

* :class:`NullSink`       -- drops everything (the default);
* :class:`RingBufferSink` -- keeps the last ``capacity`` records in
  memory, for tests and interactive inspection;
* :class:`JsonlSink`      -- appends one JSON object per line to a file,
  the interchange format for offline span analysis.

Timestamps are wall-clock ``time.perf_counter()`` values: tracing measures
*host* execution, while the simulation's airtime clock stays inside the
:class:`~repro.sim.trace.SlotRecord` stream.  Simulation quantities that
matter to a span (airtime, slot counts) travel in ``attrs``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = ["Tracer", "TraceSink", "NullSink", "RingBufferSink", "JsonlSink"]


class TraceSink:
    """Sink interface: receives finished record dicts."""

    def emit(self, record: dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class NullSink(TraceSink):
    """Discards every record."""

    def emit(self, record: dict[str, object]) -> None:
        pass


class RingBufferSink(TraceSink):
    """Keeps the newest ``capacity`` records in memory."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.records: deque[dict[str, object]] = deque(maxlen=capacity)

    def emit(self, record: dict[str, object]) -> None:
        self.records.append(record)

    def spans(self, name: str | None = None) -> list[dict[str, object]]:
        return [
            r
            for r in self.records
            if r["type"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: str | None = None) -> list[dict[str, object]]:
        return [
            r
            for r in self.records
            if r["type"] == "event" and (name is None or r["name"] == name)
        ]


class JsonlSink(TraceSink):
    """Appends records as JSON lines to ``path``."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = self.path.open("a")

    def emit(self, record: dict[str, object]) -> None:
        self._fh.write(json.dumps(record, allow_nan=True) + "\n")

    def close(self) -> None:
        self._fh.flush()
        self._fh.close()


class Tracer:
    """Emits a span tree to a sink.

    Two APIs over the same stack:

    * the context manager :meth:`span` for lexically scoped phases;
    * the explicit :meth:`start_span` / :meth:`end_span` pair for spans
      whose boundaries only become known inside a loop (the reader learns
      a frame ended when the *next* frame's first slot arrives).

    Not thread-safe by design: one tracer per driving thread (the
    simulators are single-threaded).
    """

    def __init__(self, sink: TraceSink | None = None) -> None:
        self.sink = sink if sink is not None else NullSink()
        self._stack: list[dict[str, object]] = []
        self._next_id = 1

    # -- spans ----------------------------------------------------------

    def start_span(self, name: str, **attrs: object) -> int:
        """Open a span; returns its id.  Close with :meth:`end_span`."""
        span_id = self._next_id
        self._next_id += 1
        self._stack.append(
            {
                "type": "span",
                "name": name,
                "span_id": span_id,
                "parent_id": (
                    self._stack[-1]["span_id"] if self._stack else None
                ),
                "start": time.perf_counter(),
                "attrs": dict(attrs),
            }
        )
        return span_id

    def end_span(self, **attrs: object) -> None:
        """Close the innermost open span, merging ``attrs`` into it."""
        if not self._stack:
            raise RuntimeError("end_span with no open span")
        record = self._stack.pop()
        record["attrs"].update(attrs)  # type: ignore[union-attr]
        record["end"] = time.perf_counter()
        record["duration"] = record["end"] - record["start"]  # type: ignore[operator]
        self.sink.emit(record)

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[int]:
        """``with tracer.span("inventory", n_tags=50): ...``"""
        span_id = self.start_span(name, **attrs)
        try:
            yield span_id
        finally:
            # Unwind any child spans an exception left open.
            while self._stack and self._stack[-1]["span_id"] != span_id:
                self.end_span(aborted=True)
            if self._stack:
                self.end_span()

    # -- events ---------------------------------------------------------

    def event(self, name: str, **attrs: object) -> None:
        """Point-in-time record parented to the innermost open span."""
        self.sink.emit(
            {
                "type": "event",
                "name": name,
                "span_id": (
                    self._stack[-1]["span_id"] if self._stack else None
                ),
                "time": time.perf_counter(),
                "attrs": attrs,
            }
        )

    # -- housekeeping ---------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._stack)

    def close(self) -> None:
        """Close any dangling spans and the sink."""
        while self._stack:
            self.end_span(aborted=True)
        self.sink.close()
