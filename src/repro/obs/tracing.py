"""Structured tracing: span/event records to pluggable sinks.

The trace half of :mod:`repro.obs`.  Where the metrics registry answers
"how many / how fast so far", the tracer answers "what is the run doing
right now and in what order": the instrumented drivers emit a span tree

    inventory -> frame -> slot (events)

(and analogous spans for monitoring rounds, mobile runs, multi-reader
sweeps and Monte-Carlo grid points) to whatever sink is configured.

Records are plain dicts so every sink serializes them trivially:

``span``  -- ``{"type": "span", "name", "span_id", "parent_id", "start",
"end", "duration", "attrs"}`` (emitted when the span *closes*);
``event`` -- ``{"type": "event", "name", "span_id", "time", "attrs"}``
(``span_id`` is the enclosing span, or ``None`` at top level).

Sinks:

* :class:`NullSink`       -- drops everything (the default);
* :class:`RingBufferSink` -- keeps the last ``capacity`` records in
  memory, for tests and interactive inspection;
* :class:`JsonlSink`      -- appends one JSON object per line to a file,
  the interchange format for offline span analysis.

Timestamps are wall-clock ``time.perf_counter()`` values: tracing measures
*host* execution, while the simulation's airtime clock stays inside the
:class:`~repro.sim.trace.SlotRecord` stream.  Simulation quantities that
matter to a span (airtime, slot counts) travel in ``attrs``.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = ["Tracer", "TraceSink", "NullSink", "RingBufferSink", "JsonlSink"]

#: Process-wide span-id allocator.  Span ids must stay unique across
#: *all* tracers sharing a sink (the serve layer runs one short-lived
#: tracer per request, all appending to one JSONL file), so ids come
#: from one shared counter -- ``itertools.count.__next__`` is atomic
#: under the GIL, which makes allocation thread-safe for free.
_SPAN_IDS = itertools.count(1)


class TraceSink:
    """Sink interface: receives finished record dicts."""

    def emit(self, record: dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class NullSink(TraceSink):
    """Discards every record."""

    def emit(self, record: dict[str, object]) -> None:
        pass


class RingBufferSink(TraceSink):
    """Keeps the newest ``capacity`` records in memory."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.records: deque[dict[str, object]] = deque(maxlen=capacity)

    def emit(self, record: dict[str, object]) -> None:
        self.records.append(record)

    def spans(self, name: str | None = None) -> list[dict[str, object]]:
        return [
            r
            for r in self.records
            if r["type"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: str | None = None) -> list[dict[str, object]]:
        return [
            r
            for r in self.records
            if r["type"] == "event" and (name is None or r["name"] == name)
        ]


class JsonlSink(TraceSink):
    """Appends records as JSON lines to ``path``.

    Emission is locked: the serve layer shares one sink between the
    event loop and its ``to_thread`` compute workers, and two half
    written lines interleaved would corrupt the whole file.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = self.path.open("a")
        self._lock = threading.Lock()

    def emit(self, record: dict[str, object]) -> None:
        line = json.dumps(record, allow_nan=True) + "\n"
        with self._lock:
            self._fh.write(line)

    def close(self) -> None:
        with self._lock:
            self._fh.flush()
            self._fh.close()


class Tracer:
    """Emits a span tree to a sink.

    Two APIs over the same stack:

    * the context manager :meth:`span` for lexically scoped phases;
    * the explicit :meth:`start_span` / :meth:`end_span` pair for spans
      whose boundaries only become known inside a loop (the reader learns
      a frame ended when the *next* frame's first slot arrives).

    Not thread-safe by design: one tracer per driving thread (the
    simulators are single-threaded; the serve layer binds one tracer
    per request via :mod:`repro.obs.context`, and hands it across the
    ``to_thread`` boundary only while the owning task is suspended).

    ``trace_id`` stamps every record this tracer emits, so records from
    many tracers can share one sink and still be regrouped offline (the
    serve layer uses the request id).  ``root_parent_id`` grafts this
    tracer's top-level spans under a span owned by *another* tracer --
    how a grid point's spans nest under the admitting request's
    ``serve.request`` span even though the two are emitted from
    different tasks.  Span ids come from a process-wide counter, so
    ``(trace_id, span_id)`` -- and in one process ``span_id`` alone --
    is unique across tracers.
    """

    def __init__(
        self,
        sink: TraceSink | None = None,
        *,
        trace_id: str | None = None,
        root_parent_id: int | None = None,
    ) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.trace_id = trace_id
        self.root_parent_id = root_parent_id
        self._stack: list[dict[str, object]] = []

    # -- spans ----------------------------------------------------------

    def start_span(self, name: str, **attrs: object) -> int:
        """Open a span; returns its id.  Close with :meth:`end_span`."""
        span_id = next(_SPAN_IDS)
        record: dict[str, object] = {
            "type": "span",
            "name": name,
            "span_id": span_id,
            "parent_id": (
                self._stack[-1]["span_id"]
                if self._stack
                else self.root_parent_id
            ),
            "start": time.perf_counter(),
            "attrs": dict(attrs),
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        self._stack.append(record)
        return span_id

    def emit_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent_id: int | None = None,
        **attrs: object,
    ) -> int:
        """Emit a retroactive span whose boundaries are already known.

        For phases observed only after the fact -- e.g. queue wait,
        measured when a worker dequeues the item it was enqueued with.
        The span does not touch the stack; ``parent_id`` defaults to the
        innermost open span (or ``root_parent_id``).
        """
        span_id = next(_SPAN_IDS)
        if parent_id is None:
            parent_id = (
                self._stack[-1]["span_id"]  # type: ignore[assignment]
                if self._stack
                else self.root_parent_id
            )
        record: dict[str, object] = {
            "type": "span",
            "name": name,
            "span_id": span_id,
            "parent_id": parent_id,
            "start": start,
            "end": end,
            "duration": end - start,
            "attrs": dict(attrs),
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        self.sink.emit(record)
        return span_id

    def end_span(self, **attrs: object) -> None:
        """Close the innermost open span, merging ``attrs`` into it."""
        if not self._stack:
            raise RuntimeError("end_span with no open span")
        record = self._stack.pop()
        record["attrs"].update(attrs)  # type: ignore[union-attr]
        record["end"] = time.perf_counter()
        record["duration"] = record["end"] - record["start"]  # type: ignore[operator]
        self.sink.emit(record)

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[int]:
        """``with tracer.span("inventory", n_tags=50): ...``"""
        span_id = self.start_span(name, **attrs)
        try:
            yield span_id
        finally:
            # Unwind any child spans an exception left open.
            while self._stack and self._stack[-1]["span_id"] != span_id:
                self.end_span(aborted=True)
            if self._stack:
                self.end_span()

    # -- events ---------------------------------------------------------

    def event(self, name: str, **attrs: object) -> None:
        """Point-in-time record parented to the innermost open span."""
        record: dict[str, object] = {
            "type": "event",
            "name": name,
            "span_id": (
                self._stack[-1]["span_id"]
                if self._stack
                else self.root_parent_id
            ),
            "time": time.perf_counter(),
            "attrs": attrs,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        self.sink.emit(record)

    # -- housekeeping ---------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._stack)

    def close(self) -> None:
        """Close any dangling spans and the sink."""
        while self._stack:
            self.end_span(aborted=True)
        self.sink.close()
