"""Request-scoped trace context: the bridge from servers to the tracer.

:mod:`repro.obs` was built for single-threaded simulation drivers -- one
process-wide :class:`~repro.obs.tracing.Tracer` with one span stack.
A server breaks that model twice over: many requests are in flight on
one event loop, and each request's blocking compute runs on a worker
thread (``asyncio.to_thread``).  This module restores the "one tracer
per logical execution" invariant with two :mod:`contextvars` variables:

* :data:`CURRENT_TRACER` -- the tracer the *current* task/thread should
  emit spans to.  :class:`repro.obs.state.ObsState` consults it first,
  so every ``_OBS.tracer.start_span(...)`` call site in the simulation
  stack transparently lands on the request's tracer when one is bound;
* :data:`REQUEST_ID` -- the id of the request the current task serves
  (the ``X-Request-Id`` header contract; see ``docs/OBSERVABILITY.md``).

Because ``asyncio.to_thread`` runs its callable under a *copy* of the
calling task's context, a tracer bound before the thread hop is visible
inside it -- the PR-1 ``grid_point -> inventory -> frame -> slot`` spans
emitted by the engine therefore nest under the serve request's span tree
with no plumbing through the compute API.

Binding is token-based (set/reset), mirroring raw ``contextvars`` usage,
plus a context-manager convenience::

    with bound_context(tracer=request_tracer, request_id=rid):
        ... every span emitted here (or in a to_thread hop) joins rid ...

The variables are process-global but context-local; binding in one task
never leaks into another.  Everything here is stdlib-only and cheap
enough to run even with observability disabled (one ContextVar.set per
request), which is what keeps ``X-Request-Id`` available on untraced
servers.
"""

from __future__ import annotations

import secrets
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (state -> context)
    from repro.obs.tracing import Tracer

__all__ = [
    "CURRENT_TRACER",
    "REQUEST_ID",
    "current_tracer",
    "current_request_id",
    "new_request_id",
    "bound_context",
]

#: The tracer bound to the current execution context, or ``None`` to use
#: the process-wide default (``STATE``'s base tracer).
CURRENT_TRACER: ContextVar["Tracer | None"] = ContextVar(
    "repro_obs_current_tracer", default=None
)

#: The request id owning the current execution context, or ``None``
#: outside any request scope.
REQUEST_ID: ContextVar[str | None] = ContextVar(
    "repro_obs_request_id", default=None
)


def current_tracer() -> "Tracer | None":
    """The context-bound tracer, or ``None`` if none is bound."""
    return CURRENT_TRACER.get()


def current_request_id() -> str | None:
    """The request id bound to the current context, if any."""
    return REQUEST_ID.get()


def new_request_id() -> str:
    """A fresh globally unique request id (``req-`` + 16 hex chars)."""
    return f"req-{secrets.token_hex(8)}"


@contextmanager
def bound_context(
    tracer: "Tracer | None" = None, request_id: str | None = None
) -> Iterator[None]:
    """Bind ``tracer`` and/or ``request_id`` for the enclosed block.

    ``None`` arguments leave the corresponding variable untouched, so
    a worker task can re-bind just the tracer while inheriting the
    request id its parent bound.
    """
    tracer_token = (
        CURRENT_TRACER.set(tracer) if tracer is not None else None
    )
    rid_token = REQUEST_ID.set(request_id) if request_id is not None else None
    try:
        yield
    finally:
        if rid_token is not None:
            REQUEST_ID.reset(rid_token)
        if tracer_token is not None:
            CURRENT_TRACER.reset(tracer_token)
