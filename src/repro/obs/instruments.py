"""Canonical metric names and the shared instrumentation helpers.

One module owns every metric the simulation stack emits, so names and
label schemas cannot drift between the exact reader, the vectorized
kernels and the experiment runner (``docs/OBSERVABILITY.md`` is the
human-readable registry of the same names).

Every helper here assumes the caller already checked
``STATE.enabled`` -- these functions do real work and must only run in
enabled mode.  The contract that makes the dumps trustworthy:

* summing ``repro_slots_total`` over ``detected_type`` grouped by
  ``true_type`` reproduces :func:`repro.sim.metrics.slot_counts` of the
  same run exactly (and vice versa for detected counts), whether the run
  went through the exact reader (per-slot increments) or a vectorized
  kernel (bulk increments from the synthesized stats).
"""

from __future__ import annotations

from repro.obs.state import STATE

__all__ = [
    "SLOTS",
    "INVENTORIES",
    "FRAMES",
    "IDENTIFIED",
    "LOST",
    "CAPTURES",
    "MISDETECTIONS",
    "INVENTORY_AIRTIME",
    "MOBILITY_EVENTS",
    "ESCAPED",
    "MONITOR_ROUNDS",
    "MONITOR_CHURN",
    "MONITOR_PRESENT",
    "SWEEPS",
    "JAMMED",
    "GRID_POINTS",
    "MC_ROUNDS",
    "INVARIANT_VIOLATIONS",
    "SERVE_REQUESTS",
    "SERVE_REQUEST_SECONDS",
    "SERVE_STAGE_SECONDS",
    "SERVE_REJECTS",
    "SERVE_QUEUE_DEPTH",
    "SERVE_INFLIGHT",
    "SERVE_COALESCE_HITS",
    "SERVE_POINTS",
    "SERVE_JOBS",
    "ROUTER_REQUESTS",
    "ROUTER_FORWARDS",
    "ROUTER_FORWARD_SECONDS",
    "ROUTER_RETRIES",
    "ROUTER_EJECTIONS",
    "ROUTER_BACKENDS_HEALTHY",
    "ROUTER_STREAM_RESUMES",
    "GATEWAY_FRAMES_IN",
    "GATEWAY_FRAMES_OUT",
    "GATEWAY_CRC_FAILURES",
    "GATEWAY_MALFORMED",
    "GATEWAY_CONNECTIONS",
    "GATEWAY_INVENTORIES",
    "GATEWAY_REPORT_SECONDS",
    "record_slot",
    "record_inventory",
    "record_kernel_stats",
]

SLOTS = "repro_slots_total"
INVENTORIES = "repro_inventories_total"
FRAMES = "repro_frames_total"
IDENTIFIED = "repro_identified_tags_total"
LOST = "repro_lost_tags_total"
CAPTURES = "repro_captures_total"
MISDETECTIONS = "repro_misdetections_total"
INVENTORY_AIRTIME = "repro_inventory_airtime"
MOBILITY_EVENTS = "repro_mobility_events_total"
ESCAPED = "repro_escaped_tags_total"
MONITOR_ROUNDS = "repro_monitoring_rounds_total"
MONITOR_CHURN = "repro_monitoring_churn_total"
MONITOR_PRESENT = "repro_monitoring_present_tags"
SWEEPS = "repro_multireader_sweeps_total"
JAMMED = "repro_jammed_tags_total"
GRID_POINTS = "repro_grid_points_total"
MC_ROUNDS = "repro_mc_rounds_total"
INVARIANT_VIOLATIONS = "repro_invariant_violations_total"

# -- repro.serve (the simulation service; see docs/SERVING.md) ---------
SERVE_REQUESTS = "repro_serve_requests_total"
SERVE_REQUEST_SECONDS = "repro_serve_request_seconds"
#: Histogram of per-request stage latencies, labelled ``stage`` --
#: ``queue_wait`` / ``coalesce`` / ``compute`` / ``stream`` -- mirroring
#: the ``serve.<stage>`` span names (docs/OBSERVABILITY.md).
SERVE_STAGE_SECONDS = "repro_serve_stage_seconds"
SERVE_REJECTS = "repro_serve_rejects_total"
SERVE_QUEUE_DEPTH = "repro_serve_queue_depth"
SERVE_INFLIGHT = "repro_serve_inflight_points"
SERVE_COALESCE_HITS = "repro_serve_coalesce_hits_total"
SERVE_POINTS = "repro_serve_points_total"
SERVE_JOBS = "repro_serve_jobs_total"

# -- repro.serve.router (the fleet front door; docs/SERVING.md) --------
#: Requests through the router, by route and final status.
ROUTER_REQUESTS = "repro_router_requests_total"
#: Router -> backend hops, labelled ``backend`` and ``outcome``
#: (``ok`` / ``shed`` / ``error``).
ROUTER_FORWARDS = "repro_router_forwards_total"
#: Wall time of one backend hop, labelled ``backend``.
ROUTER_FORWARD_SECONDS = "repro_router_forward_seconds"
#: Points re-routed to a new owner after an ejection.
ROUTER_RETRIES = "repro_router_retries_total"
#: Ring ejections, by reason (``unreachable``/``draining``/``dead``...).
ROUTER_EJECTIONS = "repro_router_ejections_total"
#: Healthy backends currently on the ring (gauge).
ROUTER_BACKENDS_HEALTHY = "repro_router_backends_healthy"
#: NDJSON job streams transparently resumed on a surviving backend.
ROUTER_STREAM_RESUMES = "repro_router_stream_resumes_total"

# -- repro.gateway (binary reader gateway; docs/GATEWAY.md) ------------
#: Well-formed frames received, labelled ``cmd`` (the frame class name).
GATEWAY_FRAMES_IN = "repro_gateway_frames_in_total"
#: Frames sent, labelled ``cmd``.
GATEWAY_FRAMES_OUT = "repro_gateway_frames_out_total"
#: Frames rejected for a CRC trailer mismatch (the wire-integrity
#: signal; the CI smoke job asserts this stays 0 on a clean link).
GATEWAY_CRC_FAILURES = "repro_gateway_crc_failures_total"
#: Frames rejected for any other malformation, labelled ``reason``
#: (``malformed_frame`` / ``unsupported``).
GATEWAY_MALFORMED = "repro_gateway_malformed_frames_total"
#: Currently open client connections (gauge).
GATEWAY_CONNECTIONS = "repro_gateway_connections_active"
#: Inventory sessions finished, labelled ``protocol`` / ``detector`` /
#: ``outcome`` (``done`` / ``stopped`` / ``disconnect`` / ``error``).
GATEWAY_INVENTORIES = "repro_gateway_inventories_total"
#: Wall seconds from START_INVENTORY to each TAG_REPORT hitting the
#: outbound queue (report latency as the client experiences it).
GATEWAY_REPORT_SECONDS = "repro_gateway_report_seconds"

#: Airtime histogram buckets (units of tau): decade ladder wide enough
#: for a 10-tag toy run and the paper's 50 000-tag case IV.
AIRTIME_BUCKETS = tuple(
    float(10**e) * m for e in range(1, 9) for m in (1.0, 3.0)
)


def _slots_counter():
    return STATE.registry.counter(
        SLOTS,
        "Slots executed, by ground-truth and detected verdict",
        labelnames=("true_type", "detected_type"),
    )


def record_slot(record) -> None:
    """Per-slot counters + a ``slot`` trace event (exact reader path).

    ``record`` is a :class:`repro.sim.trace.SlotRecord`; typed loosely to
    keep :mod:`repro.obs` import-independent of :mod:`repro.sim`.
    """
    reg = STATE.registry
    true_name = record.true_type.name
    detected_name = record.detected_type.name
    _slots_counter().labels(
        true_type=true_name, detected_type=detected_name
    ).inc()
    if record.identified_tag is not None:
        reg.counter(IDENTIFIED, "Tags successfully identified").inc()
    if record.lost_tags:
        reg.counter(
            LOST, "Tags lost to misdetection ('lost' policy)"
        ).inc(record.lost_tags)
    if record.captured:
        reg.counter(
            CAPTURES, "Collided slots resolved by the capture effect"
        ).inc()
    if (
        true_name == "COLLIDED"
        and detected_name == "SINGLE"
        and not record.captured
    ):
        reg.counter(
            MISDETECTIONS, "Detector errors by kind", labelnames=("kind",)
        ).labels(kind="missed_collision").inc()
    elif true_name == "SINGLE" and detected_name == "COLLIDED":
        reg.counter(
            MISDETECTIONS, "Detector errors by kind", labelnames=("kind",)
        ).labels(kind="false_collision").inc()
    STATE.tracer.event(
        "slot",
        index=record.index,
        frame=record.frame,
        true_type=true_name,
        detected_type=detected_name,
        n_responders=record.n_responders,
        duration=record.duration,
    )


def record_inventory(engine: str, frames: int, airtime: float) -> None:
    """Inventory-completion counters shared by all engines."""
    reg = STATE.registry
    reg.counter(
        INVENTORIES, "Inventory runs completed", labelnames=("engine",)
    ).labels(engine=engine).inc()
    reg.counter(
        FRAMES,
        "Frames started (frame restarts included)",
        labelnames=("engine",),
    ).labels(engine=engine).inc(frames)
    reg.histogram(
        INVENTORY_AIRTIME,
        "Total airtime per inventory (units of tau)",
        labelnames=("engine",),
        buckets=AIRTIME_BUCKETS,
    ).labels(engine=engine).observe(airtime)


def record_kernel_stats(engine: str, stats) -> None:
    """Bulk counters for a vectorized kernel run.

    ``stats`` is the kernel's :class:`~repro.sim.metrics.InventoryStats`;
    the increments land on exactly the label combinations the exact
    reader would have produced slot by slot (kernels draw misses only in
    the collided->single direction and see no captures).
    """
    reg = STATE.registry
    slots = _slots_counter()
    counts = stats.true_counts
    missed = stats.missed_collisions
    if counts.idle:
        slots.labels(true_type="IDLE", detected_type="IDLE").inc(counts.idle)
    if counts.single:
        slots.labels(true_type="SINGLE", detected_type="SINGLE").inc(
            counts.single
        )
    if counts.collided - missed:
        slots.labels(true_type="COLLIDED", detected_type="COLLIDED").inc(
            counts.collided - missed
        )
    if missed:
        slots.labels(true_type="COLLIDED", detected_type="SINGLE").inc(missed)
        reg.counter(
            MISDETECTIONS, "Detector errors by kind", labelnames=("kind",)
        ).labels(kind="missed_collision").inc(missed)
    if counts.single:
        reg.counter(IDENTIFIED, "Tags successfully identified").inc(
            counts.single
        )
    record_inventory(engine, stats.frames, stats.total_time)
