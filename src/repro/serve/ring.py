"""Consistent-hash ring: stable key -> backend placement for the fleet.

The router hashes every grid point's :func:`repro.experiments.cache.cache_key`
content hash onto this ring, so one key always lands on one backend.
That placement is what turns the single-process guarantees into
fleet-wide ones:

* **coalescing** -- N identical concurrent requests all route to the
  same backend, whose in-process :class:`~repro.serve.coalesce.Coalescer`
  dedupes them onto one kernel run;
* **cache locality** -- a key's backend is its L1-memo home, and the
  only routine *writer* of that key in the shared on-disk L2 (the
  single-writer discipline: ownership changes only on ring membership
  changes, and the PR-5 unique-temp-file protocol keeps even those
  transitions safe);
* **minimal disruption** -- ejecting or adding one of N backends remaps
  only the keys whose arc moved (~K/N of them), never reshuffling the
  whole fleet -- the property the Hypothesis suite in
  ``tests/serve/test_ring.py`` pins.

Implementation: each node contributes ``vnodes`` points ("virtual
nodes") at ``sha256(node + "#" + i)`` positions on a 64-bit ring; a key
is owned by the first node point at or clockwise after
``sha256(key)``.  Everything is deterministic across processes and
Python versions (no ``hash()``), so router restarts preserve placement.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator, Sequence

__all__ = ["EmptyRingError", "HashRing", "DEFAULT_VNODES"]

#: Virtual nodes per backend.  128 points keeps the max/mean load skew
#: of a random key population within ~30% for small fleets while the
#: ring stays tiny (N * 128 sorted 8-byte positions).
DEFAULT_VNODES = 128


class EmptyRingError(LookupError):
    """No healthy backend on the ring -- the router sheds with 503."""


def _position(data: str) -> int:
    """A deterministic 64-bit ring position."""
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Mutable consistent-hash ring of named nodes.

    Nodes are opaque non-empty strings (the router uses backend ids).
    ``add``/``remove`` are idempotent; ``owner`` is O(log(N * vnodes)).
    """

    def __init__(
        self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        #: Sorted, parallel arrays: position -> owning node.
        self._positions: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------

    def _points(self, node: str) -> Iterator[int]:
        return (_position(f"{node}#{i}") for i in range(self.vnodes))

    def add(self, node: str) -> bool:
        """Add ``node``; returns True if it was not already present."""
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            return False
        self._nodes.add(node)
        for point in self._points(node):
            at = bisect.bisect_left(self._positions, point)
            # sha256 collisions between distinct vnode labels are not a
            # realistic concern, but keep insertion deterministic anyway:
            # ties resolve by node name so add order cannot matter.
            while (
                at < len(self._positions)
                and self._positions[at] == point
                and self._owners[at] < node
            ):
                at += 1
            self._positions.insert(at, point)
            self._owners.insert(at, node)
        return True

    def remove(self, node: str) -> bool:
        """Remove ``node``; returns True if it was present."""
        if node not in self._nodes:
            return False
        self._nodes.remove(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._positions = [self._positions[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]
        return True

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    # -- placement ------------------------------------------------------

    def owner(self, key: str) -> str:
        """The node owning ``key``; raises :class:`EmptyRingError`."""
        if not self._positions:
            raise EmptyRingError("hash ring has no nodes")
        at = bisect.bisect_right(self._positions, _position(key))
        if at == len(self._positions):
            at = 0  # wrap: first point clockwise from the top
        return self._owners[at]

    def owners(self, key: str, n: int) -> list[str]:
        """Up to ``n`` distinct nodes in fallback (clockwise) order.

        The first entry is :meth:`owner`; later entries are where the
        key would land if every earlier owner were ejected -- the
        router's retry order.
        """
        if not self._positions:
            raise EmptyRingError("hash ring has no nodes")
        found: list[str] = []
        at = bisect.bisect_right(self._positions, _position(key))
        for step in range(len(self._positions)):
            node = self._owners[(at + step) % len(self._positions)]
            if node not in found:
                found.append(node)
                if len(found) >= min(n, len(self._nodes)):
                    break
        return found

    def spread(self, keys: Sequence[str]) -> dict[str, int]:
        """``{node: owned keys}`` over ``keys`` (testing/introspection)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts
