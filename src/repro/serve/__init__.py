"""repro.serve -- asyncio inventory-simulation service.

A dependency-free (stdlib asyncio) HTTP service exposing the
:mod:`repro.experiments` grid runner over the network, built around
three load-shaping mechanisms:

* **admission control** (:mod:`repro.serve.queue`) -- a bounded priority
  queue with per-client fair-share quotas; overload is shed as
  ``429 Too Many Requests`` plus a ``Retry-After`` estimate instead of
  melting down;
* **request coalescing** (:mod:`repro.serve.coalesce`) -- identical
  in-flight grid points (same result-cache content hash) compute once,
  with every duplicate request fed from the leader's future;
* **streaming results** (:mod:`repro.serve.server`) -- async jobs stream
  per-point results as NDJSON the moment they complete.

The remaining modules: :mod:`repro.serve.protocol` (versioned wire
schema and typed error envelopes), :mod:`repro.serve.workers` (the
asyncio/thread bridge onto ``ExperimentSuite`` + the shared executor and
result cache), :mod:`repro.serve.client` (blocking client with
Retry-After-aware backoff) and :mod:`repro.serve.loadgen` (open-loop
load generator behind the ``BENCH_serve`` baseline).

Above the single process sits the fleet tier: :mod:`repro.serve.http1`
(the shared HTTP/1.1 transport), :mod:`repro.serve.ring` (consistent
hashing), :mod:`repro.serve.backend` (subprocess supervision and health
probing) and :mod:`repro.serve.router` (``repro-serve-router``), which
consistent-hashes every grid point onto N backends so coalescing and the
memo/L2 cache tiers become fleet-wide guarantees.

Run the server with ``repro-serve`` or ``python -m repro.serve`` and the
fleet with ``repro-serve-router``; see ``docs/SERVING.md`` for the API
reference.

Submodules load lazily, mirroring :mod:`repro.verify`: ``workers``
imports the simulation stack and the client/loadgen are pure-stdlib --
eager imports would make ``import repro.serve`` pay for all of it.
"""

from __future__ import annotations

import importlib

_SUBMODULES = (
    "backend",
    "client",
    "coalesce",
    "http1",
    "loadgen",
    "protocol",
    "queue",
    "ring",
    "router",
    "server",
    "workers",
)

__all__ = list(_SUBMODULES)


def __getattr__(name: str):
    if name in _SUBMODULES:
        return importlib.import_module(f"repro.serve.{name}")
    raise AttributeError(f"module 'repro.serve' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_SUBMODULES))
