"""Job model, simulation engine bridge, and the asyncio worker pool.

This is the seam between the asyncio service and the synchronous
Monte-Carlo machinery of :mod:`repro.experiments`:

* :class:`Job` -- one admitted simulate request: its grid points, its
  per-point results (published as they complete, consumable as an async
  stream for NDJSON responses), and its terminal state;
* :class:`SimulationEngine` -- the blocking compute bridge.  It owns one
  shared :func:`repro.experiments.parallel.make_executor` pool and a
  table of :class:`~repro.experiments.runner.ExperimentSuite` instances
  keyed by ``(rounds, seed)``, so every request reuses the same process
  pool, the same in-memory memo and the same on-disk
  :class:`~repro.experiments.cache.ResultCache`.  Worker-process obs
  registries fold into the server registry through the executor's
  existing merge path;
* :class:`WorkerPool` -- N asyncio tasks pulling grid points off the
  admission queue, running the engine in worker threads
  (``asyncio.to_thread``) so the event loop never blocks, and
  deduplicating identical in-flight points through the
  :class:`~repro.serve.coalesce.Coalescer`.
"""

from __future__ import annotations

import asyncio
import itertools
import secrets
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.experiments.cache import cache_key
from repro.experiments.runner import ExperimentSuite
from repro.experiments.parallel import make_executor
from repro.obs import context as _ctx
from repro.obs import instruments as _inst
from repro.obs.state import STATE as _OBS
from repro.obs.tracing import Tracer
from repro.serve.coalesce import Coalescer
from repro.serve.protocol import GridPoint, SimulateRequest
from repro.serve.queue import AdmissionQueue, QueueClosed

__all__ = [
    "Job",
    "PointResult",
    "WorkItem",
    "SimulationEngine",
    "WorkerPool",
    "new_job_id",
]

#: Engine keeps at most this many (rounds, seed) suites memoized; beyond
#: it the least-recently-used suite's in-memory memo is dropped (the
#: on-disk cache still serves its grid points).
MAX_SUITES = 64

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"


def new_job_id() -> str:
    return f"job-{secrets.token_hex(8)}"


@dataclass
class PointResult:
    """One completed grid point of a job."""

    point: GridPoint
    stats: dict
    source: str  # computed | cache | memo | coalesced


@dataclass
class WorkItem:
    """One queued grid point, tagged with its owning job.

    ``enqueued_s`` (``time.perf_counter`` at admission) feeds the
    ``serve.queue_wait`` span and stage histogram when a worker finally
    dequeues the item; trace identity (request id, root span) lives on
    the owning job.
    """

    job: "Job"
    point: GridPoint
    enqueued_s: float = 0.0

    @property
    def client(self) -> str:
        return self.job.request.client


class Job:
    """An admitted simulate request and its (streamed) results.

    Results are appended on the event-loop thread; readers either block
    on :meth:`wait_done` (sync responses) or iterate :meth:`stream`
    (NDJSON), which replays completed points and then follows live ones.
    """

    def __init__(
        self,
        request: SimulateRequest,
        job_id: str | None = None,
        request_id: str | None = None,
    ):
        self.id = job_id if job_id is not None else new_job_id()
        self.request = request
        #: The admitting HTTP request's ``X-Request-Id`` -- the join key
        #: between this job's NDJSON output, the access log and the
        #: serve span tree.
        self.request_id = request_id
        #: Span id of the admitting request's ``serve.request`` span,
        #: so per-point spans (possibly emitted after an async 202 has
        #: already closed that span) still parent under it.
        self.root_span_id: int | None = None
        self.state = JOB_QUEUED
        self.results: list[PointResult] = []
        self.error: str | None = None
        #: Per-stage wall-time attribution, aggregated max-over-points
        #: (points run concurrently, so the max approximates the
        #: critical path; backs the ``Server-Timing`` response header).
        self.stage_s: dict[str, float] = {}
        self.created_s = time.monotonic()
        self.finished_s: float | None = None
        self._done = asyncio.Event()
        self._wakeup = asyncio.Event()

    def note_stage(self, stage: str, seconds: float) -> None:
        """Fold one point's stage duration into the job's attribution."""
        held = self.stage_s.get(stage)
        if held is None or seconds > held:
            self.stage_s[stage] = seconds

    @property
    def source_counts(self) -> dict[str, int]:
        """``{source: n_points}`` over the results published so far."""
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.source] = counts.get(result.source, 0) + 1
        return counts

    @property
    def n_points(self) -> int:
        return len(self.request.points)

    @property
    def elapsed_s(self) -> float:
        end = self.finished_s if self.finished_s is not None else time.monotonic()
        return end - self.created_s

    def _broadcast(self) -> None:
        # Swap-and-set: every reader awaiting the *old* event wakes, new
        # readers park on the fresh one.
        wakeup, self._wakeup = self._wakeup, asyncio.Event()
        wakeup.set()

    def publish(self, result: PointResult) -> None:
        if self.state == JOB_QUEUED:
            self.state = JOB_RUNNING
        self.results.append(result)
        self._broadcast()

    def finish(self, state: str, error: str | None = None) -> None:
        if self.state in (JOB_DONE, JOB_FAILED):
            return
        self.state = state
        self.error = error
        self.finished_s = time.monotonic()
        self._done.set()
        self._broadcast()

    @property
    def done(self) -> bool:
        return self.state in (JOB_DONE, JOB_FAILED)

    async def wait_done(self) -> None:
        await self._done.wait()

    async def stream(self):
        """Async-iterate every :class:`PointResult`, past and future."""
        i = 0
        while True:
            while i < len(self.results):
                yield self.results[i]
                i += 1
            if self.done:
                return
            wakeup = self._wakeup
            if i < len(self.results) or self.done:
                continue  # published between the checks and the grab
            await wakeup.wait()


class SimulationEngine:
    """Thread-side bridge from grid points to ``ExperimentSuite`` runs.

    One engine per server.  All suites share one executor (so ``workers``
    processes total, regardless of how many distinct (rounds, seed)
    combinations clients ask for) and one cache directory.  Safe to call
    from multiple worker threads: suite creation is locked, and the
    underlying executors/caches are already concurrency-safe.
    """

    def __init__(
        self,
        mc_workers: int = 1,
        cache_dir=None,
        compute_floor_s: float = 0.0,
    ) -> None:
        self._executor = make_executor(mc_workers)
        self.mc_workers = self._executor.workers
        self._cache_dir = cache_dir
        self.compute_floor_s = compute_floor_s
        self._suites: dict[tuple[int, int], ExperimentSuite] = {}
        self._lock = threading.Lock()
        #: EWMA of seconds per *computed* point; seeds Retry-After
        #: estimates before the first computation lands.
        self.point_seconds_ewma = 0.05

    def _suite(self, rounds: int, seed: int) -> ExperimentSuite:
        key = (rounds, seed)
        with self._lock:
            suite = self._suites.get(key)
            if suite is None:
                suite = ExperimentSuite(
                    rounds=rounds,
                    seed=seed,
                    executor=self._executor,
                    cache_dir=self._cache_dir,
                )
                self._suites[key] = suite
                # LRU-ish bound: drop the oldest suite's memo.  Never
                # suite.close() here -- the executor is shared.
                while len(self._suites) > MAX_SUITES:
                    self._suites.pop(next(iter(self._suites)))
            else:
                self._suites[key] = self._suites.pop(key)  # mark recent
            return suite

    def key_for(self, rounds: int, seed: int, point: GridPoint) -> str:
        """The PR-2 result-cache content hash of one grid point."""
        suite = self._suite(rounds, seed)
        return cache_key(
            suite._cache_params(point.case, point.protocol, point.scheme)
        )

    def compute_point(
        self, rounds: int, seed: int, point: GridPoint
    ) -> tuple[dict, str]:
        """Run (or fetch) one grid point; blocking, thread-safe.

        Returns ``(stats_dict, source)`` with source ``memo`` (suite
        in-memory memo), ``cache`` (on-disk result cache) or ``computed``
        (a kernel run, counted into the EWMA and subject to the optional
        compute floor).
        """
        suite = self._suite(rounds, seed)
        memo_key = (point.case, point.protocol, point.scheme)
        if memo_key in suite._cache:
            return asdict(suite.run(*memo_key)), "memo"
        params = suite._cache_params(*memo_key)
        cached = suite._load_cached(params)
        if cached is not None:
            suite._cache[memo_key] = cached
            return asdict(cached), "cache"
        t0 = time.perf_counter()
        stats = suite.run(*memo_key)
        elapsed = time.perf_counter() - t0
        self._note_point_seconds(elapsed)
        if self.compute_floor_s > elapsed:
            # Load-testing aid: enforce a minimum service time per
            # computed point so capacity experiments (and the drain /
            # backpressure tests) see deterministic queueing.
            time.sleep(self.compute_floor_s - elapsed)
        return asdict(stats), "computed"

    def _note_point_seconds(self, elapsed: float) -> None:
        """Fold one computed point's wall time into the EWMA.

        Worker threads land here concurrently via ``asyncio.to_thread``;
        the read-modify-write must hold the engine lock or concurrent
        updates silently drop each other's contributions.
        """
        with self._lock:
            self.point_seconds_ewma = (
                0.8 * self.point_seconds_ewma + 0.2 * elapsed
            )

    def close(self) -> None:
        self._executor.close()


def _count(name: str, help_: str, amount: float = 1, **labels) -> None:
    if not _OBS.enabled:
        return
    family = _OBS.registry.counter(
        name, help_, labelnames=tuple(labels) if labels else ()
    )
    (family.labels(**labels) if labels else family).inc(amount)


def _gauge_set(name: str, help_: str, value: float) -> None:
    if not _OBS.enabled:
        return
    _OBS.registry.gauge(name, help_).set(value)


def observe_stage(stage: str, seconds: float, job: "Job | None" = None) -> None:
    """Record one stage duration: histogram + (optionally) the job.

    The histogram lands only when observability is enabled; the job's
    ``Server-Timing`` attribution is always kept (the header is part of
    the wire contract, not the tracing ablation).
    """
    if job is not None:
        job.note_stage(stage, seconds)
    if _OBS.enabled:
        _OBS.registry.histogram(
            _inst.SERVE_STAGE_SECONDS,
            "Wall time per serve pipeline stage",
            labelnames=("stage",),
        ).labels(stage=stage).observe(seconds)


class WorkerPool:
    """N asyncio workers draining the admission queue through the engine."""

    def __init__(
        self,
        queue: AdmissionQueue,
        coalescer: Coalescer,
        engine: SimulationEngine,
        concurrency: int = 4,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.queue = queue
        self.coalescer = coalescer
        self.engine = engine
        self.concurrency = concurrency
        self._tasks: list[asyncio.Task] = []
        self.in_flight = 0
        #: Live per-point progress for ``/debugz``: token -> info dict
        #: whose ``stage`` field is updated in place as the point moves
        #: through the pipeline.  Event-loop only; no locking.
        self._inflight_info: dict[int, dict] = {}
        self._inflight_tokens = itertools.count(1)

    async def start(self) -> None:
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.concurrency)
        ]

    async def join(self) -> None:
        """Wait for every worker to exit (the queue must be closed)."""
        if self._tasks:
            await asyncio.gather(*self._tasks)

    async def abort(self) -> None:
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)

    # -- the worker loop ------------------------------------------------

    async def _worker(self) -> None:
        while True:
            try:
                item = await self.queue.get()
            except QueueClosed:
                return
            _gauge_set(
                _inst.SERVE_QUEUE_DEPTH,
                "Grid points awaiting a worker",
                self.queue.depth(),
            )
            await self._process(item)

    def inflight_snapshot(self) -> list[dict]:
        """Live per-point progress (``/debugz``): stage + age per point."""
        now = time.perf_counter()
        return [
            {
                "request_id": info["request_id"],
                "job_id": info["job_id"],
                "client": info["client"],
                "point": info["point"],
                "stage": info["stage"],
                "age_s": round(now - info["since"], 6),
            }
            for info in self._inflight_info.values()
        ]

    async def _process(self, item: WorkItem) -> None:
        job = item.job
        if job.done:
            return  # a sibling point already failed the whole job
        request = job.request
        dequeued = time.perf_counter()
        if item.enqueued_s:
            observe_stage("queue_wait", dequeued - item.enqueued_s, job)
        # Request-scoped tracer: shares the process sink but parents its
        # spans under the admitting request's ``serve.request`` span and
        # stamps every record with the request id.  Bound via
        # contextvars so the ``to_thread`` compute below inherits it --
        # that is what nests the engine's grid_point -> inventory ->
        # frame -> slot spans inside this request's tree.
        obs_on = _OBS.enabled
        tracer: Tracer | None = None
        if obs_on and job.request_id is not None:
            tracer = Tracer(
                _OBS.tracer.sink,
                trace_id=job.request_id,
                root_parent_id=job.root_span_id,
            )
            if item.enqueued_s:
                tracer.emit_span(
                    "serve.queue_wait",
                    item.enqueued_s,
                    dequeued,
                    point=item.point.to_wire(),
                )
        token = next(self._inflight_tokens)
        info = {
            "request_id": job.request_id,
            "job_id": job.id,
            "client": request.client,
            "point": item.point.to_wire(),
            "stage": "keying",
            "since": dequeued,
        }
        self._inflight_info[token] = info
        self.in_flight += 1
        _gauge_set(
            _inst.SERVE_INFLIGHT,
            "Grid points currently executing",
            self.in_flight,
        )
        try:
            with _ctx.bound_context(tracer=tracer, request_id=job.request_id):
                key = self.engine.key_for(
                    request.rounds, request.seed, item.point
                )
                leader, fut = self.coalescer.lease(key)
                role = "leader" if leader else "follower"
                if tracer is not None:
                    tracer.start_span(
                        "serve.coalesce",
                        role=role,
                        key=key,
                        point=item.point.to_wire(),
                    )
                t_stage = time.perf_counter()
                try:
                    if leader:
                        info["stage"] = "compute"
                        if tracer is not None:
                            tracer.start_span("serve.compute", key=key)
                        t_compute = time.perf_counter()
                        try:
                            stats, source = await asyncio.to_thread(
                                self.engine.compute_point,
                                request.rounds,
                                request.seed,
                                item.point,
                            )
                        except BaseException as exc:
                            self.coalescer.resolve(key, error=exc)
                            raise
                        finally:
                            if tracer is not None:
                                tracer.end_span()  # serve.compute
                            observe_stage(
                                "compute",
                                time.perf_counter() - t_compute,
                                job,
                            )
                        self.coalescer.resolve(key, (stats, source))
                    else:
                        info["stage"] = "coalesce_wait"
                        _count(
                            _inst.SERVE_COALESCE_HITS,
                            "Grid points deduplicated onto an in-flight "
                            "computation",
                        )
                        stats, _ = await asyncio.shield(fut)
                        source = "coalesced"
                finally:
                    if tracer is not None:
                        tracer.end_span(role=role)  # serve.coalesce
                    observe_stage(
                        "coalesce", time.perf_counter() - t_stage, job
                    )
            _count(
                _inst.SERVE_POINTS,
                "Grid points served, by result source",
                source=source,
            )
            info["stage"] = "publish"
            job.publish(PointResult(point=item.point, stats=stats, source=source))
            if len(job.results) == job.n_points:
                job.finish(JOB_DONE)
                _count(_inst.SERVE_JOBS, "Jobs finished, by state", state=JOB_DONE)
        except asyncio.CancelledError:
            job.finish(JOB_FAILED, "server aborted")
            raise
        except BaseException as exc:
            job.finish(JOB_FAILED, f"{type(exc).__name__}: {exc}")
            _count(_inst.SERVE_JOBS, "Jobs finished, by state", state=JOB_FAILED)
        finally:
            del self._inflight_info[token]
            self.in_flight -= 1
            _gauge_set(
                _inst.SERVE_INFLIGHT,
                "Grid points currently executing",
                self.in_flight,
            )
