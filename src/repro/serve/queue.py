"""Bounded admission queue: priorities, per-client fairness, backpressure.

The service admits work *all-or-nothing* per request: either every grid
point of a job fits under the queue's capacity (and the client's quota),
or the whole request is rejected with a typed 429 carrying a
``Retry-After`` estimate.  Overload therefore sheds load at the front
door instead of queueing unboundedly and melting down.

Ordering within the queue:

* **priority first** -- higher ``priority`` (0..9) dequeues sooner;
* **fair within a priority** -- entries are ranked by how many items the
  submitting client already had queued at that priority, so two clients
  interleave round-robin instead of the first burst starving the second
  (weighted fair queueing with unit weights);
* **FIFO as the tiebreak** -- equal (priority, rank) falls back to
  arrival order.

The queue is asyncio-native (``get`` suspends; ``put_batch`` wakes one
waiter per item) but keeps no loop reference, so it can be built before
the loop starts and unit-tested with short ``asyncio.run`` snippets.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import math
from typing import Iterator, Sequence

__all__ = [
    "AdmissionError",
    "QueueFull",
    "ClientQuotaExceeded",
    "QueueClosed",
    "AdmissionQueue",
]


class AdmissionError(Exception):
    """A rejected admission; ``retry_after_s`` backs the 429 header."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class QueueFull(AdmissionError):
    """The batch does not fit under the queue's total capacity."""


class ClientQuotaExceeded(AdmissionError):
    """The batch would push one client past its fair-share quota."""


class QueueClosed(Exception):
    """Raised by ``get`` once the queue is closed *and* fully drained,
    and by ``put_batch`` immediately after ``close`` (drain mode)."""


class AdmissionQueue:
    """Priority queue with capacity, per-client quotas and fair ordering.

    Parameters
    ----------
    capacity:
        Maximum queued items (grid points) across all clients.
    per_client:
        Maximum queued items any single client may hold; defaults to
        ``max(1, capacity // 4)`` so one client can never occupy the
        whole queue.
    service_time_s:
        Estimated seconds one worker spends per item, as a float or a
        zero-arg callable (the server passes the engine's live EWMA).
        Backs the ``Retry-After`` hints :meth:`put_batch` attaches to
        its rejections; ``None`` keeps the 1-second floor.
    workers:
        Number of consumers draining the queue, for the same estimate.
    """

    def __init__(
        self,
        capacity: int = 512,
        per_client: int | None = None,
        *,
        service_time_s=None,
        workers: int = 1,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.per_client = (
            per_client if per_client is not None else max(1, capacity // 4)
        )
        if self.per_client < 1:
            raise ValueError("per_client must be >= 1")
        self._service_time_s = service_time_s
        self._workers = max(1, workers)
        # Entries are (-priority, rank, seq, client, item); the client is
        # carried in the tuple so ``get`` can release quota bookkeeping.
        self._heap: list[tuple[int, int, int, str, object]] = []
        self._seq = itertools.count()
        self._queued_per_client: dict[str, int] = {}
        # (priority, client) -> next fairness rank.  Reset for a client
        # when its queued count returns to zero, so ranks stay small.
        self._ranks: dict[tuple[int, str], int] = {}
        self._waiters: list[asyncio.Future] = []
        self._closed = False

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    def depth(self) -> int:
        return len(self._heap)

    def client_depth(self, client: str) -> int:
        return self._queued_per_client.get(client, 0)

    def snapshot(self) -> dict:
        """Live introspection document for ``/debugz``.

        Walks the heap (O(depth), bounded by ``capacity``) to break the
        queued population down by priority; the per-client breakdown
        reuses the quota bookkeeping.  Keys are strings so the document
        is JSON-clean as-is.
        """
        by_priority: dict[str, int] = {}
        for neg_priority, _rank, _seq, _client, _item in self._heap:
            key = str(-neg_priority)
            by_priority[key] = by_priority.get(key, 0) + 1
        return {
            "depth": len(self._heap),
            "capacity": self.capacity,
            "per_client_quota": self.per_client,
            "closed": self._closed,
            "by_priority": dict(sorted(by_priority.items())),
            "by_client": dict(sorted(self._queued_per_client.items())),
        }

    @property
    def closed(self) -> bool:
        return self._closed

    def estimate_wait_s(
        self, per_item_s: float | None = None, workers: int | None = None
    ) -> float:
        """Rough seconds until new work would start draining.

        ``depth * per_item_s / workers``, floored at 1 second so the
        ``Retry-After`` header is never 0 (clients should always back
        off a beat when rejected).  NaN/zero service-time estimates fall
        back to the floor.  Arguments default to the values configured
        at construction (resolving a callable ``service_time_s`` live),
        which is what :meth:`put_batch` uses for its rejection hints.
        """
        if per_item_s is None:
            per_item_s = self._service_time_s
            if callable(per_item_s):
                per_item_s = per_item_s()
        workers = max(1, self._workers if workers is None else workers)
        if not per_item_s or math.isnan(per_item_s):
            return 1.0
        return max(1.0, len(self._heap) * per_item_s / workers)

    # -- producing ------------------------------------------------------

    def put_batch(
        self, items: Sequence[object], *, client: str, priority: int
    ) -> None:
        """Admit every item or none.

        Raises :class:`QueueFull` / :class:`ClientQuotaExceeded` with a
        retry hint (the caller turns either into a 429), or
        :class:`QueueClosed` once draining has begun.
        """
        if self._closed:
            raise QueueClosed("queue is draining; not admitting new work")
        if not items:
            return
        if len(self._heap) + len(items) > self.capacity:
            raise QueueFull(
                f"queue full ({len(self._heap)}/{self.capacity} queued, "
                f"batch of {len(items)} rejected)",
                retry_after_s=self.estimate_wait_s(),
            )
        held = self._queued_per_client.get(client, 0)
        if held + len(items) > self.per_client:
            raise ClientQuotaExceeded(
                f"client {client!r} holds {held} queued items; admitting "
                f"{len(items)} more would exceed the per-client quota "
                f"of {self.per_client}",
                retry_after_s=self.estimate_wait_s(),
            )
        rank_key = (priority, client)
        rank = self._ranks.get(rank_key, 0)
        for item in items:
            heapq.heappush(
                self._heap, (-priority, rank, next(self._seq), client, item)
            )
            rank += 1
        self._ranks[rank_key] = rank
        self._queued_per_client[client] = held + len(items)
        self._wake(len(items))

    def _wake(self, n: int) -> None:
        while n > 0 and self._waiters:
            fut = self._waiters.pop(0)
            if not fut.done():
                fut.set_result(None)
                n -= 1

    # -- consuming ------------------------------------------------------

    def _pop(self) -> object:
        _, _, _, client, item = heapq.heappop(self._heap)
        if client in self._queued_per_client:
            left = self._queued_per_client[client] - 1
            if left <= 0:
                del self._queued_per_client[client]
                # Client fully drained: forget its fairness ranks so the
                # counters cannot grow without bound.
                for key in [k for k in self._ranks if k[1] == client]:
                    del self._ranks[key]
            else:
                self._queued_per_client[client] = left
        return item

    async def get(self) -> object:
        """Next item by (priority, fairness, arrival); suspends if empty.

        Raises :class:`QueueClosed` when the queue is closed and empty --
        the worker-pool shutdown signal.
        """
        while True:
            if self._heap:
                return self._pop()
            if self._closed:
                raise QueueClosed("queue closed and drained")
            fut: asyncio.Future = (
                asyncio.get_running_loop().create_future()
            )
            self._waiters.append(fut)
            try:
                await fut
            except asyncio.CancelledError:
                if fut in self._waiters:
                    self._waiters.remove(fut)
                raise

    def drain_items(self) -> Iterator[object]:
        """Pop everything synchronously (used by tests and hard aborts)."""
        while self._heap:
            yield self._pop()

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Enter drain mode: reject new work, let ``get`` empty the heap,
        then raise :class:`QueueClosed` to every (current and future)
        waiter."""
        self._closed = True
        for fut in self._waiters:
            if not fut.done():
                fut.set_result(None)  # wake; get() re-checks and raises
        self._waiters.clear()
