"""Backend fleet management for the router: spawn, watch, eject, respawn.

A *backend* is one ``repro-serve`` process.  The router either **spawns**
its backends (``repro-serve-router --backends N``: subprocesses on
ephemeral ports, discovered from the startup banner, supervised and
respawned on death) or **attaches** to externally managed ones
(``--attach host:port,...``), and in both cases drives the same health
state machine:

``starting`` -> ``healthy`` <-> ``unreachable``/``draining`` -> ``dead``

* a backend answering ``GET /healthz`` with ``status: ok`` is *healthy*
  and sits on the hash ring;
* one answering ``status: draining`` (SIGTERM received) or failing the
  probe is **ejected** from the ring -- its keys remap to the surviving
  backends and in-flight forwards retry there;
* a spawned backend whose process exits is *dead*; with ``restart`` it
  is respawned (new port, same identity) and rejoins the ring once its
  ``/healthz`` passes again.

Ejection is also **passive**: the router reports forward-time transport
errors straight into :meth:`BackendSupervisor.eject`, so a SIGKILLed
backend leaves the ring at the first failed request, not a probe period
later.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.serve import http1

__all__ = [
    "STARTING",
    "HEALTHY",
    "DRAINING",
    "UNREACHABLE",
    "DEAD",
    "BackendSpawnConfig",
    "Backend",
    "BackendSupervisor",
]

STARTING = "starting"
HEALTHY = "healthy"
DRAINING = "draining"
UNREACHABLE = "unreachable"
DEAD = "dead"

#: Stdout/stderr lines kept per backend for diagnostics (/healthz dump).
BANNER_TIMEOUT_S = 60.0
LOG_TAIL = 50


@dataclass
class BackendSpawnConfig:
    """How the router launches its ``repro-serve`` subprocesses."""

    concurrency: int = 4
    mc_workers: int = 1
    queue_capacity: int = 512
    cache_dir: str | None = None  # the shared L2 tier
    compute_floor_s: float = 0.0
    drain_grace_s: float = 30.0
    extra_args: tuple[str, ...] = ()

    def argv(self) -> list[str]:
        args = [
            sys.executable,
            "-m",
            "repro.serve",
            "--port",
            "0",
            "--concurrency",
            str(self.concurrency),
            "--mc-workers",
            str(self.mc_workers),
            "--queue-capacity",
            str(self.queue_capacity),
            "--drain-grace",
            str(self.drain_grace_s),
        ]
        if self.cache_dir is not None:
            args += ["--cache-dir", self.cache_dir]
        if self.compute_floor_s:
            args += ["--compute-floor", str(self.compute_floor_s)]
        args.extend(self.extra_args)
        return args


def _spawn_env() -> dict[str, str]:
    """Subprocess env that can import ``repro`` exactly like this process."""
    env = dict(os.environ)
    import repro

    src = str(os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__))))
    existing = env.get("PYTHONPATH")
    if not existing or src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


class Backend:
    """One ``repro-serve`` instance: address, state, optional process."""

    def __init__(
        self,
        backend_id: str,
        host: str | None = None,
        port: int | None = None,
        spawn_config: BackendSpawnConfig | None = None,
    ) -> None:
        if (host is None or port is None) and spawn_config is None:
            raise ValueError("backend needs an address or a spawn config")
        self.id = backend_id
        self.host = host or "127.0.0.1"
        self.port = port
        self.spawn_config = spawn_config
        self.state = STARTING
        self.process: asyncio.subprocess.Process | None = None
        self.restarts = 0
        self.last_error: str | None = None
        self.log_tail: deque[str] = deque(maxlen=LOG_TAIL)
        self._drain_task: asyncio.Task | None = None

    @property
    def spawned(self) -> bool:
        return self.spawn_config is not None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def snapshot(self) -> dict:
        doc: dict[str, object] = {
            "id": self.id,
            "url": self.url if self.port is not None else None,
            "state": self.state,
            "spawned": self.spawned,
            "restarts": self.restarts,
        }
        if self.process is not None:
            doc["pid"] = self.process.pid
        if self.last_error:
            doc["last_error"] = self.last_error
        return doc

    # -- process lifecycle ---------------------------------------------

    async def spawn(self) -> None:
        """Start the subprocess and discover its ephemeral port."""
        assert self.spawn_config is not None
        if self._drain_task is not None:
            self._drain_task.cancel()
            self._drain_task = None
        self.process = await asyncio.create_subprocess_exec(
            *self.spawn_config.argv(),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=_spawn_env(),
        )
        self.port = await asyncio.wait_for(
            self._await_banner(), timeout=BANNER_TIMEOUT_S
        )
        # Keep draining stdout forever: a full pipe would wedge the
        # backend; the tail doubles as the crash diagnostic.
        self._drain_task = asyncio.create_task(
            self._drain_stdout(), name=f"backend-{self.id}-stdout"
        )

    async def _await_banner(self) -> int:
        assert self.process is not None and self.process.stdout is not None
        while True:
            raw = await self.process.stdout.readline()
            if not raw:
                raise RuntimeError(
                    f"backend {self.id} exited before its banner "
                    f"(tail: {list(self.log_tail)!r})"
                )
            line = raw.decode("utf-8", "replace").rstrip()
            self.log_tail.append(line)
            if "listening on " in line:
                host_port = line.split("listening on ", 1)[1].split(" ")[0]
                host, _, port = host_port.rpartition(":")
                self.host = host
                return int(port)

    async def _drain_stdout(self) -> None:
        assert self.process is not None and self.process.stdout is not None
        try:
            while True:
                raw = await self.process.stdout.readline()
                if not raw:
                    return
                self.log_tail.append(raw.decode("utf-8", "replace").rstrip())
        except asyncio.CancelledError:  # pragma: no cover - teardown
            raise

    async def terminate(self, grace_s: float = 30.0) -> None:
        """SIGTERM the spawned process (drain) and wait; SIGKILL stragglers."""
        if self.process is None or self.process.returncode is not None:
            return
        try:
            self.process.terminate()
        except ProcessLookupError:  # pragma: no cover - already gone
            return
        try:
            await asyncio.wait_for(self.process.wait(), timeout=grace_s)
        except asyncio.TimeoutError:  # pragma: no cover - pathological
            self.process.kill()
            await self.process.wait()


class BackendSupervisor:
    """Owns the backend set: health probes, ring callbacks, respawns.

    ``on_up(backend)`` / ``on_down(backend, reason)`` fire on every state
    edge into/out of ``healthy`` -- the router wires them to ring
    ``add``/``remove`` plus its ejection metrics.  Both run on the event
    loop, so membership changes are serialized with request routing.
    """

    def __init__(
        self,
        backends: list[Backend],
        *,
        on_up: Callable[[Backend], None],
        on_down: Callable[[Backend, str], None],
        health_interval_s: float = 0.5,
        health_timeout_s: float = 2.0,
        restart: bool = True,
        restart_backoff_s: float = 0.5,
    ) -> None:
        self.backends = backends
        self._on_up = on_up
        self._on_down = on_down
        self.health_interval_s = health_interval_s
        self.health_timeout_s = health_timeout_s
        self.restart = restart
        self.restart_backoff_s = restart_backoff_s
        self._tasks: list[asyncio.Task] = []
        self._stopping = False

    def by_id(self, backend_id: str) -> Backend | None:
        for backend in self.backends:
            if backend.id == backend_id:
                return backend
        return None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        spawns = [b for b in self.backends if b.spawned]
        if spawns:
            await asyncio.gather(*(b.spawn() for b in spawns))
        self._tasks = [
            asyncio.create_task(
                self._watch(b), name=f"backend-watch-{b.id}"
            )
            for b in self.backends
        ]

    async def stop(self, grace_s: float = 30.0) -> None:
        """Stop probing, then SIGTERM-drain every spawned backend."""
        self._stopping = True
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        spawned = [b for b in self.backends if b.spawned]
        if spawned:
            await asyncio.gather(
                *(b.terminate(grace_s) for b in spawned)
            )
        for backend in self.backends:
            if backend._drain_task is not None:
                backend._drain_task.cancel()
                await asyncio.gather(
                    backend._drain_task, return_exceptions=True
                )
                backend._drain_task = None

    # -- state edges ----------------------------------------------------

    def _mark(self, backend: Backend, state: str, reason: str) -> None:
        was_healthy = backend.state == HEALTHY
        backend.state = state
        if state == HEALTHY and not was_healthy:
            backend.last_error = None
            self._on_up(backend)
        elif state != HEALTHY and was_healthy:
            backend.last_error = reason
            self._on_down(backend, reason)

    def eject(self, backend: Backend, reason: str) -> None:
        """Passive ejection: a forward just failed against this backend.

        Removes it from the ring immediately (via ``on_down``); the
        probe loop re-admits it when ``/healthz`` passes again.
        """
        if backend.state == HEALTHY:
            self._mark(backend, UNREACHABLE, reason)

    # -- the probe loop -------------------------------------------------

    async def _watch(self, backend: Backend) -> None:
        while True:
            try:
                await self._probe(backend)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # pragma: no cover - defensive
                backend.last_error = f"probe error: {exc!r}"
            await asyncio.sleep(self.health_interval_s)

    async def _probe(self, backend: Backend) -> None:
        process = backend.process
        if backend.spawned and process is not None and process.returncode is not None:
            self._mark(
                backend, DEAD, f"process exited {process.returncode}"
            )
            if self.restart and not self._stopping:
                await asyncio.sleep(self.restart_backoff_s)
                try:
                    backend.restarts += 1
                    await backend.spawn()
                    backend.state = STARTING
                except (OSError, RuntimeError, asyncio.TimeoutError) as exc:
                    backend.last_error = f"respawn failed: {exc}"
            return
        if backend.port is None:
            return
        try:
            status, _headers, payload = await http1.fetch(
                backend.host,
                backend.port,
                "GET",
                "/healthz",
                timeout_s=self.health_timeout_s,
                connect_timeout_s=self.health_timeout_s,
            )
            doc = json.loads(payload.decode("utf-8"))
        except (
            ConnectionError,
            OSError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ValueError,
            http1.HttpError,
        ) as exc:
            self._mark(
                backend, UNREACHABLE, f"healthz failed: {type(exc).__name__}"
            )
            return
        if status == 200 and doc.get("status") == "ok":
            self._mark(backend, HEALTHY, "healthz ok")
        elif doc.get("status") == "draining":
            self._mark(backend, DRAINING, "backend draining")
        else:
            self._mark(
                backend, UNREACHABLE, f"healthz status {status}: {doc!r}"
            )
