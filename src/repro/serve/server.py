"""``repro-serve`` -- the asyncio HTTP/1.1 simulation service.

Dependency-free (stdlib ``asyncio`` streams; no web framework).  Routes:

==========================  ==========================================
``POST /v1/simulate``       run a grid (``mode: sync`` waits and returns
                            every result; ``mode: async`` returns 202 +
                            a job id immediately)
``GET /v1/jobs/<id>``       NDJSON stream: a job header line, one line
                            per grid point as it completes, a terminal
                            ``done`` line
``GET /healthz``            liveness + queue/drain snapshot
``GET /debugz``             live introspection: queue depths per
                            priority/client, in-flight points with age
                            and stage, the coalesce table, and the
                            slowest recent requests
``GET /metrics``            Prometheus text exposition of the process
                            registry (server + engine + folded worker
                            metrics)
==========================  ==========================================

Every request carries an ``X-Request-Id`` (client-supplied when well
formed, generated otherwise), echoed on every response -- including
typed error envelopes -- and stamped on the request's span tree
(``serve.request`` -> ``serve.queue_wait`` / ``serve.coalesce`` /
``serve.compute`` / ``serve.stream``) plus the structured access log,
so one slow request is fully reconstructible offline
(``repro-obs-report serve``; docs/OBSERVABILITY.md).

Overload never 500s: a request that does not fit under the admission
queue's capacity (or the client's fair-share quota) is rejected with
``429`` + ``Retry-After``; SIGTERM/SIGINT enter *drain* mode -- new
simulate calls get ``503 draining`` while queued and in-flight jobs run
to completion, then the process exits 0.

Connections are one-request-per-connection (``Connection: close``),
which keeps the HTTP layer small and makes EOF-delimited NDJSON
streaming trivially correct.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import signal
import sys
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro import obs
from repro.obs import context as _ctx
from repro.obs import instruments as _inst
from repro.obs.state import STATE as _OBS
from repro.obs.tracing import JsonlSink, NullSink, Tracer
from repro.sim.export import nan_to_none
from repro.serve import http1
from repro.serve import protocol as proto
from repro.serve.coalesce import Coalescer
from repro.serve.queue import AdmissionError, AdmissionQueue, QueueClosed
from repro.serve.workers import (
    JOB_DONE,
    Job,
    SimulationEngine,
    WorkItem,
    WorkerPool,
    observe_stage,
)

__all__ = ["ServeConfig", "ServeApp", "main", "build_parser"]

#: The HTTP wire plumbing (parsing limits, read timeout, response
#: framing) lives in :mod:`repro.serve.http1`, shared with the fleet
#: router so the two hops cannot drift.
REQUEST_READ_TIMEOUT = http1.REQUEST_READ_TIMEOUT

#: Finished jobs kept for late ``GET /v1/jobs/<id>`` readers.
FINISHED_JOB_BACKLOG = 1024

#: Completed requests remembered for ``/debugz``'s slow-request ring,
#: and how many of them (slowest-first) the endpoint reports.
RECENT_REQUESTS = 256
RECENT_SLOWEST = 16

#: Structured JSON access log (one JSON object per line, stdlib
#: ``logging``).  ``--access-log`` attaches a stderr handler; embedders
#: and tests attach their own handler to this logger instead.
_ACCESS_LOG = logging.getLogger("repro.serve.access")

_HttpError = http1.HttpError
_HttpRequest = http1.HttpRequest


@dataclass
class _RequestScope:
    """Per-request observability state threaded through dispatch.

    ``tracer``/``root_span_id`` anchor the request's span tree;
    ``access`` accumulates the fields the access-log line and the
    slow-request ring report after the response is sent.
    """

    request_id: str
    tracer: Tracer | None = None
    root_span_id: int | None = None
    access: dict = field(default_factory=dict)


@dataclass
class ServeConfig:
    """Everything ``repro-serve`` can be told from the command line."""

    host: str = "127.0.0.1"
    port: int = 8537
    concurrency: int = 4  # asyncio workers draining the queue
    queue_capacity: int = 512
    per_client: int | None = None  # default: capacity // 4
    mc_workers: int = 1  # processes per grid point (PR-2 executor)
    cache_dir: str | None = None  # on-disk ResultCache directory
    compute_floor_s: float = 0.0  # min service time per computed point
    drain_grace_s: float = 30.0  # max seconds to wait for drain
    access_log: bool = False  # JSON access-log lines to stderr
    trace_out: str | None = None  # span JSONL file (enables tracing sink)
    obs_enabled: bool = True  # --no-obs: skip metrics/tracing entirely


class ServeApp:
    """The wired service: queue -> coalescer -> engine -> workers + HTTP."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.queue = AdmissionQueue(
            capacity=self.config.queue_capacity,
            per_client=self.config.per_client,
            # Late-bound: the engine is constructed a few lines below,
            # and the EWMA reads fresh on every rejection.
            service_time_s=lambda: self.engine.point_seconds_ewma,
            workers=self.config.concurrency,
        )
        self.coalescer = Coalescer()
        self.engine = SimulationEngine(
            mc_workers=self.config.mc_workers,
            cache_dir=self.config.cache_dir,
            compute_floor_s=self.config.compute_floor_s,
        )
        self.pool = WorkerPool(
            self.queue,
            self.coalescer,
            self.engine,
            concurrency=self.config.concurrency,
        )
        self.jobs: OrderedDict[str, Job] = OrderedDict()
        self.draining = False
        self.started_s = time.monotonic()
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._closed = asyncio.Event()
        self._drain_task: asyncio.Task | None = None
        self._handlers: set[asyncio.Task] = set()
        #: Last ``RECENT_REQUESTS`` completed requests; ``/debugz``
        #: reports the slowest of them.  Event-loop only.
        self._recent: deque[dict] = deque(maxlen=RECENT_REQUESTS)
        self._trace_sink: JsonlSink | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the worker pool."""
        if self.config.obs_enabled:
            if self.config.trace_out:
                self._trace_sink = JsonlSink(self.config.trace_out)
                obs.enable(sink=self._trace_sink)
            else:
                obs.enable()
        if self.config.access_log and not _ACCESS_LOG.handlers:
            handler = logging.StreamHandler(sys.stderr)
            handler.setFormatter(logging.Formatter("%(message)s"))
            _ACCESS_LOG.addHandler(handler)
            _ACCESS_LOG.setLevel(logging.INFO)
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        await self._closed.wait()

    def begin_drain(self) -> None:
        """Stop admitting work; finish what is queued/in flight; exit.

        Idempotent; safe to call from a signal handler on the loop.
        """
        if self._drain_task is not None:
            return
        self.draining = True
        self.queue.close()
        self._drain_task = asyncio.get_running_loop().create_task(
            self._drain()
        )

    async def _drain(self) -> None:
        try:
            await asyncio.wait_for(
                self.pool.join(), timeout=self.config.drain_grace_s
            )
        except asyncio.TimeoutError:  # pragma: no cover - pathological jobs
            await self.pool.abort()
        # Workers are done, so every admitted job has finished; give the
        # open response streams a beat to flush, then drop the listener.
        if self._handlers:
            _done, pending = await asyncio.wait(
                self._handlers, timeout=self.config.drain_grace_s
            )
            for task in pending:  # stragglers holding idle connections
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.engine.close()
        if self._trace_sink is not None:
            # Detach before closing so a late emit from shared obs state
            # cannot hit a closed file handle.
            if _OBS.tracer.sink is self._trace_sink:
                _OBS.tracer = Tracer(NullSink())
            self._trace_sink.close()
        self._closed.set()

    async def aclose(self) -> None:
        """Drain and wait until fully closed (test/embedding helper)."""
        self.begin_drain()
        await self.wait_closed()

    # -- HTTP plumbing --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        t0 = time.perf_counter()
        route = "unmatched"
        status = 500
        request: _HttpRequest | None = None
        scope = _RequestScope(request_id=_ctx.new_request_id())
        try:
            try:
                request = await asyncio.wait_for(
                    self._read_request(reader), timeout=REQUEST_READ_TIMEOUT
                )
            except asyncio.TimeoutError:
                status = 408
                with _ctx.bound_context(request_id=scope.request_id):
                    await self._send_json(
                        writer,
                        408,
                        proto.error_envelope(
                            proto.ProtocolError(
                                "invalid_request",
                                "timed out waiting for the request",
                            ),
                            request_id=scope.request_id,
                        ),
                    )
                return
            except _HttpError as exc:
                status = exc.status
                err = proto.ProtocolError(
                    "invalid_request"
                    if exc.status < 500
                    else "internal",
                    str(exc),
                )
                with _ctx.bound_context(request_id=scope.request_id):
                    await self._send_json(
                        writer,
                        exc.status,
                        proto.error_envelope(
                            err, request_id=scope.request_id
                        ),
                    )
                return
            # Honor a well-formed client-supplied X-Request-Id (retries
            # keep one logical request one trace); generate otherwise.
            supplied = request.headers.get("x-request-id")
            if proto.valid_request_id(supplied):
                scope.request_id = supplied
            if _OBS.enabled:
                scope.tracer = Tracer(
                    _OBS.tracer.sink, trace_id=scope.request_id
                )
            with _ctx.bound_context(
                tracer=scope.tracer, request_id=scope.request_id
            ):
                if scope.tracer is not None:
                    scope.root_span_id = scope.tracer.start_span(
                        "serve.request",
                        method=request.method,
                        path=request.path,
                    )
                try:
                    route, status = await self._dispatch(
                        request, writer, scope
                    )
                finally:
                    if scope.tracer is not None:
                        scope.tracer.end_span(route=route, status=status)
        except (ConnectionError, asyncio.IncompleteReadError):
            status = 0  # client went away; nothing to send
        except Exception as exc:  # last-resort 500, never a crash
            status = 500
            try:
                with _ctx.bound_context(request_id=scope.request_id):
                    await self._send_json(
                        writer,
                        500,
                        proto.error_envelope(
                            proto.ProtocolError(
                                "internal", f"{type(exc).__name__}: {exc}"
                            ),
                            request_id=scope.request_id,
                        ),
                    )
            except ConnectionError:  # pragma: no cover
                pass
        finally:
            elapsed = time.perf_counter() - t0
            if _OBS.enabled and status:
                reg = _OBS.registry
                reg.counter(
                    _inst.SERVE_REQUESTS,
                    "HTTP requests served, by route and status",
                    labelnames=("route", "status"),
                ).labels(route=route, status=status).inc()
                reg.histogram(
                    _inst.SERVE_REQUEST_SECONDS,
                    "Wall time per HTTP request",
                    labelnames=("route",),
                ).labels(route=route).observe(elapsed)
            if status:
                self._finish_request(scope, request, route, status, elapsed)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _finish_request(
        self,
        scope: _RequestScope,
        request: _HttpRequest | None,
        route: str,
        status: int,
        elapsed: float,
    ) -> None:
        """Post-response bookkeeping: access-log line + slow ring."""
        entry = {
            "request_id": scope.request_id,
            "route": route,
            "status": status,
            "duration_s": round(elapsed, 6),
            "client": scope.access.get("client"),
        }
        self._recent.append(entry)
        if not (self.config.access_log or _ACCESS_LOG.handlers):
            return
        record: dict[str, object] = {
            "ts": time.time(),
            "request_id": scope.request_id,
            "method": request.method if request is not None else None,
            "path": request.path if request is not None else None,
            "route": route,
            "status": status,
            "duration_s": round(elapsed, 6),
        }
        for key in ("client", "priority", "mode", "job_id"):
            if key in scope.access:
                record[key] = scope.access[key]
        stages = scope.access.get("stages_s")
        if stages:
            record["stages_s"] = {
                k: round(v, 6) for k, v in stages.items()
            }
        coalesce = scope.access.get("coalesce")
        if coalesce:
            record["coalesce"] = coalesce
        _ACCESS_LOG.info(
            json.dumps(
                nan_to_none(record), allow_nan=False, separators=(",", ":")
            )
        )

    async def _read_request(self, reader: asyncio.StreamReader) -> _HttpRequest:
        return await http1.read_request(reader)

    async def _send_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        payload: bytes,
        extra_headers: Sequence[tuple[str, str]] = (),
    ) -> None:
        await http1.send_response(
            writer, status, content_type, payload, extra_headers
        )

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        doc: dict,
        extra_headers: Sequence[tuple[str, str]] = (),
    ) -> None:
        await http1.send_json(writer, status, doc, extra_headers)

    async def _send_error(
        self, writer: asyncio.StreamWriter, exc: proto.ProtocolError
    ) -> int:
        headers: list[tuple[str, str]] = []
        if exc.retry_after_s is not None:
            headers.append(
                ("Retry-After", str(max(1, round(exc.retry_after_s))))
            )
        if _OBS.enabled and exc.code in ("overloaded", "draining"):
            _OBS.registry.counter(
                _inst.SERVE_REJECTS,
                "Admission rejections, by reason",
                labelnames=("reason",),
            ).labels(reason=getattr(exc, "reject_reason", exc.code)).inc()
        await self._send_json(
            writer,
            exc.status,
            proto.error_envelope(exc, request_id=_ctx.current_request_id()),
            headers,
        )
        return exc.status

    # -- routing --------------------------------------------------------

    async def _dispatch(
        self,
        request: _HttpRequest,
        writer: asyncio.StreamWriter,
        scope: _RequestScope,
    ) -> tuple[str, int]:
        """Returns ``(route label, status)`` for the metrics."""
        path = request.path
        if path == "/healthz":
            if request.method != "GET":
                return "healthz", await self._method_not_allowed(writer, "GET")
            return "healthz", await self._handle_healthz(writer)
        if path == "/debugz":
            if request.method != "GET":
                return "debugz", await self._method_not_allowed(writer, "GET")
            return "debugz", await self._handle_debugz(writer)
        if path == "/metrics":
            if request.method != "GET":
                return "metrics", await self._method_not_allowed(writer, "GET")
            return "metrics", await self._handle_metrics(writer)
        if path == "/v1/simulate":
            if request.method != "POST":
                return "simulate", await self._method_not_allowed(
                    writer, "POST"
                )
            return "simulate", await self._handle_simulate(
                request, writer, scope
            )
        if path.startswith("/v1/jobs/"):
            if request.method != "GET":
                return "jobs", await self._method_not_allowed(writer, "GET")
            job_id = path[len("/v1/jobs/"):]
            return "jobs", await self._handle_job_stream(
                job_id, writer, scope
            )
        return "unmatched", await self._send_error(
            writer,
            proto.ProtocolError("not_found", f"no route for {path}"),
        )

    async def _method_not_allowed(
        self, writer: asyncio.StreamWriter, allowed: str
    ) -> int:
        exc = proto.ProtocolError(
            "method_not_allowed", f"only {allowed} is allowed here"
        )
        await self._send_json(
            writer,
            exc.status,
            proto.error_envelope(exc, request_id=_ctx.current_request_id()),
            [("Allow", allowed)],
        )
        return exc.status

    # -- endpoints ------------------------------------------------------

    async def _handle_healthz(self, writer: asyncio.StreamWriter) -> int:
        doc = {
            "status": "draining" if self.draining else "ok",
            "uptime_s": round(time.monotonic() - self.started_s, 3),
            "queued_points": self.queue.depth(),
            "inflight_points": self.pool.in_flight,
            "coalesced_inflight": self.coalescer.in_flight(),
            "jobs": len(self.jobs),
            "protocol_version": proto.PROTOCOL_VERSION,
        }
        await self._send_json(writer, 200, doc)
        return 200

    async def _handle_debugz(self, writer: asyncio.StreamWriter) -> int:
        """Live introspection: queue, in-flight, coalesce table, jobs,
        and the slowest recent requests.  Everything is a snapshot taken
        on the event loop, so the document is internally consistent."""
        jobs_by_state: dict[str, int] = {}
        for job in self.jobs.values():
            jobs_by_state[job.state] = jobs_by_state.get(job.state, 0) + 1
        doc = {
            "status": "draining" if self.draining else "ok",
            "uptime_s": round(time.monotonic() - self.started_s, 3),
            "obs_enabled": _OBS.enabled,
            "queue": self.queue.snapshot(),
            "inflight": self.pool.inflight_snapshot(),
            "coalesce": self.coalescer.snapshot(),
            "jobs": {"held": len(self.jobs), "by_state": jobs_by_state},
            "recent_slowest": sorted(
                self._recent,
                key=lambda entry: entry["duration_s"],
                reverse=True,
            )[:RECENT_SLOWEST],
        }
        await self._send_json(writer, 200, doc)
        return 200

    async def _handle_metrics(self, writer: asyncio.StreamWriter) -> int:
        text = _OBS.registry.to_prometheus()
        await self._send_response(
            writer,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            text.encode("utf-8"),
        )
        return 200

    async def _handle_simulate(
        self,
        request: _HttpRequest,
        writer: asyncio.StreamWriter,
        scope: _RequestScope,
    ) -> int:
        try:
            doc = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return await self._send_error(
                writer,
                proto.ProtocolError(
                    "invalid_request", "request body is not valid JSON"
                ),
            )
        try:
            sim = proto.parse_simulate_request(doc)
        except proto.ProtocolError as exc:
            return await self._send_error(writer, exc)
        scope.access["client"] = sim.client
        scope.access["priority"] = sim.priority
        scope.access["mode"] = sim.mode
        if self.draining:
            return await self._send_error(
                writer,
                proto.ProtocolError(
                    "draining",
                    "server is draining; retry against a healthy instance",
                    retry_after_s=self.config.drain_grace_s,
                ),
            )
        job = Job(sim, request_id=scope.request_id)
        job.root_span_id = scope.root_span_id
        scope.access["job_id"] = job.id
        now = time.perf_counter()
        items = [
            WorkItem(job=job, point=p, enqueued_s=now) for p in sim.points
        ]
        try:
            self.queue.put_batch(
                items, client=sim.client, priority=sim.priority
            )
        except QueueClosed:
            return await self._send_error(
                writer,
                proto.ProtocolError(
                    "draining",
                    "server is draining; retry against a healthy instance",
                    retry_after_s=self.config.drain_grace_s,
                ),
            )
        except AdmissionError as exc:
            # The queue computed the hint at rejection time from its own
            # depth and the engine's live service-time EWMA.
            err = proto.ProtocolError(
                "overloaded", str(exc), retry_after_s=exc.retry_after_s
            )
            err.reject_reason = (
                "client_quota"
                if "quota" in str(exc)
                else "queue_full"
            )
            return await self._send_error(writer, err)
        self._remember_job(job)
        if _OBS.enabled:
            _OBS.registry.gauge(
                _inst.SERVE_QUEUE_DEPTH, "Grid points awaiting a worker"
            ).set(self.queue.depth())
        if sim.mode == "async":
            await self._send_json(
                writer,
                202,
                proto.job_envelope(
                    job.id,
                    job.state,
                    job.n_points,
                    0,
                    request_id=scope.request_id,
                ),
            )
            return 202
        await job.wait_done()
        scope.access["stages_s"] = job.stage_s
        scope.access["coalesce"] = job.source_counts
        if job.state != JOB_DONE:
            return await self._send_error(
                writer,
                proto.ProtocolError(
                    "internal", job.error or "job failed"
                ),
            )
        results = [
            proto.result_line(r.point, r.stats, r.source)
            for r in job.results
        ]
        # The response write is the job's "stream" stage: span it on the
        # request tracer and fold it into the Server-Timing breakdown.
        t_stream = time.perf_counter()
        if scope.tracer is not None:
            scope.tracer.start_span("serve.stream", mode="sync")
        try:
            timing = proto.server_timing_value(job.stage_s)
            await self._send_json(
                writer,
                200,
                proto.sync_response(
                    job.id,
                    job.state,
                    results,
                    round(job.elapsed_s, 6),
                    request_id=scope.request_id,
                ),
                [(proto.SERVER_TIMING_HEADER, timing)] if timing else (),
            )
        finally:
            if scope.tracer is not None:
                scope.tracer.end_span()
            observe_stage(
                "stream", time.perf_counter() - t_stream, job
            )
        return 200

    def _remember_job(self, job: Job) -> None:
        self.jobs[job.id] = job
        while len(self.jobs) > FINISHED_JOB_BACKLOG:
            # Evict the oldest *finished* job; never drop a live one.
            for job_id, held in self.jobs.items():
                if held.done:
                    del self.jobs[job_id]
                    break
            else:
                break

    async def _handle_job_stream(
        self, job_id: str, writer: asyncio.StreamWriter, scope: _RequestScope
    ) -> int:
        job = self.jobs.get(job_id)
        if job is None:
            return await self._send_error(
                writer,
                proto.ProtocolError(
                    "not_found", f"no job {job_id!r} on this server"
                ),
            )
        scope.access["client"] = job.request.client
        scope.access["job_id"] = job.id
        # EOF-delimited NDJSON: no Content-Length, Connection: close.
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Cache-Control: no-store\r\n"
            f"{proto.REQUEST_ID_HEADER}: {scope.request_id}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))

        def line(doc: dict) -> bytes:
            return (
                json.dumps(
                    nan_to_none(doc), allow_nan=False, separators=(",", ":")
                )
                + "\n"
            ).encode("utf-8")

        # The header line carries the *admitting* request's id, joining
        # an async job's NDJSON output to the trace of the POST that
        # created it (this GET has its own id, echoed in the header).
        writer.write(
            line(
                proto.job_envelope(
                    job.id,
                    job.state,
                    job.n_points,
                    len(job.results),
                    request_id=job.request_id,
                )
            )
        )
        await writer.drain()
        t_stream = time.perf_counter()
        if scope.tracer is not None:
            scope.tracer.start_span("serve.stream", job_id=job.id)
        try:
            async for result in job.stream():
                writer.write(
                    line(
                        proto.result_line(
                            result.point, result.stats, result.source
                        )
                    )
                )
                await writer.drain()
            writer.write(
                line(
                    proto.done_line(
                        job.id, job.state, round(job.elapsed_s, 6), job.error
                    )
                )
            )
            await writer.drain()
        finally:
            if scope.tracer is not None:
                scope.tracer.end_span(results=len(job.results))
            observe_stage("stream", time.perf_counter() - t_stream)
        scope.access["coalesce"] = job.source_counts
        return 200


# ----------------------------------------------------------------------
# Entry point


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve the paper's QCD-vs-CRC-CD simulation grid over HTTP "
            "with admission control, request coalescing and NDJSON "
            "streaming (see docs/SERVING.md)."
        ),
    )
    cfg = ServeConfig()
    parser.add_argument("--host", default=cfg.host)
    parser.add_argument(
        "--port",
        type=int,
        default=cfg.port,
        help=f"TCP port; 0 picks a free one (default {cfg.port})",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=cfg.concurrency,
        help="asyncio workers executing grid points "
        f"(default {cfg.concurrency})",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=cfg.queue_capacity,
        help="max queued grid points before 429s "
        f"(default {cfg.queue_capacity})",
    )
    parser.add_argument(
        "--per-client",
        type=int,
        default=None,
        help="max queued grid points per client "
        "(default: queue capacity / 4)",
    )
    parser.add_argument(
        "--mc-workers",
        type=int,
        default=cfg.mc_workers,
        help="processes sharding each grid point's Monte-Carlo rounds "
        f"(default {cfg.mc_workers})",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="on-disk result-cache directory shared by all requests",
    )
    parser.add_argument(
        "--compute-floor",
        type=float,
        default=cfg.compute_floor_s,
        metavar="SECONDS",
        dest="compute_floor_s",
        help="minimum service time per computed grid point (capacity "
        "experiments and drain tests; default 0)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=cfg.drain_grace_s,
        metavar="SECONDS",
        dest="drain_grace_s",
        help="max seconds to wait for in-flight work on SIGTERM "
        f"(default {cfg.drain_grace_s:.0f})",
    )
    parser.add_argument(
        "--access-log",
        action="store_true",
        dest="access_log",
        help="emit one structured JSON access-log line per request "
        "to stderr",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        dest="trace_out",
        help="append span/event trace records as JSONL to PATH "
        "(analyze offline with 'repro-obs-report serve')",
    )
    parser.add_argument(
        "--no-obs",
        action="store_false",
        dest="obs_enabled",
        help="disable metrics and tracing entirely (the <5%% overhead "
        "ablation baseline; /metrics renders empty)",
    )
    return parser


async def _amain(config: ServeConfig) -> int:
    app = ServeApp(config)
    await app.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, app.begin_drain)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    print(
        f"repro-serve listening on {config.host}:{app.port} "
        f"(concurrency={config.concurrency}, "
        f"queue={config.queue_capacity}, mc-workers={config.mc_workers})",
        flush=True,
    )
    await app.wait_closed()
    print("repro-serve drained; exiting", flush=True)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        concurrency=args.concurrency,
        queue_capacity=args.queue_capacity,
        per_client=args.per_client,
        mc_workers=args.mc_workers,
        cache_dir=str(args.cache_dir) if args.cache_dir else None,
        compute_floor_s=args.compute_floor_s,
        drain_grace_s=args.drain_grace_s,
        access_log=args.access_log,
        trace_out=str(args.trace_out) if args.trace_out else None,
        obs_enabled=args.obs_enabled,
    )
    obs.reset()
    try:
        return asyncio.run(_amain(config))
    except KeyboardInterrupt:  # pragma: no cover - double ^C
        return 130


if __name__ == "__main__":
    sys.exit(main())
