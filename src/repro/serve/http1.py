"""Shared HTTP/1.1 transport for the serve tier.

One module owns the wire plumbing both the single-process server
(:mod:`repro.serve.server`) and the fleet router
(:mod:`repro.serve.router`) speak, so parsing limits, error semantics
and response framing cannot drift between the two hops:

* **server side** -- :func:`read_request` (bounded request parsing that
  raises :class:`HttpError`, never buffers unboundedly) and
  :func:`send_response` / :func:`send_json` (``Connection: close``
  framing that echoes the context-bound ``X-Request-Id`` on every
  response);
* **client side** -- :func:`fetch` (one buffered request/response round
  trip over asyncio streams) and :func:`open_fetch` (a streaming
  response handle for proxying NDJSON line by line), which is how the
  router forwards work to its backends without growing a dependency on
  a real HTTP client library.

Everything is one-request-per-connection: the serve tier deliberately
speaks ``Connection: close`` so EOF-delimited NDJSON streaming is
trivially correct and a dead backend is indistinguishable from a
finished response only *after* the terminal line -- which is exactly the
signal the router's retry path keys on.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import AsyncIterator, Mapping, Sequence

from repro.obs import context as _ctx
from repro.serve import protocol as proto
from repro.sim.export import nan_to_none

__all__ = [
    "MAX_REQUEST_LINE",
    "MAX_HEADER_COUNT",
    "MAX_HEADER_LINE",
    "MAX_BODY_BYTES",
    "REQUEST_READ_TIMEOUT",
    "REASONS",
    "HttpError",
    "HttpRequest",
    "read_request",
    "send_response",
    "send_json",
    "json_payload",
    "fetch",
    "open_fetch",
    "StreamingResponse",
]

#: HTTP parsing limits: past any of them the request is rejected, never
#: buffered unboundedly.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_COUNT = 100
MAX_HEADER_LINE = 8 * 1024
MAX_BODY_BYTES = 1024 * 1024

#: A client must deliver its whole request within this window; an idle
#: half-open connection can otherwise pin the drain sequence forever.
REQUEST_READ_TIMEOUT = 30.0

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Transport-level malformation (before the JSON protocol layer)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict[str, str]
    body: bytes


# ----------------------------------------------------------------------
# Server side


async def read_request(reader: asyncio.StreamReader) -> HttpRequest:
    """Parse one bounded HTTP/1.1 request; raises :class:`HttpError`."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long")
    except asyncio.IncompleteReadError:
        raise HttpError(400, "empty request")
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_COUNT + 1):
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.LimitOverrunError, asyncio.IncompleteReadError):
            raise HttpError(400, "malformed headers")
        if raw == b"\r\n":
            break
        if len(raw) > MAX_HEADER_LINE:
            raise HttpError(400, "header line too long")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many headers")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    return HttpRequest(
        method=method,
        path=target.split("?", 1)[0],
        headers=headers,
        body=body,
    )


async def send_response(
    writer: asyncio.StreamWriter,
    status: int,
    content_type: str,
    payload: bytes,
    extra_headers: Sequence[tuple[str, str]] = (),
) -> None:
    """Write one buffered response (``Connection: close`` framing).

    Every response echoes the request id bound to the current context --
    success, error envelope or last-resort 500 alike (the header
    contract shared by server and router).
    """
    reason = REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}"]
    head.append(f"Content-Type: {content_type}")
    head.append(f"Content-Length: {len(payload)}")
    rid = _ctx.current_request_id()
    if rid is not None:
        head.append(f"{proto.REQUEST_ID_HEADER}: {rid}")
    for name, value in extra_headers:
        head.append(f"{name}: {value}")
    head.append("Connection: close")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(payload)
    await writer.drain()


def json_payload(doc: Mapping[str, object]) -> bytes:
    """RFC-8259-clean JSON body bytes (NaN scrubbed, trailing newline)."""
    return (
        json.dumps(
            nan_to_none(dict(doc)), allow_nan=False, separators=(",", ":")
        ).encode("utf-8")
        + b"\n"
    )


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    doc: Mapping[str, object],
    extra_headers: Sequence[tuple[str, str]] = (),
) -> None:
    await send_response(
        writer, status, "application/json", json_payload(doc), extra_headers
    )


# ----------------------------------------------------------------------
# Client side (the router -> backend hop)


def _request_bytes(
    method: str,
    path: str,
    host: str,
    port: int,
    body: bytes | None,
    headers: Sequence[tuple[str, str]],
) -> bytes:
    head = [f"{method} {path} HTTP/1.1", f"Host: {host}:{port}"]
    for name, value in headers:
        head.append(f"{name}: {value}")
    if body is not None:
        head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(body)}")
    head.append("Connection: close")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + (body or b"")


async def _read_head(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str]]:
    line = await reader.readuntil(b"\r\n")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpError(502, f"malformed status line from backend: {line!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HttpError(502, f"malformed status code from backend: {line!r}")
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_COUNT + 1):
        raw = await reader.readuntil(b"\r\n")
        if raw == b"\r\n":
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(502, "too many headers from backend")
    return status, headers


class StreamingResponse:
    """An open backend response: status, headers and a line iterator."""

    def __init__(
        self,
        status: int,
        headers: dict[str, str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.status = status
        self.headers = headers
        self._reader = reader
        self._writer = writer

    async def read_body(self) -> bytes:
        """The remaining body (Content-Length-bounded or EOF-delimited)."""
        length = self.headers.get("content-length")
        if length is not None:
            return await self._reader.readexactly(int(length))
        return await self._reader.read()

    async def lines(self) -> AsyncIterator[bytes]:
        """Yield NDJSON lines (newline stripped) until EOF.

        A connection reset mid-stream surfaces as ``ConnectionError`` to
        the caller -- the router's resume path depends on that, so it is
        deliberately not swallowed here.
        """
        while True:
            line = await self._reader.readline()
            if not line:
                return
            line = line.rstrip(b"\r\n")
            if line:
                yield line

    async def aclose(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass


async def open_fetch(
    host: str,
    port: int,
    method: str,
    path: str,
    *,
    body: bytes | None = None,
    headers: Sequence[tuple[str, str]] = (),
    connect_timeout_s: float = 5.0,
) -> StreamingResponse:
    """Send one request and return the response with its stream open."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=connect_timeout_s
    )
    try:
        writer.write(_request_bytes(method, path, host, port, body, headers))
        await writer.drain()
        status, resp_headers = await _read_head(reader)
    except BaseException:
        writer.close()
        raise
    return StreamingResponse(status, resp_headers, reader, writer)


async def fetch(
    host: str,
    port: int,
    method: str,
    path: str,
    *,
    body: bytes | None = None,
    headers: Sequence[tuple[str, str]] = (),
    timeout_s: float = 120.0,
    connect_timeout_s: float = 5.0,
) -> tuple[int, dict[str, str], bytes]:
    """One buffered request/response round trip; raises on transport
    failure (``ConnectionError`` / ``OSError`` / ``asyncio.TimeoutError``)
    so callers can treat an unreachable backend as a routing event."""
    resp = await open_fetch(
        host,
        port,
        method,
        path,
        body=body,
        headers=headers,
        connect_timeout_s=connect_timeout_s,
    )
    try:
        payload = await asyncio.wait_for(resp.read_body(), timeout=timeout_s)
    finally:
        await resp.aclose()
    return resp.status, resp.headers, payload
