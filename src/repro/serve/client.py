"""Blocking HTTP client for ``repro-serve``.

Stdlib-only (``http.client``), one connection per request (the server
speaks ``Connection: close``).  Retries are built in and honor the
server's backpressure contract:

* **429 / 503** -- wait the server's ``Retry-After`` (or an exponential
  backoff) plus decorrelating jitter, then retry, up to ``retries``
  attempts;
* **connection errors** -- same backoff schedule (the server may be
  restarting);
* **other 4xx** -- never retried; surfaced as :class:`ServeError` with
  the typed error envelope attached.

The jitter source is an injectable ``random.Random`` so tests are
deterministic.
"""

from __future__ import annotations

import http.client
import json
import random
import secrets
import time
from typing import Iterator
from urllib.parse import urlsplit

from repro.serve.protocol import (
    REQUEST_ID_HEADER,
    SERVER_TIMING_HEADER,
    parse_server_timing,
)

__all__ = ["ServeError", "ServeClient", "new_client_request_id"]


def new_client_request_id() -> str:
    """A client-generated ``X-Request-Id`` (``cli-`` + 16 hex chars)."""
    return f"cli-{secrets.token_hex(8)}"


class ServeError(Exception):
    """A non-retryable (or retry-exhausted) service response."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        envelope: dict | None = None,
    ) -> None:
        super().__init__(f"{status} {code}: {message}")
        self.status = status
        self.code = code
        self.envelope = envelope or {}


def _parse_error(status: int, body: bytes) -> ServeError:
    try:
        doc = json.loads(body.decode("utf-8"))
        error = doc.get("error", {})
        return ServeError(
            status,
            str(error.get("code", "unknown")),
            str(error.get("message", "")),
            doc,
        )
    except (ValueError, AttributeError, UnicodeDecodeError):
        return ServeError(status, "unknown", body[:200].decode("latin-1"))


class ServeClient:
    """Minimal blocking client with Retry-After-aware backoff."""

    def __init__(
        self,
        base_url: str,
        *,
        retries: int = 5,
        backoff_s: float = 0.1,
        backoff_cap_s: float = 10.0,
        timeout_s: float = 120.0,
        jitter: float = 0.5,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme != "http":
            raise ValueError("only http:// endpoints are supported")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.timeout_s = timeout_s
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self.attempts = 0  # total HTTP attempts, for tests/reporting
        #: The id sent with the most recent logical request, and the
        #: parsed ``Server-Timing`` stage breakdown (``{stage: seconds}``)
        #: of its final response, for per-request latency attribution.
        self.last_request_id: str | None = None
        self.last_server_timing: dict[str, float] = {}

    # -- low-level ------------------------------------------------------

    def _once(
        self,
        method: str,
        path: str,
        body: bytes | None,
        request_id: str | None = None,
    ) -> tuple[int, dict, bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            headers = {"Connection": "close"}
            if request_id is not None:
                headers[REQUEST_ID_HEADER] = request_id
            if body is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            payload = resp.read()
            return resp.status, dict(resp.getheaders()), payload
        finally:
            conn.close()

    def _delay(self, attempt: int, retry_after: str | None) -> float:
        if retry_after is not None:
            try:
                base = float(retry_after)
            except ValueError:
                base = self.backoff_s * (2**attempt)
        else:
            base = self.backoff_s * (2**attempt)
        base = min(base, self.backoff_cap_s)
        return base * (1.0 + self.jitter * self._rng.random())

    def request(
        self,
        method: str,
        path: str,
        doc: dict | None = None,
        *,
        request_id: str | None = None,
    ) -> tuple[int, dict, bytes]:
        """One call with the retry policy; returns (status, headers, body).

        The request id is generated *up front* and reused across every
        429/503/transport retry, so one logical request stays one trace
        on the server no matter how many attempts it took.
        """
        body = (
            json.dumps(doc).encode("utf-8") if doc is not None else None
        )
        rid = request_id if request_id is not None else new_client_request_id()
        self.last_request_id = rid
        last_exc: Exception | None = None
        for attempt in range(self.retries + 1):
            self.attempts += 1
            try:
                status, headers, payload = self._once(
                    method, path, body, request_id=rid
                )
            except (ConnectionError, OSError, http.client.HTTPException) as exc:
                last_exc = exc
                if attempt == self.retries:
                    raise
                self._sleep(self._delay(attempt, None))
                continue
            lower = {k.lower(): v for k, v in headers.items()}
            if status in (429, 503) and attempt < self.retries:
                self._sleep(self._delay(attempt, lower.get("retry-after")))
                continue
            timing = lower.get(SERVER_TIMING_HEADER.lower())
            self.last_server_timing = (
                parse_server_timing(timing) if timing else {}
            )
            return status, headers, payload
        raise last_exc if last_exc else RuntimeError("unreachable")

    def request_json(
        self, method: str, path: str, doc: dict | None = None
    ) -> dict:
        status, _headers, payload = self.request(method, path, doc)
        if status >= 400:
            raise _parse_error(status, payload)
        return json.loads(payload.decode("utf-8"))

    # -- endpoints ------------------------------------------------------

    def healthz(self) -> dict:
        return self.request_json("GET", "/healthz")

    def metrics_text(self) -> str:
        status, _headers, payload = self.request("GET", "/metrics")
        if status != 200:
            raise _parse_error(status, payload)
        return payload.decode("utf-8")

    def simulate(self, doc: dict) -> dict:
        """``POST /v1/simulate`` (sync or async body; parsed JSON back)."""
        return self.request_json("POST", "/v1/simulate", doc)

    def stream_job(self, job_id: str) -> Iterator[dict]:
        """Yield the parsed NDJSON lines of ``GET /v1/jobs/<id>``.

        Streams incrementally (one connection, line by line); raises
        :class:`ServeError` on a non-200 status.

        The stream is **churn-resilient**: a connection refused/reset --
        before or mid-stream, as happens while a backend (or the router)
        restarts -- re-fetches the stream after the usual backoff, up to
        ``retries`` times.  The server replays completed results on
        re-fetch, so the resumed iteration deduplicates by grid point
        and suppresses the duplicate job-header line; callers see every
        line exactly once.  429/503 during the re-fetch honor
        ``Retry-After`` like :meth:`request` does.
        """
        rid = new_client_request_id()
        self.last_request_id = rid
        seen_points: set[str] = set()
        state = {"header_seen": False, "finished": False}
        last_exc: Exception | None = None
        for attempt in range(self.retries + 1):
            self.attempts += 1
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
            try:
                try:
                    conn.request(
                        "GET",
                        f"/v1/jobs/{job_id}",
                        headers={
                            "Connection": "close",
                            REQUEST_ID_HEADER: rid,
                        },
                    )
                    resp = conn.getresponse()
                except (
                    ConnectionError,
                    OSError,
                    http.client.HTTPException,
                ) as exc:
                    last_exc = exc
                    if attempt == self.retries:
                        raise
                    self._sleep(self._delay(attempt, None))
                    continue
                if resp.status in (429, 503) and attempt < self.retries:
                    payload = resp.read()
                    headers = {
                        k.lower(): v for k, v in resp.getheaders()
                    }
                    self._sleep(
                        self._delay(attempt, headers.get("retry-after"))
                    )
                    continue
                if resp.status != 200:
                    raise _parse_error(resp.status, resp.read())
                try:
                    yield from self._stream_lines(resp, seen_points, state)
                except (
                    ConnectionError,
                    OSError,
                    http.client.HTTPException,
                    ValueError,  # torn NDJSON line from a dying peer
                ) as exc:
                    last_exc = exc
                    if attempt == self.retries:
                        raise
                    self._sleep(self._delay(attempt, None))
                    continue
                if state["finished"]:
                    return
                # Clean EOF without a done line: the peer died between
                # lines; same retry path as a mid-line reset.
                last_exc = ConnectionError(
                    "job stream ended without a done line"
                )
                if attempt == self.retries:
                    raise last_exc
                self._sleep(self._delay(attempt, None))
            finally:
                conn.close()
        raise last_exc if last_exc else RuntimeError("unreachable")

    def _stream_lines(
        self,
        resp: http.client.HTTPResponse,
        seen_points: set[str],
        state: dict,
    ) -> Iterator[dict]:
        """Yield one attempt's deduplicated lines, mutating ``state``."""
        for raw in resp:
            raw = raw.strip()
            if not raw:
                continue
            line = json.loads(raw.decode("utf-8"))
            kind = line.get("type")
            if kind == "job":
                if state["header_seen"]:
                    continue
                state["header_seen"] = True
            elif kind == "result":
                fingerprint = json.dumps(
                    line.get("point"), sort_keys=True, separators=(",", ":")
                )
                if fingerprint in seen_points:
                    continue
                seen_points.add(fingerprint)
            elif kind == "done":
                state["finished"] = True
            yield line
        return

    def run(self, doc: dict) -> list[dict]:
        """Submit async and stream to completion; returns result lines.

        Raises :class:`ServeError` if the job ends in ``failed``.
        """
        submitted = self.simulate(dict(doc, mode="async"))
        results: list[dict] = []
        for line in self.stream_job(submitted["job_id"]):
            if line.get("type") == "result":
                results.append(line)
            elif line.get("type") == "done" and line.get("state") != "done":
                raise ServeError(
                    500, "internal", line.get("error") or "job failed"
                )
        return results
