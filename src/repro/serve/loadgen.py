"""Open-loop load generator for ``repro-serve``.

Fires ``rate * duration`` synchronous simulate requests at their
scheduled instants (open loop: arrivals do not wait for completions, so
the server sees real overload, not a closed feedback loop), then reports
throughput, shed rate and latency percentiles::

    python -m repro.serve.loadgen --url http://127.0.0.1:8537 \\
        --rate 200 --duration 5 --out BENCH_serve.json \\
        --baseline benchmarks/BENCH_serve.json

The request mix cycles over ``--unique`` distinct seeds, so a fraction
``(unique - 1) / unique`` of the offered load is fresh work and the rest
exercises the coalescing/caching path -- the report carries the server's
own coalesce/points counters scraped from ``/metrics``.

The regression gate mirrors ``repro-bench``: absolute RPS and
milliseconds are machine-bound, so only *ratios* are compared against
the committed baseline (``--tolerance``, default 50%):

* any 5xx at all fails the gate (the service contract is shed-don't-melt);
* the goodput ratio (completed / offered) must not regress;
* the p99/p50 tail ratio is reported but not gated (too noisy in CI).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Sequence

from repro.serve.client import ServeClient

__all__ = [
    "run_loadgen",
    "percentile",
    "check_against_baseline",
    "check_beats_baseline",
    "main",
    "build_parser",
]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class _Tally:
    """Thread-safe latency/status accounting with an in-flight high-water
    mark (the acceptance criterion counts concurrent in-flight requests)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.latencies_ms: list[float] = []
        self.statuses: dict[str, int] = {}
        self.in_flight = 0
        self.max_in_flight = 0
        self.schedule_lag_s = 0.0
        #: Server-reported per-stage latencies (``Server-Timing``
        #: header), milliseconds per stage across served requests.
        self.stage_ms: dict[str, list[float]] = {}

    def enter(self) -> None:
        with self._lock:
            self.in_flight += 1
            self.max_in_flight = max(self.max_in_flight, self.in_flight)

    def exit(
        self,
        status_class: str,
        latency_ms: float,
        stages_s: dict[str, float] | None = None,
    ) -> None:
        with self._lock:
            self.in_flight -= 1
            self.statuses[status_class] = (
                self.statuses.get(status_class, 0) + 1
            )
            self.latencies_ms.append(latency_ms)
            if stages_s:
                for stage, seconds in stages_s.items():
                    self.stage_ms.setdefault(stage, []).append(
                        seconds * 1000.0
                    )


def _status_class(status: int) -> str:
    if status == 429:
        return "429"
    if 200 <= status < 300:
        return "2xx"
    if 400 <= status < 500:
        return "4xx"
    if status >= 500:
        return "5xx"
    return str(status)


def run_loadgen(
    url: str,
    *,
    rate: float = 100.0,
    duration_s: float = 5.0,
    concurrency: int = 256,
    rounds: int = 1,
    unique_seeds: int = 8,
    case: str = "I",
    protocol: str = "fsa",
    scheme: str = "qcd-8",
    priority: int = 5,
    client_name: str = "loadgen",
    timeout_s: float = 60.0,
    router: bool = False,
) -> dict:
    """Drive the server and return the report document.

    With ``router=True`` the target is a ``repro-serve-router`` front
    door: the report additionally snapshots the fleet (ring size and
    per-backend state/restart counts from the router's ``/healthz``)
    before and after the run, so a CI gate can assert the run really
    exercised N backends -- and see whether any died under load.
    """
    if rate <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    n_requests = max(1, int(rate * duration_s))
    fleet_before = _fleet_snapshot(url, timeout_s) if router else None
    tally = _Tally()
    start = time.perf_counter()

    def one(i: int) -> None:
        scheduled = start + i / rate
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        else:
            with tally._lock:
                tally.schedule_lag_s = max(tally.schedule_lag_s, -delay)
        body = {
            "version": 1,
            "cases": [case],
            "protocols": [protocol],
            "schemes": [scheme],
            "rounds": rounds,
            "seed": 20_100 + (i % unique_seeds),
            "mode": "sync",
            "priority": priority,
            "client": f"{client_name}-{i % 4}",
        }
        # No retries: the load generator measures the server's first
        # answer (shed or served), not the client's patience.
        client = ServeClient(url, retries=0, timeout_s=timeout_s)
        tally.enter()
        t0 = time.perf_counter()
        try:
            status, _headers, _payload = client.request(
                "POST", "/v1/simulate", body
            )
        except Exception:
            status = -1
        tally.exit(
            _status_class(status) if status != -1 else "error",
            (time.perf_counter() - t0) * 1000.0,
            client.last_server_timing if status == 200 else None,
        )

    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        futures = [pool.submit(one, i) for i in range(n_requests)]
        for fut in futures:
            fut.result()
    elapsed = time.perf_counter() - start

    latencies = sorted(tally.latencies_ms)
    served = tally.statuses.get("2xx", 0)
    shed = tally.statuses.get("429", 0)
    errored = sum(
        n for k, n in tally.statuses.items() if k in ("5xx", "error")
    )
    total = sum(tally.statuses.values())
    report: dict = {
        "config": {
            "url": url,
            "rate_rps": rate,
            "duration_s": duration_s,
            "concurrency": concurrency,
            "rounds": rounds,
            "unique_seeds": unique_seeds,
            "case": case,
            "protocol": protocol,
            "scheme": scheme,
            "router": router,
        },
        "offered": n_requests,
        "offered_rps": n_requests / elapsed,
        "completed": served,
        "achieved_rps": served / elapsed,
        "goodput_ratio": served / total if total else 0.0,
        "shed": shed,
        "errors": errored,
        "statuses": dict(sorted(tally.statuses.items())),
        "max_in_flight": tally.max_in_flight,
        "schedule_lag_s": round(tally.schedule_lag_s, 3),
        "elapsed_s": elapsed,
        "latency_ms": {
            "p50": percentile(latencies, 50),
            "p90": percentile(latencies, 90),
            "p99": percentile(latencies, 99),
            "max": latencies[-1] if latencies else float("nan"),
            "mean": sum(latencies) / len(latencies) if latencies else float("nan"),
        },
        # Server-side attribution from the Server-Timing header: where
        # did served requests spend their time, by pipeline stage.
        "server_timing_ms": {
            stage: {
                "n": len(values),
                "p50": percentile(sorted(values), 50),
                "p90": percentile(sorted(values), 90),
                "p99": percentile(sorted(values), 99),
                "mean": sum(values) / len(values),
            }
            for stage, values in sorted(tally.stage_ms.items())
        },
    }
    if router:
        report["fleet"] = {
            "before": fleet_before,
            "after": _fleet_snapshot(url, timeout_s),
        }
    return report


def _fleet_snapshot(url: str, timeout_s: float) -> dict | None:
    """Ring size + per-backend state from a router's ``/healthz``."""
    try:
        doc = ServeClient(url, retries=2, timeout_s=timeout_s).healthz()
    except Exception as exc:  # advisory: a lost snapshot isn't a 5xx
        return {"error": f"{type(exc).__name__}: {exc}"}
    return {
        "ring_nodes": doc.get("ring_nodes"),
        "backends": [
            {
                "id": b.get("id"),
                "state": b.get("state"),
                "restarts": b.get("restarts"),
            }
            for b in doc.get("backends", [])
        ],
    }


def check_against_baseline(
    report: dict, baseline: dict, tolerance: float
) -> list[str]:
    """Ratio-based regression findings (empty = gate passes).

    Mirrors ``repro-bench``'s contract: absolute numbers are
    machine-bound, ratios transfer.
    """
    problems: list[str] = []
    if report.get("errors", 0):
        problems.append(
            f"{report['errors']} request(s) hit a 5xx/transport error; "
            "the overload contract is 429-shed, never 500"
        )
    base_ratio = baseline.get("goodput_ratio")
    ratio = report.get("goodput_ratio", 0.0)
    if base_ratio is not None and ratio < base_ratio * (1.0 - tolerance):
        problems.append(
            f"goodput ratio regressed: {ratio:.2%} vs baseline "
            f"{base_ratio:.2%} (> {tolerance:.0%} drop)"
        )
    return problems


def check_beats_baseline(report: dict, single: dict) -> list[str]:
    """Findings if this run does not *beat* a single-process baseline.

    The fleet claim (``docs/SERVING.md``): a router over N backends
    sustains a **higher offered rate** than one ``repro-serve`` process
    at **no worse goodput ratio**.  Absolute RPS is machine-bound, so
    the check is structural -- this run's *configured* offered rate must
    exceed the single-process baseline's, while the goodput ratio (a
    machine-independent ratio) holds up.
    """
    problems: list[str] = []
    single_rate = single.get("config", {}).get("rate_rps")
    rate = report.get("config", {}).get("rate_rps", 0.0)
    if single_rate is not None and rate <= single_rate:
        problems.append(
            f"offered rate {rate:g} rps does not exceed the "
            f"single-process baseline's {single_rate:g} rps"
        )
    single_ratio = single.get("goodput_ratio")
    ratio = report.get("goodput_ratio", 0.0)
    if single_ratio is not None and ratio < single_ratio:
        problems.append(
            f"goodput ratio {ratio:.2%} at the higher rate is below the "
            f"single-process baseline's {single_ratio:.2%}"
        )
    return problems


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description=(
            "Open-loop load generator for repro-serve: offered-rate "
            "arrivals, latency percentiles, ratio-gated baseline."
        ),
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8537", help="server base URL"
    )
    parser.add_argument("--rate", type=float, default=100.0, help="offered RPS")
    parser.add_argument(
        "--duration", type=float, default=5.0, help="seconds of offered load"
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=256,
        help="max concurrent in-flight requests (default 256)",
    )
    parser.add_argument("--rounds", type=int, default=1)
    parser.add_argument(
        "--unique",
        type=int,
        default=8,
        dest="unique_seeds",
        help="distinct seeds cycled through (smaller = more coalescing)",
    )
    parser.add_argument("--case", default="I")
    parser.add_argument("--protocol", default="fsa")
    parser.add_argument("--scheme", default="qcd-8")
    parser.add_argument(
        "--router",
        action="store_true",
        help="target is a repro-serve-router: snapshot the fleet "
        "(ring size, backend states) into the report",
    )
    parser.add_argument(
        "--beat-baseline",
        default=None,
        metavar="FILE",
        dest="beat_baseline",
        help="single-process baseline this run must beat: higher offered "
        "rate at no worse goodput ratio (the fleet speedup gate)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE", help="write the JSON report"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="committed baseline to gate ratios against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional goodput-ratio regression (default 0.5)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    report = run_loadgen(
        args.url,
        rate=args.rate,
        duration_s=args.duration,
        concurrency=args.concurrency,
        rounds=args.rounds,
        unique_seeds=args.unique_seeds,
        case=args.case,
        protocol=args.protocol,
        scheme=args.scheme,
        router=args.router,
    )
    lat = report["latency_ms"]
    print(
        f"offered {report['offered']} ({report['offered_rps']:.1f} rps) | "
        f"served {report['completed']} ({report['achieved_rps']:.1f} rps) | "
        f"shed {report['shed']} | errors {report['errors']} | "
        f"max in-flight {report['max_in_flight']}"
    )
    print(
        f"latency ms: p50 {lat['p50']:.1f} | p90 {lat['p90']:.1f} | "
        f"p99 {lat['p99']:.1f} | max {lat['max']:.1f}"
    )
    for stage, s in report["server_timing_ms"].items():
        print(
            f"  stage {stage}: p50 {s['p50']:.1f} ms | "
            f"p90 {s['p90']:.1f} ms | p99 {s['p99']:.1f} ms "
            f"(n={s['n']})"
        )
    fleet = report.get("fleet", {}).get("after")
    if fleet and "error" not in fleet:
        states = ", ".join(
            f"{b['id']}={b['state']}" for b in fleet["backends"]
        )
        print(f"fleet: ring={fleet['ring_nodes']} [{states}]")
    if args.out:
        out = Path(args.out)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        problems = check_against_baseline(report, baseline, args.tolerance)
        for p in problems:
            print(f"REGRESSION: {p}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"gate OK vs {args.baseline} (tolerance {args.tolerance:.0%})"
        )
    if args.beat_baseline:
        single = json.loads(Path(args.beat_baseline).read_text())
        problems = check_beats_baseline(report, single)
        for p in problems:
            print(f"FLEET GATE: {p}", file=sys.stderr)
        if problems:
            return 1
        print(f"fleet gate OK: beats {args.beat_baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
