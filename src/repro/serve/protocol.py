"""Versioned wire schema of the simulation service (``/v1``).

One module owns every document that crosses the HTTP boundary -- the
simulate request, the job/result envelopes and the typed error envelope
-- so the server, the blocking client, the load generator and the
property-test strategies all agree on field names and validation rules.

Design rules:

* **strict validation** -- unknown keys, wrong types, out-of-range values
  and duplicate grid axes are all rejected with a
  :class:`ProtocolError` carrying a machine-readable ``code`` and the
  offending ``field``; a malformed request can never reach the engine
  (and therefore never turns into a 500);
* **versioned** -- every document carries ``"version"``;
  :data:`PROTOCOL_VERSION` is 1 and requests with any other version are
  rejected with ``unsupported_version`` so clients fail loudly, not
  subtly;
* **RFC 8259 clean** -- stats payloads pass through
  :func:`repro.sim.export.nan_to_none` before serialization (NaN is not
  JSON), mirroring the on-disk result cache.

The request names grid axes exactly like
:meth:`repro.experiments.runner.ExperimentSuite.grid`: ``cases`` (named
paper cases or inline ``{name, n_tags, frame_size}`` objects),
``protocols`` (``fsa``/``bt``) and ``schemes`` (``crc``/``qcd-<s>``);
their cross product is the job's grid-point list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.config import CASES, SimulationCase
from repro.sim.export import nan_to_none

__all__ = [
    "PROTOCOL_VERSION",
    "REQUEST_ID_HEADER",
    "SERVER_TIMING_HEADER",
    "MAX_REQUEST_ID_LEN",
    "valid_request_id",
    "server_timing_value",
    "parse_server_timing",
    "MAX_GRID_POINTS",
    "MAX_ROUNDS",
    "MAX_TAGS",
    "MAX_FRAME_SIZE",
    "MAX_SEED",
    "MAX_CLIENT_LEN",
    "PROTOCOLS",
    "MODES",
    "MIN_PRIORITY",
    "MAX_PRIORITY",
    "ERROR_STATUS",
    "ProtocolError",
    "GridPoint",
    "SimulateRequest",
    "parse_simulate_request",
    "parse_case",
    "parse_scheme",
    "error_envelope",
    "job_envelope",
    "result_line",
    "done_line",
    "sync_response",
]

#: Version of every ``/v1`` document; bump on incompatible schema change.
PROTOCOL_VERSION = 1

# -- request identity / timing headers ---------------------------------
#
# Every request is identified by an ``X-Request-Id``: the server honors
# a well-formed client-supplied value (so one logical request stays one
# trace across retries) or generates one, and echoes it on *every*
# response, including typed error envelopes.  ``Server-Timing`` carries
# the per-stage latency breakdown (milliseconds, per the header's spec)
# so clients can attribute slowness without server-side access.

REQUEST_ID_HEADER = "X-Request-Id"
SERVER_TIMING_HEADER = "Server-Timing"
MAX_REQUEST_ID_LEN = 128

#: Characters allowed in a client-supplied request id: URL/header-safe
#: tokens only, so ids can be grepped through logs and used in paths.
_REQUEST_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."
)


def valid_request_id(value: object) -> bool:
    """True if ``value`` is acceptable as a client-supplied request id."""
    return (
        isinstance(value, str)
        and 1 <= len(value) <= MAX_REQUEST_ID_LEN
        and all(c in _REQUEST_ID_CHARS for c in value)
    )


def server_timing_value(stage_s: Mapping[str, float]) -> str:
    """Render stage durations (seconds) as a ``Server-Timing`` value.

    ``{"queue_wait": 0.0123, "compute": 0.5}`` becomes
    ``queue_wait;dur=12.3, compute;dur=500.0`` (``dur`` is milliseconds
    per the Server-Timing specification).
    """
    return ", ".join(
        f"{stage};dur={seconds * 1000.0:.3f}"
        for stage, seconds in stage_s.items()
        if not math.isnan(seconds)
    )


def parse_server_timing(value: str) -> dict[str, float]:
    """Parse a ``Server-Timing`` header value into ``{stage: seconds}``.

    Tolerant by design (the header is advisory): entries without a
    parsable ``dur`` parameter are skipped rather than raising.
    """
    out: dict[str, float] = {}
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, *params = [p.strip() for p in entry.split(";")]
        if not name:
            continue
        for param in params:
            key, sep, raw = param.partition("=")
            if sep and key.strip().lower() == "dur":
                try:
                    out[name] = float(raw.strip()) / 1000.0
                except ValueError:
                    pass
                break
    return out

# Resource ceilings: a single request may not describe more work than one
# operator-sized experiment.  All are validation errors, not truncation.
MAX_GRID_POINTS = 64
MAX_ROUNDS = 10_000
MAX_TAGS = 200_000
MAX_FRAME_SIZE = 200_000
MAX_SEED = 2**63 - 1
MAX_CLIENT_LEN = 64
MAX_CASE_NAME_LEN = 64
MAX_QCD_STRENGTH = 64

PROTOCOLS = ("fsa", "bt")
MODES = ("sync", "async")
MIN_PRIORITY = 0
MAX_PRIORITY = 9

#: error code -> HTTP status.  Every error the service emits uses one of
#: these codes; anything else is a bug.
ERROR_STATUS = {
    "invalid_request": 400,
    "unsupported_version": 400,
    "not_found": 404,
    "method_not_allowed": 405,
    "payload_too_large": 413,
    "overloaded": 429,
    "internal": 500,
    "draining": 503,
}


class ProtocolError(Exception):
    """A typed wire-level error, rendered as the JSON error envelope.

    ``code`` must be a key of :data:`ERROR_STATUS`; ``field`` names the
    offending request field when there is one; ``retry_after_s`` (for
    ``overloaded``/``draining``) becomes the ``Retry-After`` header.
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        field: str | None = None,
        retry_after_s: float | None = None,
    ) -> None:
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.field = field
        self.retry_after_s = retry_after_s

    @property
    def status(self) -> int:
        return ERROR_STATUS[self.code]


def _invalid(message: str, field: str | None = None) -> ProtocolError:
    return ProtocolError("invalid_request", message, field=field)


def _require_int(
    value: object, field: str, lo: int, hi: int
) -> int:
    # bool is an int subclass; a JSON true/false here is a type error.
    if isinstance(value, bool) or not isinstance(value, int):
        raise _invalid(f"{field} must be an integer", field)
    if not lo <= value <= hi:
        raise _invalid(f"{field} must be in [{lo}, {hi}]", field)
    return value


def _require_str(value: object, field: str, max_len: int) -> str:
    if not isinstance(value, str):
        raise _invalid(f"{field} must be a string", field)
    if not value or len(value) > max_len:
        raise _invalid(
            f"{field} must be 1..{max_len} characters", field
        )
    if not value.isprintable():
        raise _invalid(f"{field} must be printable", field)
    return value


def _require_list(value: object, field: str, max_len: int) -> list:
    if not isinstance(value, list):
        raise _invalid(f"{field} must be an array", field)
    if not value:
        raise _invalid(f"{field} must not be empty", field)
    if len(value) > max_len:
        raise _invalid(f"{field} has more than {max_len} entries", field)
    return value


def parse_case(value: object, field: str = "cases") -> SimulationCase:
    """A named paper case (``"I"``..``"IV"``) or an inline case object."""
    if isinstance(value, str):
        case = CASES.get(value)
        if case is None:
            raise _invalid(
                f"unknown named case {value!r} "
                f"(known: {', '.join(CASES)})",
                field,
            )
        return case
    if isinstance(value, dict):
        extra = set(value) - {"name", "n_tags", "frame_size"}
        if extra:
            raise _invalid(
                f"unknown case keys: {', '.join(sorted(extra))}", field
            )
        missing = {"name", "n_tags", "frame_size"} - set(value)
        if missing:
            raise _invalid(
                f"case object missing keys: {', '.join(sorted(missing))}",
                field,
            )
        return SimulationCase(
            name=_require_str(value["name"], f"{field}.name", MAX_CASE_NAME_LEN),
            n_tags=_require_int(value["n_tags"], f"{field}.n_tags", 0, MAX_TAGS),
            frame_size=_require_int(
                value["frame_size"], f"{field}.frame_size", 1, MAX_FRAME_SIZE
            ),
        )
    raise _invalid(f"{field} entries must be case names or objects", field)


def parse_scheme(value: object, field: str = "schemes") -> str:
    """``"crc"`` or ``"qcd-<strength>"`` with strength 1..64."""
    if not isinstance(value, str):
        raise _invalid(f"{field} entries must be strings", field)
    if value == "crc":
        return value
    if value.startswith("qcd-"):
        suffix = value[4:]
        if suffix.isdigit() and 1 <= int(suffix) <= MAX_QCD_STRENGTH:
            # Canonical form rejects leading zeros ("qcd-08" != "qcd-8").
            if str(int(suffix)) == suffix:
                return value
    raise _invalid(
        f"unknown scheme {value!r} (expected 'crc' or 'qcd-<1..{MAX_QCD_STRENGTH}>')",
        field,
    )


@dataclass(frozen=True)
class GridPoint:
    """One (case, protocol, scheme) cell of a job's evaluation grid."""

    case: SimulationCase
    protocol: str
    scheme: str

    def to_wire(self) -> dict:
        return {
            "case": {
                "name": self.case.name,
                "n_tags": self.case.n_tags,
                "frame_size": self.case.frame_size,
            },
            "protocol": self.protocol,
            "scheme": self.scheme,
        }


@dataclass(frozen=True)
class SimulateRequest:
    """A validated ``POST /v1/simulate`` body."""

    points: tuple[GridPoint, ...]
    rounds: int = 10
    seed: int = 2010
    mode: str = "sync"
    priority: int = 5
    client: str = "anonymous"
    version: int = PROTOCOL_VERSION

    def to_wire(self) -> dict:
        """Canonical wire form (named cases expanded to case objects)."""
        cases: list[dict] = []
        protocols: list[str] = []
        schemes: list[str] = []
        for p in self.points:
            case = GridPoint.to_wire(p)["case"]
            if case not in cases:
                cases.append(case)
            if p.protocol not in protocols:
                protocols.append(p.protocol)
            if p.scheme not in schemes:
                schemes.append(p.scheme)
        return {
            "version": self.version,
            "cases": cases,
            "protocols": protocols,
            "schemes": schemes,
            "rounds": self.rounds,
            "seed": self.seed,
            "mode": self.mode,
            "priority": self.priority,
            "client": self.client,
        }


_REQUEST_KEYS = {
    "version",
    "cases",
    "protocols",
    "schemes",
    "rounds",
    "seed",
    "mode",
    "priority",
    "client",
}
_REQUIRED_KEYS = {"version", "cases", "protocols", "schemes"}


def parse_simulate_request(doc: object) -> SimulateRequest:
    """Validate a decoded JSON body into a :class:`SimulateRequest`.

    Raises :class:`ProtocolError` (always a 4xx) on any malformation; a
    request that parses is safe to admit.  The grid is the cross product
    ``cases x protocols x schemes``; duplicate axis entries are rejected
    so a job never contains the same grid point twice.
    """
    if not isinstance(doc, dict):
        raise _invalid("request body must be a JSON object")
    extra = set(doc) - _REQUEST_KEYS
    if extra:
        raise _invalid(f"unknown keys: {', '.join(sorted(extra))}")
    missing = _REQUIRED_KEYS - set(doc)
    if missing:
        raise _invalid(f"missing keys: {', '.join(sorted(missing))}")

    version = doc["version"]
    if isinstance(version, bool) or not isinstance(version, int):
        raise _invalid("version must be an integer", "version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported_version",
            f"protocol version {version} is not supported "
            f"(this server speaks {PROTOCOL_VERSION})",
            field="version",
        )

    cases = [
        parse_case(v)
        for v in _require_list(doc["cases"], "cases", MAX_GRID_POINTS)
    ]
    if len(set(cases)) != len(cases):
        raise _invalid("duplicate entries in cases", "cases")
    protocols = _require_list(doc["protocols"], "protocols", len(PROTOCOLS))
    for p in protocols:
        if p not in PROTOCOLS:
            raise _invalid(
                f"unknown protocol {p!r} (expected one of {PROTOCOLS})",
                "protocols",
            )
    if len(set(protocols)) != len(protocols):
        raise _invalid("duplicate entries in protocols", "protocols")
    schemes = [
        parse_scheme(v)
        for v in _require_list(doc["schemes"], "schemes", MAX_GRID_POINTS)
    ]
    if len(set(schemes)) != len(schemes):
        raise _invalid("duplicate entries in schemes", "schemes")

    n_points = len(cases) * len(protocols) * len(schemes)
    if n_points > MAX_GRID_POINTS:
        raise _invalid(
            f"grid has {n_points} points, more than the "
            f"{MAX_GRID_POINTS}-point request ceiling",
            "cases",
        )

    rounds = _require_int(doc.get("rounds", 10), "rounds", 1, MAX_ROUNDS)
    seed = _require_int(doc.get("seed", 2010), "seed", 0, MAX_SEED)
    mode = doc.get("mode", "sync")
    if mode not in MODES:
        raise _invalid(f"mode must be one of {MODES}", "mode")
    priority = _require_int(
        doc.get("priority", 5), "priority", MIN_PRIORITY, MAX_PRIORITY
    )
    client = _require_str(
        doc.get("client", "anonymous"), "client", MAX_CLIENT_LEN
    )

    points = tuple(
        GridPoint(case=c, protocol=p, scheme=s)
        for c in cases
        for p in protocols
        for s in schemes
    )
    return SimulateRequest(
        points=points,
        rounds=rounds,
        seed=seed,
        mode=mode,
        priority=priority,
        client=client,
        version=version,
    )


# ----------------------------------------------------------------------
# Response envelopes


def error_envelope(
    exc: ProtocolError, request_id: str | None = None
) -> dict:
    """The JSON error document every non-2xx response carries.

    ``request_id`` mirrors the ``X-Request-Id`` response header into the
    body, so error envelopes stay joinable to traces even when a proxy
    strips custom headers.
    """
    error: dict[str, object] = {"code": exc.code, "message": exc.message}
    if exc.field is not None:
        error["field"] = exc.field
    if exc.retry_after_s is not None:
        error["retry_after_s"] = exc.retry_after_s
    doc: dict[str, object] = {"version": PROTOCOL_VERSION, "error": error}
    if request_id is not None:
        doc["request_id"] = request_id
    return doc


def job_envelope(
    job_id: str,
    state: str,
    n_points: int,
    completed: int,
    request_id: str | None = None,
) -> dict:
    """The ``202 Accepted`` body (and the NDJSON stream's header line).

    ``request_id`` joins the job to the admitting request's trace: the
    NDJSON output of an async job can then be correlated offline with
    the access log, span tree and stage histograms of the ``POST
    /v1/simulate`` that created it.
    """
    doc: dict[str, object] = {
        "version": PROTOCOL_VERSION,
        "type": "job",
        "job_id": job_id,
        "state": state,
        "points": n_points,
        "completed": completed,
        "location": f"/v1/jobs/{job_id}",
    }
    if request_id is not None:
        doc["request_id"] = request_id
    return doc


def result_line(
    point: GridPoint, stats: Mapping[str, object], source: str
) -> dict:
    """One completed grid point (one NDJSON line; NaN already scrubbed).

    ``source`` records where the numbers came from: ``computed`` (a
    kernel run), ``cache`` (the on-disk result cache), ``memo`` (the
    suite's in-memory memo) or ``coalesced`` (deduplicated onto another
    request's in-flight computation).
    """
    return {
        "type": "result",
        "point": point.to_wire(),
        "stats": nan_to_none(dict(stats)),
        "source": source,
    }


def done_line(
    job_id: str, state: str, elapsed_s: float, error: str | None = None
) -> dict:
    """The NDJSON stream's terminal line."""
    doc: dict[str, object] = {
        "type": "done",
        "job_id": job_id,
        "state": state,
        "elapsed_s": elapsed_s if not math.isnan(elapsed_s) else None,
    }
    if error is not None:
        doc["error"] = error
    return doc


def sync_response(
    job_id: str,
    state: str,
    results: Sequence[dict],
    elapsed_s: float,
    request_id: str | None = None,
) -> dict:
    """The ``200 OK`` body of a synchronous simulate call."""
    doc: dict[str, object] = {
        "version": PROTOCOL_VERSION,
        "job_id": job_id,
        "state": state,
        "results": list(results),
        "elapsed_s": elapsed_s,
    }
    if request_id is not None:
        doc["request_id"] = request_id
    return doc
