"""Request coalescing: identical in-flight grid points compute once.

A thundering herd of clients asking for the same grid point (same case,
protocol, scheme, rounds, seed, timing -- i.e. the same
:func:`repro.experiments.cache.cache_key` content hash) should cost one
kernel run, not N.  The on-disk :class:`~repro.experiments.cache.ResultCache`
already deduplicates *sequential* repeats; this module deduplicates the
*concurrent* window before the first computation lands:

* the first worker to lease a key becomes the **leader** and computes;
* every other worker leasing the same key while the leader is in flight
  becomes a **follower** and awaits the leader's future;
* the leader ``resolve``\\ s the future (result or exception) and the key
  leaves the table -- afterwards the disk cache / suite memo take over.

Single event loop only: leases are taken and resolved on the loop
thread (the blocking compute itself runs in a worker thread), so no
locking is needed.
"""

from __future__ import annotations

import asyncio
from typing import Callable

__all__ = ["Coalescer"]


def _mark_retrieved(fut: asyncio.Future) -> None:
    # Touch the exception so a leader-only failure (no followers ever
    # awaited) does not log "exception was never retrieved".
    if not fut.cancelled():
        fut.exception()


class Coalescer:
    """Table of in-flight computations keyed by content hash."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}
        self.hits = 0  # follower leases served since construction
        self.leads = 0  # leader leases granted since construction

    def in_flight(self) -> int:
        return len(self._inflight)

    def snapshot(self) -> dict:
        """Live coalesce table for ``/debugz``: keys currently leased,
        plus lifetime leader/follower counts."""
        return {
            "in_flight": len(self._inflight),
            "keys": sorted(self._inflight),
            "hits": self.hits,
            "leads": self.leads,
        }

    def lease(self, key: str) -> tuple[bool, asyncio.Future]:
        """``(leader, future)`` for ``key``.

        The leader must eventually call :meth:`resolve` exactly once;
        followers just await the future (which never leaves this table
        unresolved).
        """
        fut = self._inflight.get(key)
        if fut is not None:
            self.hits += 1
            return False, fut
        fut = asyncio.get_running_loop().create_future()
        fut.add_done_callback(_mark_retrieved)
        self._inflight[key] = fut
        self.leads += 1
        return True, fut

    def resolve(
        self, key: str, result: object = None, error: BaseException | None = None
    ) -> None:
        """Publish the leader's outcome to every follower and clear the key."""
        fut = self._inflight.pop(key)
        if fut.done():  # pragma: no cover - defensive; resolve is once-only
            return
        if error is not None:
            fut.set_exception(error)
        else:
            fut.set_result(result)

    async def compute(self, key: str, thunk: Callable[[], object]) -> tuple[object, bool]:
        """Convenience: run ``thunk`` (an awaitable factory) under the
        lease protocol.  Returns ``(result, coalesced)``."""
        leader, fut = self.lease(key)
        if not leader:
            return await asyncio.shield(fut), True
        try:
            result = await thunk()
        except BaseException as exc:
            self.resolve(key, error=exc)
            raise
        self.resolve(key, result)
        return result, False
