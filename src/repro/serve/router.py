"""``repro-serve-router`` -- the consistent-hash fleet front door.

One router process sits in front of N ``repro-serve`` backends (spawned
subprocesses or externally managed addresses) and makes the
single-process serving guarantees *fleet-wide*:

* **placement** -- every grid point is hashed on its
  :func:`repro.experiments.cache.cache_key` content hash onto a
  consistent-hash ring (:mod:`repro.serve.ring`), so identical points
  from any number of clients always land on the same backend, whose
  in-process coalescer and memo dedupe them: N identical requests still
  cost one kernel run across the whole fleet;
* **tiered cache** -- backends share one on-disk
  :class:`~repro.experiments.cache.ResultCache` directory (L2) behind
  their per-process memo (L1); ring placement makes each key's owner its
  only routine L2 writer (single-writer discipline);
* **failure routing** -- a backend failing its health probe, answering
  ``503 draining``, or dropping a connection is ejected from the ring;
  its keys remap to the survivors and the affected forward is retried
  once on the new owner, so a SIGKILLed or draining backend never
  surfaces as a client-visible 5xx;
* **async jobs** -- ``mode: async`` jobs are homed on one backend; the
  router proxies their NDJSON stream and, if the home dies mid-stream,
  resubmits the job to the new owner and resumes the stream without
  duplicating already-delivered result lines.

Routes mirror ``repro-serve`` (``POST /v1/simulate``, ``GET
/v1/jobs/<id>``, ``/healthz``, ``/metrics``); ``/healthz`` additionally
reports per-backend state and URLs so operators (and the CI smoke job)
can find the fleet members.  ``X-Request-Id`` is honored/generated
exactly like the backend does and forwarded verbatim on every hop, so
one logical request is one trace across both tiers; ``ROUTER_*``
metrics and ``router.*`` spans cover the router's own pipeline.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import secrets
import signal
import sys
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Sequence

from repro import obs
from repro.experiments.cache import cache_key, grid_point_params
from repro.experiments.config import CRC_BITS, ID_BITS, TAU
from repro.obs import context as _ctx
from repro.obs import instruments as _inst
from repro.obs.state import STATE as _OBS
from repro.obs.tracing import JsonlSink, NullSink, Tracer
from repro.serve import http1
from repro.serve import protocol as proto
from repro.serve.backend import (
    Backend,
    BackendSpawnConfig,
    BackendSupervisor,
)
from repro.serve.ring import DEFAULT_VNODES, EmptyRingError, HashRing

__all__ = ["RouterConfig", "RouterApp", "main", "build_parser"]

#: Async jobs remembered for ``GET /v1/jobs/<id>`` proxying/resume.
JOB_BACKLOG = 1024

#: Transport failures that mean "this backend hop failed", as opposed to
#: a parsed HTTP response.  ``http1.HttpError`` covers a malformed
#: backend response (a dying process can truncate mid-head).
_HOP_ERRORS = (
    ConnectionError,
    OSError,
    asyncio.TimeoutError,
    asyncio.IncompleteReadError,
    http1.HttpError,
)


class _ClientGone(Exception):
    """The *client* connection failed mid-response.

    Client-side writes inside the job-stream proxy are wrapped into this
    distinct type so a client hanging up is never mistaken for a backend
    hop failure (which would wrongly eject a healthy backend).
    """


async def _client_write(writer: asyncio.StreamWriter, data: bytes) -> None:
    try:
        writer.write(data)
        await writer.drain()
    except (ConnectionError, OSError) as exc:
        raise _ClientGone(str(exc)) from exc


@dataclass
class RouterConfig:
    """Everything ``repro-serve-router`` can be told from the CLI."""

    host: str = "127.0.0.1"
    port: int = 8600
    backends: int = 2  # spawned repro-serve processes
    attach: tuple[str, ...] = ()  # "host:port" of external backends
    backend_concurrency: int = 4
    mc_workers: int = 1
    queue_capacity: int = 512
    cache_dir: str | None = None  # shared L2 ResultCache directory
    compute_floor_s: float = 0.0
    vnodes: int = DEFAULT_VNODES
    retries: int = 1  # re-routes per forward after an ejection
    health_interval_s: float = 0.5
    health_timeout_s: float = 2.0
    forward_timeout_s: float = 300.0
    restart: bool = True  # respawn dead spawned backends
    restart_backoff_s: float = 0.5
    drain_grace_s: float = 30.0
    trace_out: str | None = None
    obs_enabled: bool = True


@dataclass
class RouterJob:
    """One async job homed on a backend, resumable after its death."""

    id: str  # the router-level job id clients see
    doc: dict  # the validated simulate body (canonical wire form)
    backend_id: str
    backend_job_id: str
    request_id: str | None
    n_points: int
    resumes: int = 0


def new_router_job_id() -> str:
    return f"rjob-{secrets.token_hex(8)}"


def _point_json(point_doc: object) -> str:
    return json.dumps(point_doc, sort_keys=True, separators=(",", ":"))


class RouterApp:
    """The wired router: ring + supervisor + HTTP front end."""

    def __init__(self, config: RouterConfig | None = None) -> None:
        self.config = config if config is not None else RouterConfig()
        if self.config.backends < 0:
            raise ValueError("backends must be >= 0")
        if not self.config.backends and not self.config.attach:
            raise ValueError("router needs at least one backend")
        self.ring = HashRing(vnodes=self.config.vnodes)
        backends: list[Backend] = []
        spawn_config = BackendSpawnConfig(
            concurrency=self.config.backend_concurrency,
            mc_workers=self.config.mc_workers,
            queue_capacity=self.config.queue_capacity,
            cache_dir=self.config.cache_dir,
            compute_floor_s=self.config.compute_floor_s,
            drain_grace_s=self.config.drain_grace_s,
        )
        for i in range(self.config.backends):
            backends.append(Backend(f"b{i}", spawn_config=replace(spawn_config)))
        for i, addr in enumerate(self.config.attach):
            host, _, port = addr.rpartition(":")
            backends.append(
                Backend(f"ext{i}", host=host or "127.0.0.1", port=int(port))
            )
        self.supervisor = BackendSupervisor(
            backends,
            on_up=self._backend_up,
            on_down=self._backend_down,
            health_interval_s=self.config.health_interval_s,
            health_timeout_s=self.config.health_timeout_s,
            restart=self.config.restart,
            restart_backoff_s=self.config.restart_backoff_s,
        )
        self.jobs: OrderedDict[str, RouterJob] = OrderedDict()
        self.draining = False
        self.started_s = time.monotonic()
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._closed = asyncio.Event()
        self._drain_task: asyncio.Task | None = None
        self._handlers: set[asyncio.Task] = set()
        self._trace_sink: JsonlSink | None = None
        #: Set once at least one backend has joined the ring; simulate
        #: calls arriving before that wait (briefly) instead of 503ing
        #: during the fleet's first seconds.
        self._ring_ready = asyncio.Event()

    # -- ring membership ------------------------------------------------

    def _backend_up(self, backend: Backend) -> None:
        self.ring.add(backend.id)
        self._ring_ready.set()
        self._gauge_backends()

    def _backend_down(self, backend: Backend, reason: str) -> None:
        self.ring.remove(backend.id)
        self._gauge_backends()
        if _OBS.enabled:
            _OBS.registry.counter(
                _inst.ROUTER_EJECTIONS,
                "Backends ejected from the ring, by reason",
                labelnames=("reason",),
            ).labels(reason=reason.split(":")[0].replace(" ", "_")).inc()

    def _gauge_backends(self) -> None:
        if _OBS.enabled:
            _OBS.registry.gauge(
                _inst.ROUTER_BACKENDS_HEALTHY,
                "Healthy backends currently on the hash ring",
            ).set(len(self.ring))

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        if self.config.obs_enabled:
            if self.config.trace_out:
                self._trace_sink = JsonlSink(self.config.trace_out)
                obs.enable(sink=self._trace_sink)
            else:
                obs.enable()
        await self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        await self._closed.wait()

    def begin_drain(self) -> None:
        """Stop admitting; drain handlers; drain spawned backends; exit."""
        if self._drain_task is not None:
            return
        self.draining = True
        self._drain_task = asyncio.get_running_loop().create_task(
            self._drain()
        )

    async def _drain(self) -> None:
        if self._handlers:
            _done, pending = await asyncio.wait(
                self._handlers, timeout=self.config.drain_grace_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.supervisor.stop(self.config.drain_grace_s)
        if self._trace_sink is not None:
            if _OBS.tracer.sink is self._trace_sink:
                _OBS.tracer = Tracer(NullSink())
            self._trace_sink.close()
        self._closed.set()

    async def aclose(self) -> None:
        self.begin_drain()
        await self.wait_closed()

    # -- key derivation -------------------------------------------------

    def point_key(
        self, rounds: int, seed: int, point: proto.GridPoint
    ) -> str:
        """The PR-2 cache-key content hash -- the fleet routing key.

        Uses :func:`grid_point_params` with the paper-default timing
        model, which is exactly what every backend's suite hashes (the
        serve tier exposes no timing overrides).
        """
        return cache_key(
            grid_point_params(
                rounds=rounds,
                seed=seed,
                tau=TAU,
                id_bits=ID_BITS,
                crc_bits=CRC_BITS,
                case_name=point.case.name,
                n_tags=point.case.n_tags,
                frame_size=point.case.frame_size,
                protocol=point.protocol,
                scheme=point.scheme,
            )
        )

    # -- HTTP plumbing (same stack as the backends) ---------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        route = "unmatched"
        status = 500
        scope_rid = _ctx.new_request_id()
        tracer: Tracer | None = None
        try:
            try:
                request = await asyncio.wait_for(
                    http1.read_request(reader),
                    timeout=http1.REQUEST_READ_TIMEOUT,
                )
            except asyncio.TimeoutError:
                status = 408
                with _ctx.bound_context(request_id=scope_rid):
                    await http1.send_json(
                        writer,
                        408,
                        proto.error_envelope(
                            proto.ProtocolError(
                                "invalid_request",
                                "timed out waiting for the request",
                            ),
                            request_id=scope_rid,
                        ),
                    )
                return
            except http1.HttpError as exc:
                status = exc.status
                with _ctx.bound_context(request_id=scope_rid):
                    await http1.send_json(
                        writer,
                        exc.status,
                        proto.error_envelope(
                            proto.ProtocolError(
                                "invalid_request"
                                if exc.status < 500
                                else "internal",
                                str(exc),
                            ),
                            request_id=scope_rid,
                        ),
                    )
                return
            supplied = request.headers.get("x-request-id")
            if proto.valid_request_id(supplied):
                scope_rid = supplied
            if _OBS.enabled:
                tracer = Tracer(_OBS.tracer.sink, trace_id=scope_rid)
            with _ctx.bound_context(tracer=tracer, request_id=scope_rid):
                if tracer is not None:
                    tracer.start_span(
                        "router.request",
                        method=request.method,
                        path=request.path,
                    )
                try:
                    route, status = await self._dispatch(
                        request, writer, scope_rid
                    )
                finally:
                    if tracer is not None:
                        tracer.end_span(route=route, status=status)
        except (ConnectionError, asyncio.IncompleteReadError, _ClientGone):
            status = 0  # client went away
        except Exception as exc:  # last-resort 500, never a crash
            status = 500
            try:
                with _ctx.bound_context(request_id=scope_rid):
                    await http1.send_json(
                        writer,
                        500,
                        proto.error_envelope(
                            proto.ProtocolError(
                                "internal", f"{type(exc).__name__}: {exc}"
                            ),
                            request_id=scope_rid,
                        ),
                    )
            except ConnectionError:  # pragma: no cover
                pass
        finally:
            if _OBS.enabled and status:
                _OBS.registry.counter(
                    _inst.ROUTER_REQUESTS,
                    "Requests through the router, by route and status",
                    labelnames=("route", "status"),
                ).labels(route=route, status=status).inc()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(
        self,
        request: http1.HttpRequest,
        writer: asyncio.StreamWriter,
        rid: str,
    ) -> tuple[str, int]:
        path = request.path
        if path == "/healthz":
            if request.method != "GET":
                return "healthz", await self._method_not_allowed(writer, "GET")
            return "healthz", await self._handle_healthz(writer)
        if path == "/metrics":
            if request.method != "GET":
                return "metrics", await self._method_not_allowed(writer, "GET")
            text = _OBS.registry.to_prometheus()
            await http1.send_response(
                writer,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                text.encode("utf-8"),
            )
            return "metrics", 200
        if path == "/v1/simulate":
            if request.method != "POST":
                return "simulate", await self._method_not_allowed(
                    writer, "POST"
                )
            return "simulate", await self._handle_simulate(
                request, writer, rid
            )
        if path.startswith("/v1/jobs/"):
            if request.method != "GET":
                return "jobs", await self._method_not_allowed(writer, "GET")
            job_id = path[len("/v1/jobs/"):]
            return "jobs", await self._handle_job_stream(job_id, writer, rid)
        return "unmatched", await self._send_error(
            writer,
            proto.ProtocolError("not_found", f"no route for {path}"),
        )

    async def _method_not_allowed(
        self, writer: asyncio.StreamWriter, allowed: str
    ) -> int:
        exc = proto.ProtocolError(
            "method_not_allowed", f"only {allowed} is allowed here"
        )
        await http1.send_json(
            writer,
            exc.status,
            proto.error_envelope(exc, request_id=_ctx.current_request_id()),
            [("Allow", allowed)],
        )
        return exc.status

    async def _send_error(
        self, writer: asyncio.StreamWriter, exc: proto.ProtocolError
    ) -> int:
        headers: list[tuple[str, str]] = []
        if exc.retry_after_s is not None:
            headers.append(
                ("Retry-After", str(max(1, round(exc.retry_after_s))))
            )
        await http1.send_json(
            writer,
            exc.status,
            proto.error_envelope(exc, request_id=_ctx.current_request_id()),
            headers,
        )
        return exc.status

    # -- endpoints ------------------------------------------------------

    async def _handle_healthz(self, writer: asyncio.StreamWriter) -> int:
        doc = {
            "status": "draining" if self.draining else "ok",
            "router": True,
            "uptime_s": round(time.monotonic() - self.started_s, 3),
            "ring_nodes": len(self.ring),
            "backends": [
                b.snapshot() for b in self.supervisor.backends
            ],
            "jobs": len(self.jobs),
            "protocol_version": proto.PROTOCOL_VERSION,
        }
        await http1.send_json(writer, 200, doc)
        return 200

    async def _handle_simulate(
        self,
        request: http1.HttpRequest,
        writer: asyncio.StreamWriter,
        rid: str,
    ) -> int:
        # Validate at the edge: a malformed request never crosses the
        # backend hop (and therefore never counts against the fleet).
        try:
            doc = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return await self._send_error(
                writer,
                proto.ProtocolError(
                    "invalid_request", "request body is not valid JSON"
                ),
            )
        try:
            sim = proto.parse_simulate_request(doc)
        except proto.ProtocolError as exc:
            return await self._send_error(writer, exc)
        if self.draining:
            return await self._send_error(
                writer,
                proto.ProtocolError(
                    "draining",
                    "router is draining; retry against a healthy instance",
                    retry_after_s=self.config.drain_grace_s,
                ),
            )
        # Give the fleet a beat on cold start before shedding.
        try:
            await asyncio.wait_for(self._ring_ready.wait(), timeout=10.0)
        except asyncio.TimeoutError:
            pass
        if not len(self.ring):
            return await self._send_error(
                writer,
                proto.ProtocolError(
                    "overloaded",
                    "no healthy backend on the ring",
                    retry_after_s=self.config.health_interval_s * 4,
                ),
            )
        if sim.mode == "async":
            return await self._simulate_async(sim, writer, rid)
        return await self._simulate_sync(sim, writer, rid)

    # -- forwarding core ------------------------------------------------

    def _owner_for(self, key: str, tried: set[str]) -> Backend | None:
        """The healthiest untried owner of ``key`` in ring fallback order."""
        try:
            order = self.ring.owners(key, len(self.ring))
        except EmptyRingError:
            return None
        for backend_id in order:
            if backend_id in tried:
                continue
            backend = self.supervisor.by_id(backend_id)
            if backend is not None and backend.port is not None:
                return backend
        return None

    async def _forward(
        self,
        key: str,
        method: str,
        path: str,
        body: bytes | None,
        rid: str,
        *,
        timeout_s: float | None = None,
    ) -> tuple[int, dict[str, str], bytes, Backend]:
        """One keyed hop with eject-and-retry-once routing.

        Transport failures and ``503 draining`` eject the backend from
        the ring and re-route to the key's next owner, up to
        ``config.retries`` times; anything else (including 429) is the
        caller's to interpret.  Raises :class:`proto.ProtocolError`
        (``overloaded``) when every owner in reach has failed.
        """
        tried: set[str] = set()
        attempts = self.config.retries + 1
        last_reason = "no healthy backend on the ring"
        for attempt in range(attempts):
            backend = self._owner_for(key, tried)
            if backend is None:
                break
            tried.add(backend.id)
            tracer = _ctx.current_tracer()
            if tracer is not None:
                tracer.start_span(
                    "router.forward",
                    backend=backend.id,
                    path=path,
                    attempt=attempt,
                )
            t0 = time.perf_counter()
            outcome = "error"
            try:
                status, headers, payload = await http1.fetch(
                    backend.host,
                    backend.port,
                    method,
                    path,
                    body=body,
                    headers=[(proto.REQUEST_ID_HEADER, rid)],
                    timeout_s=(
                        timeout_s
                        if timeout_s is not None
                        else self.config.forward_timeout_s
                    ),
                )
            except _HOP_ERRORS as exc:
                last_reason = f"{type(exc).__name__} from {backend.id}"
                self.supervisor.eject(backend, "unreachable")
                self._count_forward(backend.id, "error", t0)
                self._count_retry()
                continue
            finally:
                if tracer is not None:
                    tracer.end_span(outcome=outcome)
            if status == 503 and _error_code(payload) == "draining":
                last_reason = f"backend {backend.id} draining"
                self.supervisor.eject(backend, "draining")
                self._count_forward(backend.id, "shed", t0)
                self._count_retry()
                continue
            self._count_forward(
                backend.id, "ok" if status < 500 else "error", t0
            )
            return status, headers, payload, backend
        raise proto.ProtocolError(
            "overloaded",
            f"no backend could serve this point ({last_reason})",
            retry_after_s=max(1.0, self.config.health_interval_s * 4),
        )

    def _count_forward(self, backend_id: str, outcome: str, t0: float) -> None:
        if not _OBS.enabled:
            return
        reg = _OBS.registry
        reg.counter(
            _inst.ROUTER_FORWARDS,
            "Router -> backend hops, by backend and outcome",
            labelnames=("backend", "outcome"),
        ).labels(backend=backend_id, outcome=outcome).inc()
        reg.histogram(
            _inst.ROUTER_FORWARD_SECONDS,
            "Wall time per backend hop",
            labelnames=("backend",),
        ).labels(backend=backend_id).observe(time.perf_counter() - t0)

    def _count_retry(self) -> None:
        if _OBS.enabled:
            _OBS.registry.counter(
                _inst.ROUTER_RETRIES,
                "Forwards re-routed to a new owner after an ejection",
            ).inc()

    # -- sync fan-out ---------------------------------------------------

    @staticmethod
    def _point_doc(sim: proto.SimulateRequest, point: proto.GridPoint) -> dict:
        """A single-point sync sub-request (the unit of fleet routing)."""
        return {
            "version": proto.PROTOCOL_VERSION,
            "cases": [proto.GridPoint.to_wire(point)["case"]],
            "protocols": [point.protocol],
            "schemes": [point.scheme],
            "rounds": sim.rounds,
            "seed": sim.seed,
            "mode": "sync",
            "priority": sim.priority,
            "client": sim.client,
        }

    async def _simulate_sync(
        self,
        sim: proto.SimulateRequest,
        writer: asyncio.StreamWriter,
        rid: str,
    ) -> int:
        t0 = time.monotonic()

        async def one(point: proto.GridPoint):
            key = self.point_key(sim.rounds, sim.seed, point)
            body = http1.json_payload(self._point_doc(sim, point))
            return await self._forward(key, "POST", "/v1/simulate", body, rid)

        outcomes = await asyncio.gather(
            *(one(p) for p in sim.points), return_exceptions=True
        )
        results: list[dict] = []
        served_by: dict[str, int] = {}
        failure: tuple[int, dict[str, str], bytes] | None = None
        shed: proto.ProtocolError | None = None
        for outcome in outcomes:
            if isinstance(outcome, proto.ProtocolError):
                shed = outcome  # every reachable owner failed
                continue
            if isinstance(outcome, BaseException):
                raise outcome  # unexpected: let the 500 guard report it
            status, headers, payload, backend = outcome
            if status == 200:
                try:
                    doc = json.loads(payload.decode("utf-8"))
                    point_results = doc["results"]
                except (ValueError, KeyError, TypeError):
                    raise RuntimeError(
                        f"backend {backend.id} returned an unparsable "
                        "sync response"
                    )
                results.extend(point_results)
                served_by[backend.id] = (
                    served_by.get(backend.id, 0) + len(point_results)
                )
                continue
            # Prefer reporting the most actionable failure: any hard
            # failure beats a shed; among responses keep the worst.
            if failure is None or status > failure[0]:
                failure = (status, headers, payload)
        if failure is not None:
            status, headers, payload = failure
            extra = []
            retry_after = headers.get("retry-after")
            if retry_after:
                extra.append(("Retry-After", retry_after))
            await http1.send_response(
                writer, status, "application/json", payload, extra
            )
            return status
        if shed is not None:
            return await self._send_error(writer, shed)
        doc = proto.sync_response(
            new_router_job_id(),
            "done",
            results,
            round(time.monotonic() - t0, 6),
            request_id=rid,
        )
        doc["served_by"] = dict(sorted(served_by.items()))
        await http1.send_json(writer, 200, doc)
        return 200

    # -- async jobs -----------------------------------------------------

    async def _simulate_async(
        self,
        sim: proto.SimulateRequest,
        writer: asyncio.StreamWriter,
        rid: str,
    ) -> int:
        # Home the whole job on the owner of its first point's key: the
        # job id must live on exactly one backend.  Per-point fleet
        # coalescing still applies to the sync path; an async job's
        # points coalesce within its home backend.
        wire = sim.to_wire()
        key = self.point_key(sim.rounds, sim.seed, sim.points[0])
        try:
            status, headers, payload, backend = await self._forward(
                key, "POST", "/v1/simulate", http1.json_payload(wire), rid
            )
        except proto.ProtocolError as exc:
            return await self._send_error(writer, exc)
        if status != 202:
            extra = []
            retry_after = headers.get("retry-after")
            if retry_after:
                extra.append(("Retry-After", retry_after))
            await http1.send_response(
                writer, status, "application/json", payload, extra
            )
            return status
        try:
            backend_doc = json.loads(payload.decode("utf-8"))
            backend_job_id = backend_doc["job_id"]
        except (ValueError, KeyError, TypeError):
            raise RuntimeError(
                f"backend {backend.id} returned an unparsable 202"
            )
        job = RouterJob(
            id=new_router_job_id(),
            doc=wire,
            backend_id=backend.id,
            backend_job_id=backend_job_id,
            request_id=rid,
            n_points=len(sim.points),
        )
        self.jobs[job.id] = job
        while len(self.jobs) > JOB_BACKLOG:
            self.jobs.popitem(last=False)
        await http1.send_json(
            writer,
            202,
            proto.job_envelope(
                job.id,
                backend_doc.get("state", "queued"),
                len(sim.points),
                0,
                request_id=rid,
            ),
        )
        return 202

    async def _handle_job_stream(
        self, job_id: str, writer: asyncio.StreamWriter, rid: str
    ) -> int:
        job = self.jobs.get(job_id)
        if job is None:
            return await self._send_error(
                writer,
                proto.ProtocolError(
                    "not_found", f"no job {job_id!r} on this router"
                ),
            )
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Cache-Control: no-store\r\n"
            f"{proto.REQUEST_ID_HEADER}: {rid}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        head_written = False  # our 200 head (written lazily: see below)
        header_sent = False  # the NDJSON "job" header line
        #: Canonical point JSON of every result line already forwarded on
        #: *this* client stream: a resumed backend stream replays from
        #: the start, and the replayed lines must not reach the client
        #: twice.  Local on purpose -- a separate client GET of the same
        #: job gets the full replay.
        forwarded: set[str] = set()
        # One transparent resume per stream (mirrors the sync path's
        # retry-once): attempt 0 streams from the job's home backend,
        # attempt 1 resubmits to the new owner of the job's key.
        for attempt in range(self.config.retries + 1):
            backend = self.supervisor.by_id(job.backend_id)
            if backend is None or backend.port is None:
                break
            resp: http1.StreamingResponse | None = None
            done_doc: dict | None = None
            try:
                resp = await http1.open_fetch(
                    backend.host,
                    backend.port,
                    "GET",
                    f"/v1/jobs/{job.backend_job_id}",
                    headers=[(proto.REQUEST_ID_HEADER, rid)],
                )
                if resp.status != 200:
                    payload = await resp.read_body()
                    if not head_written:
                        # Nothing sent yet: surface the backend's own
                        # envelope (and status) verbatim.
                        await http1.send_response(
                            writer, resp.status, "application/json", payload
                        )
                        return resp.status
                    break
                if not head_written:
                    # The head goes out only once a backend actually
                    # answered 200 -- a failing first hop can still get
                    # a real error status line.
                    await _client_write(writer, head)
                    head_written = True
                async for raw in resp.lines():
                    try:
                        line = json.loads(raw.decode("utf-8"))
                    except ValueError:
                        raise ConnectionError("torn NDJSON line")
                    kind = line.get("type")
                    if kind == "job":
                        if header_sent:
                            continue  # resumed stream: suppress duplicate
                        line["job_id"] = job.id
                        line["location"] = f"/v1/jobs/{job.id}"
                        await _client_write(writer, http1.json_payload(line))
                        header_sent = True
                    elif kind == "result":
                        fingerprint = _point_json(line.get("point"))
                        if fingerprint in forwarded:
                            continue
                        forwarded.add(fingerprint)
                        await _client_write(writer, http1.json_payload(line))
                    elif kind == "done":
                        line["job_id"] = job.id
                        done_doc = line
                if done_doc is not None:
                    await _client_write(writer, http1.json_payload(done_doc))
                    return 200
                # EOF without a done line: the backend died mid-stream.
                raise ConnectionError("stream ended without a done line")
            except _HOP_ERRORS:
                self.supervisor.eject(backend, "unreachable")
                if attempt >= self.config.retries:
                    break
                if not await self._rehome_job(job, rid):
                    break
            finally:
                if resp is not None:
                    await resp.aclose()
        if not head_written:
            # Never reached a backend at all: a typed, retryable error.
            return await self._send_error(
                writer,
                proto.ProtocolError(
                    "overloaded",
                    "the job's backend is gone and could not be replaced; "
                    "retry shortly",
                    retry_after_s=max(1.0, self.config.health_interval_s * 4),
                ),
            )
        # The stream and its resume both failed mid-flight: emit a
        # terminal failed line (valid NDJSON, never a torn connection) so
        # clients see a typed job failure instead of a transport error.
        await _client_write(
            writer,
            http1.json_payload(
                proto.done_line(
                    job.id,
                    "failed",
                    0.0,
                    "backend lost mid-stream and resume failed",
                )
            ),
        )
        return 200

    async def _rehome_job(self, job: RouterJob, rid: str) -> bool:
        """Resubmit a lost job to the current owner of its key.

        Completed points replay from the shared L2 cache (or recompute);
        the stream proxy skips every line already forwarded.
        """
        key_source = job.doc
        try:
            sim = proto.parse_simulate_request(key_source)
        except proto.ProtocolError:  # pragma: no cover - own wire form
            return False
        key = self.point_key(sim.rounds, sim.seed, sim.points[0])
        try:
            status, _headers, payload, backend = await self._forward(
                key,
                "POST",
                "/v1/simulate",
                http1.json_payload(job.doc),
                rid,
            )
        except proto.ProtocolError:
            return False
        if status != 202:
            return False
        try:
            backend_doc = json.loads(payload.decode("utf-8"))
            job.backend_job_id = backend_doc["job_id"]
        except (ValueError, KeyError, TypeError):
            return False
        job.backend_id = backend.id
        job.resumes += 1
        if _OBS.enabled:
            _OBS.registry.counter(
                _inst.ROUTER_STREAM_RESUMES,
                "NDJSON job streams resumed on a surviving backend",
            ).inc()
        return True


def _error_code(payload: bytes) -> str | None:
    try:
        doc = json.loads(payload.decode("utf-8"))
        return doc.get("error", {}).get("code")
    except (ValueError, AttributeError, UnicodeDecodeError):
        return None


# ----------------------------------------------------------------------
# Entry point


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve-router",
        description=(
            "Consistent-hash front router over N repro-serve backends: "
            "fleet-wide coalescing, a shared L2 result cache, health "
            "checks with drain-aware routing (see docs/SERVING.md)."
        ),
    )
    cfg = RouterConfig()
    parser.add_argument("--host", default=cfg.host)
    parser.add_argument(
        "--port",
        type=int,
        default=cfg.port,
        help=f"TCP port; 0 picks a free one (default {cfg.port})",
    )
    parser.add_argument(
        "--backends",
        type=int,
        default=cfg.backends,
        help=f"repro-serve subprocesses to spawn (default {cfg.backends})",
    )
    parser.add_argument(
        "--attach",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="comma-separated externally managed backends to route to "
        "instead of (or in addition to) spawning",
    )
    parser.add_argument(
        "--backend-concurrency",
        type=int,
        default=cfg.backend_concurrency,
        help="asyncio workers per spawned backend "
        f"(default {cfg.backend_concurrency})",
    )
    parser.add_argument(
        "--mc-workers",
        type=int,
        default=cfg.mc_workers,
        help="MC worker processes per spawned backend "
        f"(default {cfg.mc_workers})",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=cfg.queue_capacity,
        help="admission-queue capacity per spawned backend "
        f"(default {cfg.queue_capacity})",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="shared on-disk ResultCache directory (the L2 tier) handed "
        "to every spawned backend",
    )
    parser.add_argument(
        "--compute-floor",
        type=float,
        default=cfg.compute_floor_s,
        metavar="SECONDS",
        dest="compute_floor_s",
        help="minimum service time per computed point on every spawned "
        "backend (capacity experiments; default 0)",
    )
    parser.add_argument(
        "--vnodes",
        type=int,
        default=cfg.vnodes,
        help=f"virtual nodes per backend on the ring (default {cfg.vnodes})",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=cfg.retries,
        help="re-routes per forward after an ejection "
        f"(default {cfg.retries})",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=cfg.health_interval_s,
        metavar="SECONDS",
        dest="health_interval_s",
        help=f"seconds between /healthz probes (default {cfg.health_interval_s})",
    )
    parser.add_argument(
        "--no-restart",
        action="store_false",
        dest="restart",
        help="do not respawn spawned backends that die",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=cfg.drain_grace_s,
        metavar="SECONDS",
        dest="drain_grace_s",
        help="max seconds to wait for handlers/backends on SIGTERM "
        f"(default {cfg.drain_grace_s:.0f})",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        dest="trace_out",
        help="append router span records as JSONL to PATH",
    )
    parser.add_argument(
        "--no-obs",
        action="store_false",
        dest="obs_enabled",
        help="disable router metrics and tracing",
    )
    return parser


async def _amain(config: RouterConfig) -> int:
    app = RouterApp(config)
    await app.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, app.begin_drain)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    print(
        f"repro-serve-router listening on {config.host}:{app.port} "
        f"(backends={len(app.supervisor.backends)}, "
        f"vnodes={config.vnodes}, retries={config.retries})",
        flush=True,
    )
    await app.wait_closed()
    print("repro-serve-router drained; exiting", flush=True)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    attach: tuple[str, ...] = ()
    if args.attach:
        attach = tuple(
            part.strip() for part in args.attach.split(",") if part.strip()
        )
    config = RouterConfig(
        host=args.host,
        port=args.port,
        backends=args.backends,
        attach=attach,
        backend_concurrency=args.backend_concurrency,
        mc_workers=args.mc_workers,
        queue_capacity=args.queue_capacity,
        cache_dir=str(args.cache_dir) if args.cache_dir else None,
        compute_floor_s=args.compute_floor_s,
        vnodes=args.vnodes,
        retries=args.retries,
        health_interval_s=args.health_interval_s,
        restart=args.restart,
        drain_grace_s=args.drain_grace_s,
        trace_out=str(args.trace_out) if args.trace_out else None,
        obs_enabled=args.obs_enabled,
    )
    obs.reset()
    try:
        return asyncio.run(_amain(config))
    except KeyboardInterrupt:  # pragma: no cover - double ^C
        return 130


if __name__ == "__main__":
    sys.exit(main())
