"""The reader: one inventory = protocol × detector × channel × timing.

:class:`Reader.run_inventory` drives the slot loop the whole reproduction
rests on::

    protocol.start(tags)
    while not protocol.finished:
        responders <- protocol
        signal     <- channel.transmit([detector payload per responder])
        verdict    <- detector.classify(signal)
        time      += timing.slot_duration(detector, verdict)
        ... apply misdetection policy, mark identifications ...
        protocol.feedback(effective_type, responders)

Misdetection policies (DESIGN.md §5) govern what happens when the detector
calls a collided slot single:

* ``"paper"``   -- the error is *counted* (it is exactly what Figure 5's
  accuracy metric measures) but the identification process continues from
  ground truth: the collided tags re-contend.  This matches the paper's
  accounting, which evaluates accuracy separately from the time metrics.
* ``"crc_guard"`` -- the second-phase ID transmission carries a CRC, so the
  reader *notices* the garbled ID and treats the slot as collided; every
  single slot pays ``l_crc·τ`` extra.  Pair with
  ``TimingModel(guard_id_phase=True)``.
* ``"lost"``    -- the reader ACKs garbage; the collided tags hear the ACK,
  believe themselves identified and retire silently.  They are counted in
  ``lost_tags`` and the inventory "completes" without them -- the failure
  mode the accuracy experiment is implicitly about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bits.channel import Channel
from repro.core.detector import CollisionDetector, SlotType
from repro.core.ideal import IdealDetector
from repro.core.timing import TimingModel
from repro.obs import instruments as _inst
from repro.obs.profiling import profile
from repro.obs.state import STATE as _OBS
from repro.protocols.base import AntiCollisionProtocol
from repro.sim.metrics import InventoryStats
from repro.sim.trace import SlotRecord
from repro.tags.tag import Tag
from repro.verify.invariants import STATE as _INV
from repro.verify.invariants import check_inventory as _check_inventory
from repro.verify.invariants import check_slot as _check_slot

__all__ = ["Reader", "InventoryResult", "POLICIES"]

POLICIES = ("paper", "crc_guard", "lost")

#: Int verdict -> SlotType, for the frame-batched path's int arrays.
_SLOT_TYPES = (SlotType.IDLE, SlotType.SINGLE, SlotType.COLLIDED)


@dataclass
class InventoryResult:
    """Outcome of one inventory run."""

    trace: list[SlotRecord]
    stats: InventoryStats
    identified_ids: list[int]
    lost_ids: list[int]

    @property
    def complete(self) -> bool:
        """True iff no tag was lost to a misdetection."""
        return not self.lost_ids


class Reader:
    """An RFID reader executing slotted inventories.

    Parameters
    ----------
    detector:
        The collision-detection scheme.
    timing:
        Airtime model; its ``id_bits`` must match the tag population.
    channel:
        Boolean-sum channel (a fresh noiseless one by default).
    policy:
        Misdetection policy, one of :data:`POLICIES`.
    max_slots:
        Hard safety bound on inventory length (default ``10^7``).
    packed:
        uint64 superposition fast path: instead of composing per-tag
        :class:`BitVector` objects, each slot ORs packed ≤64-bit payloads
        (``np.bitwise_or.reduce``).  ``None`` (default) auto-selects: the
        fast path runs whenever the detector and channel support it *and*
        neither tracing nor invariant checking is enabled (both need the
        composed object signal).  ``True`` requires support (ValueError
        otherwise) but still yields to enabled instrumentation; ``False``
        always uses the object path.  Verdicts, RNG streams, and channel
        statistics are identical on both paths.
    frame_batched:
        Frame-granular batching on top of the packed path: when the
        protocol exports its whole frame schedule
        (:meth:`~repro.protocols.base.AntiCollisionProtocol.frame_partition`),
        the reader superposes, classifies and timestamps every slot of
        the frame with numpy instead of looping slots in Python.  Subject
        to the same gate as ``packed`` (so tracing/invariants, noisy
        channels and unpacked detectors all fall back), and per-slot
        fallback also covers tree protocols and any frame the protocol
        declines to export.  ``False`` keeps the per-slot loop even when
        batching is available (benchmarks and differential tests isolate
        the tiers this way).  Traces are ``SlotRecord``-identical across
        all three paths.
    """

    def __init__(
        self,
        detector: CollisionDetector,
        timing: TimingModel | None = None,
        channel: Channel | None = None,
        policy: str = "paper",
        max_slots: int = 10_000_000,
        packed: bool | None = None,
        frame_batched: bool = True,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        self.detector = detector
        self.timing = timing if timing is not None else TimingModel()
        self.channel = channel if channel is not None else Channel()
        self.policy = policy
        self.max_slots = max_slots
        self.packed = packed
        self.frame_batched = frame_batched
        #: Reusable uint64 payload arena for the frame-batched path,
        #: grown geometrically and never shrunk.
        self._arena: np.ndarray | None = None
        if packed and not self._packed_supported():
            raise ValueError(
                f"packed=True but {self.detector.name} / the channel "
                "cannot run the uint64 path (detector.packed_bits is None "
                "or the channel has noise/capture enabled)"
            )
        if policy == "crc_guard" and not self.timing.guard_id_phase:
            raise ValueError(
                "crc_guard policy requires TimingModel(guard_id_phase=True)"
            )

    def _packed_supported(self) -> bool:
        return (
            self.detector.packed_bits is not None
            and self.channel.supports_packed
        )

    def _use_packed(self) -> bool:
        """Resolve the fast-path gate for one inventory.

        Tracing and invariant checks observe the composed signal object,
        so enabling either forces the object path regardless of
        ``packed`` -- with identical slot verdicts, since both paths
        consume the same RNG draws and compute the same superposition.
        """
        if self.packed is False:
            return False
        if _OBS.enabled or _INV.enabled:
            return False
        return self._packed_supported()

    # ------------------------------------------------------------------

    def run_inventory(
        self,
        tags: Sequence[Tag],
        protocol: AntiCollisionProtocol,
        start_time: float = 0.0,
        select=None,
    ) -> InventoryResult:
        """Identify ``tags`` with ``protocol``; returns the full trace.

        ``select`` is an optional :class:`repro.core.select.SelectMask`
        (or anything with a ``filter(tags)`` method): non-matching tags
        are silenced and take no part in the inventory, like tags that
        failed a Gen2 SELECT.
        """
        if select is not None:
            tags = select.filter(tags)
        return self._run(tags, protocol, start_time, fresh=True)

    def run_inventory_continue(
        self,
        tags: Sequence[Tag],
        protocol: AntiCollisionProtocol,
        start_time: float = 0.0,
    ) -> InventoryResult:
        """Run a *readable* round: the protocol keeps the schedule state it
        learned in a previous round (ABS allocated-slot counters, AQS
        candidate queue).  Only meaningful for protocols whose ``start``
        accepts ``fresh=False``."""
        return self._run(tags, protocol, start_time, fresh=False)

    def _run(
        self,
        tags: Sequence[Tag],
        protocol: AntiCollisionProtocol,
        start_time: float,
        fresh: bool,
    ) -> InventoryResult:
        detector = self.detector
        detector.reset_instrumentation()
        trace: list[SlotRecord] = []
        identified: list[int] = []
        lost: list[int] = []
        time = start_time
        if fresh:
            protocol.start(tags)
        else:
            try:
                protocol.start(tags, fresh=False)
            except TypeError as exc:
                raise ValueError(
                    f"{protocol.name} does not support readable rounds "
                    "(its start() takes no 'fresh' parameter); use "
                    "run_inventory() instead"
                ) from exc
        obs_on = _OBS.enabled
        packed = self._use_packed()
        if obs_on:
            _OBS.tracer.start_span(
                "inventory",
                engine="reader",
                protocol=protocol.name,
                detector=detector.name,
                policy=self.policy,
                n_tags=len(tags),
            )
        # Frame-granular batching rides on the packed gate (which already
        # excludes tracing, invariants, noise and capture); the protocol
        # opts in per frame by exporting its schedule, so tree protocols
        # and mid-frame states fall back to the per-slot loop below.
        batch_frames = packed and self.frame_batched and protocol.framed
        current_frame = 0
        index = 0
        try:
            with profile("reader.run_inventory"):
                while not protocol.finished:
                    if batch_frames:
                        partition = protocol.frame_partition()
                        if (
                            partition is not None
                            and index + len(partition) <= self.max_slots
                        ):
                            time, index = self._run_frame(
                                index, time, protocol, partition,
                                identified, lost, trace,
                            )
                            continue
                    if index >= self.max_slots:
                        raise RuntimeError(
                            f"inventory exceeded max_slots={self.max_slots} "
                            f"({protocol.name} / {detector.name})"
                        )
                    responders = protocol.responders()
                    if obs_on:
                        frame = max(1, protocol.frames_started)
                        if frame != current_frame:
                            if current_frame:
                                _OBS.tracer.end_span()
                            _OBS.tracer.start_span("frame", frame=frame)
                            current_frame = frame
                    time, record = self._run_slot(
                        index, time, protocol, responders, identified, lost,
                        packed,
                    )
                    trace.append(record)
                    protocol.feedback(
                        record_effective(record, self.policy), responders
                    )
                    index += 1
        finally:
            if obs_on:
                if current_frame:
                    _OBS.tracer.end_span()
                _OBS.tracer.end_span(
                    slots=index, identified=len(identified), airtime=time
                )
        stats = InventoryStats.from_trace(
            trace,
            n_tags=len(tags),
            frames=protocol.frames_started,
            id_bits=self.timing.id_bits,
            tau=self.timing.tau,
        )
        if _INV.enabled:
            # The protocol ran to completion over a fixed population, so
            # every tag must be accounted for (identified or lost).
            _check_inventory(
                trace,
                [t.tag_id for t in tags],
                identified,
                lost,
                complete=True,
            )
        if obs_on:
            _inst.record_inventory("reader", stats.frames, stats.total_time)
        return InventoryResult(
            trace=trace, stats=stats, identified_ids=identified, lost_ids=lost
        )

    # ------------------------------------------------------------------

    def _run_frame(
        self,
        index: int,
        time: float,
        protocol: AntiCollisionProtocol,
        partition: list[Sequence[Tag]],
        identified: list[int],
        lost: list[int],
        trace: list[SlotRecord],
    ) -> tuple[float, int]:
        """One whole frame through the vectorized fast path.

        Equivalent to ``len(partition)`` iterations of the per-slot loop:
        same RNG draws (each tag's payload is drawn from its private
        stream, and only a tag's own slot consumes it, so drawing the
        frame upfront is stream-identical), same verdicts, counters and
        ``SlotRecord`` traces.  End times come from a prefix sum over the
        slot durations, which reproduces the sequential ``time +=
        duration`` left fold bit-exactly.
        """
        detector = self.detector
        frame_size = len(partition)
        frame_no = max(1, protocol.frames_started)
        counts = np.fromiter(
            (len(bucket) for bucket in partition), np.intp, count=frame_size
        )
        total = int(counts.sum())
        arena = self._arena
        if arena is None or len(arena) < total:
            grown = 1024 if arena is None else 2 * len(arena)
            arena = self._arena = np.empty(max(total, grown), np.uint64)
        payload = detector.contention_payload_packed
        arena[:total] = [
            payload(tag.tag_id, tag.rng)
            for bucket in partition
            for tag in bucket
        ]
        superposed = self.channel.transmit_packed_many(
            arena[:total], counts, detector.packed_bits
        )
        detected = detector.classify_packed_many(superposed, counts)
        counts_list = counts.tolist()
        detected_list = detected.tolist()
        timing = self.timing
        type_durations = (
            timing.slot_duration(detector, SlotType.IDLE),
            timing.slot_duration(detector, SlotType.SINGLE),
            timing.slot_duration(detector, SlotType.COLLIDED),
        )
        durations = [type_durations[d] for d in detected_list]
        acc = np.empty(frame_size + 1, dtype=np.float64)
        acc[0] = time
        acc[1:] = durations
        end_times = np.add.accumulate(acc)[1:].tolist()

        singles = detected == int(SlotType.SINGLE)
        true_single_slots = np.flatnonzero(singles & (counts == 1))
        missed_slots = np.flatnonzero(singles & (counts > 1))
        gained = np.zeros(frame_size, dtype=np.intp)
        identified_tags: list[int | None] = [None] * frame_size
        lost_counts = [0] * frame_size
        for slot in true_single_slots.tolist():
            tag = partition[slot][0]
            tag.mark_identified(end_times[slot])
            identified.append(tag.tag_id)
            identified_tags[slot] = tag.tag_id
        if len(true_single_slots):
            gained[true_single_slots] = 1
        if self.policy == "lost" and len(missed_slots):
            # The collided tags hear an ACK for the garbled ID and retire
            # believing they were read.
            for slot in missed_slots.tolist():
                bucket = partition[slot]
                for tag in bucket:
                    tag.identified = True
                    tag.lost = True
                    lost.append(tag.tag_id)
                lost_counts[slot] = len(bucket)
                gained[slot] = len(bucket)
        remaining = total - np.cumsum(gained)

        true_types = np.minimum(counts, 2)
        effective = true_types
        false_collisions = (counts == 1) & (
            detected == int(SlotType.COLLIDED)
        )
        if self.policy == "lost" and len(missed_slots):
            effective = true_types.copy()
            effective[missed_slots] = int(SlotType.SINGLE)
        if false_collisions.any():
            # Impossible for the noise-free packed detectors shipped
            # here, but a custom classifier may misread a true single;
            # the tag re-contends, exactly as record_effective feeds back.
            if effective is true_types:
                effective = true_types.copy()
            effective[false_collisions] = int(SlotType.COLLIDED)
        protocol.feedback_frame(effective.tolist(), counts_list, remaining)

        # Building records through the frozen-dataclass __init__ costs ten
        # object.__setattr__ calls each; filling __dict__ directly on a
        # bare instance produces field-identical records (equality, asdict
        # and repr all read the same attributes) at a fraction of the
        # cost, and this loop dominates the frame path's Python time.
        true_list = true_types.tolist()
        new_record = SlotRecord.__new__
        append = trace.append
        slot_index = index
        for n_resp, true, det, duration, end, ident, lost_n in zip(
            counts_list, true_list, detected_list, durations,
            end_times, identified_tags, lost_counts,
        ):
            record = new_record(SlotRecord)
            record.__dict__.update(
                index=slot_index,
                frame=frame_no,
                n_responders=n_resp,
                true_type=_SLOT_TYPES[true],
                detected_type=_SLOT_TYPES[det],
                duration=duration,
                end_time=end,
                identified_tag=ident,
                lost_tags=lost_n,
                captured=False,
            )
            append(record)
            slot_index += 1
        return end_times[-1], index + frame_size

    def _run_slot(
        self,
        index: int,
        time: float,
        protocol: AntiCollisionProtocol,
        responders: list[Tag],
        identified: list[int],
        lost: list[int],
        packed: bool = False,
    ) -> tuple[float, SlotRecord]:
        detector = self.detector
        if packed:
            # uint64 fast path: packed payloads, machine-word OR, integer
            # classification.  Same RNG draws, same verdicts, same channel
            # statistics as the object path below.
            values = [
                detector.contention_payload_packed(t.tag_id, t.rng)
                for t in responders
            ]
            signal = None
            value = self.channel.transmit_packed(
                values, detector.packed_bits
            )
            outcome = detector.classify_packed(value)
        else:
            payloads = [
                detector.contention_payload(t.tag_id, t.rng)
                for t in responders
            ]
            signal = self.channel.transmit(payloads)
            if isinstance(detector, IdealDetector):
                sole = responders[0].tag_id if len(responders) == 1 else None
                detector.observe_transmitters(len(responders), sole)
            outcome = detector.classify(signal)
        true_type = _true_type(len(responders))
        detected = outcome.slot_type
        duration = self.timing.slot_duration(detector, detected)
        time += duration
        identified_tag: int | None = None
        lost_count = 0
        captured_idx = self.channel.last_capture_index
        captured = (
            captured_idx is not None
            and true_type is SlotType.COLLIDED
            and detected is SlotType.SINGLE
        )
        if captured:
            # The channel resolved the collision to one tag's clean signal;
            # the reader legitimately identifies that tag and the rest
            # re-contend (they never heard their own ACK).
            tag = responders[captured_idx]
            tag.mark_identified(time)
            identified.append(tag.tag_id)
            identified_tag = tag.tag_id
        elif detected is SlotType.SINGLE:
            if true_type is SlotType.SINGLE:
                tag = responders[0]
                tag.mark_identified(time)
                identified.append(tag.tag_id)
                identified_tag = tag.tag_id
            elif self.policy == "lost":
                # The collided tags hear an ACK for the garbled ID and
                # retire believing they were read.
                for tag in responders:
                    tag.identified = True
                    tag.lost = True
                    lost.append(tag.tag_id)
                lost_count = len(responders)
        record = SlotRecord(
            index=index,
            frame=max(1, protocol.frames_started),
            n_responders=len(responders),
            true_type=true_type,
            detected_type=detected,
            duration=duration,
            end_time=time,
            identified_tag=identified_tag,
            lost_tags=lost_count,
            captured=captured,
        )
        if _INV.enabled and not packed:
            # (The packed gate re-resolves per inventory, so a flag flip
            # mid-run takes effect from the next inventory; the checker
            # needs the composed object signal.)
            _check_slot(record, detector, self.timing, signal)
        if _OBS.enabled:
            _inst.record_slot(record)
        return time, record


def _true_type(n_responders: int) -> SlotType:
    if n_responders == 0:
        return SlotType.IDLE
    if n_responders == 1:
        return SlotType.SINGLE
    return SlotType.COLLIDED


def record_effective(record: SlotRecord, policy: str) -> SlotType:
    """The slot type the *tags* experience, per the misdetection policy.

    Under ``"paper"`` and ``"crc_guard"`` the process follows ground truth
    (the guard physically restores truth; the paper's accounting assumes
    it); under ``"lost"`` a missed collision reads SINGLE to the tags.
    """
    if record.captured:
        # The captured tag retired (the reader marked it identified); the
        # remaining responders experienced an unresolved collision.
        return SlotType.COLLIDED
    # A noise-induced false collision (true single read as collided) makes
    # the tag re-contend under every policy: the reader never ACKed it.
    if (
        record.true_type is SlotType.SINGLE
        and record.detected_type is SlotType.COLLIDED
    ):
        return SlotType.COLLIDED
    if policy == "lost" and (
        record.true_type is SlotType.COLLIDED
        and record.detected_type is SlotType.SINGLE
    ):
        return SlotType.SINGLE
    return record.true_type
