"""Vectorized inventory kernels for large populations.

The exact object-level reader (:mod:`repro.sim.reader`) composes real bit
signals per slot -- ideal for correctness, too slow for the paper's case IV
(50 000 tags, ~250 000 slots, 100 Monte-Carlo rounds).  Following the
optimization workflow of the HPC guides (make it work, validate, then
vectorize the measured bottleneck behind the same interface), this module
re-implements the protocol × detector processes the evaluation sweeps as
numpy kernels:

* :func:`fsa_fast` -- fixed-frame FSA: a frame is one ``bincount`` over the
  backlog's uniform slot choices; slot types, misdetection draws, durations
  and identification times all come from array expressions.
* :func:`bt_fast`  -- binary-tree splitting as a *level-synchronous*
  frontier walk: every tree level draws one ``random`` vector (misdetection
  uniforms) and one raw 64-bit block whose popcounts are the
  Binomial(m, 1/2) splits, for all collided groups of the level; then the
  depth-first slot order the exact reader executes is reconstructed from
  subtree sizes.  O(2.885·n) slots with O(depth) numpy calls and no
  per-slot Python work.
* :func:`dfsa_fast` -- dynamic FSA with a pluggable backlog estimator.

All kernels simulate the *identical* stochastic process as the exact
reader (slot choices / split draws are the only randomness; detector misses
are drawn from their exact probabilities) and return the same
:class:`~repro.sim.metrics.InventoryStats`.  ``tests/sim/test_fast.py``
cross-validates them against the exact reader distributionally, and
:mod:`repro.sim.batch` reuses the same per-frame / per-level draw order to
run whole Monte-Carlo batches bit-identically (see ``docs/PERFORMANCE.md``).

Kernels implement the ``"paper"`` misdetection policy only (misses are
counted and charged single-slot airtime; the process follows ground
truth).
"""

from __future__ import annotations

import numpy as np

from repro.core.crc_cd import CRCCDDetector
from repro.core.detector import CollisionDetector
from repro.core.ideal import IdealDetector
from repro.core.qcd import QCDDetector
from repro.core.timing import TimingModel
from repro.obs.instruments import record_kernel_stats
from repro.obs.profiling import profiled
from repro.obs.state import STATE as _OBS
from repro.sim.metrics import DelayStats, InventoryStats, SlotCounts

__all__ = ["fsa_fast", "bt_fast", "dfsa_fast"]


def _durations(detector: CollisionDetector, timing: TimingModel):
    from repro.core.detector import SlotType

    return (
        timing.slot_duration(detector, SlotType.IDLE),
        timing.slot_duration(detector, SlotType.SINGLE),
        timing.slot_duration(detector, SlotType.COLLIDED),
    )


def _duration_lut(detector: CollisionDetector, timing: TimingModel) -> np.ndarray:
    """Slot durations indexed by outcome code.

    Codes 0/1/2 are the :class:`~repro.core.detector.SlotType` values
    (idle / single / collided); code 3 is a *missed* collision, which runs
    the ID phase and is charged single-slot airtime.  Building the LUT once
    per inventory replaces the nested ``np.where`` the per-frame loop used
    to rebuild from the same three constants.
    """
    dur_idle, dur_single, dur_coll = _durations(detector, timing)
    return np.array(
        [dur_idle, dur_single, dur_coll, dur_single], dtype=np.float64
    )


def _miss_prob_fn(detector: CollisionDetector):
    """Vectorized P(collision of size m read as single), hoisted.

    Resolves the detector's type once per inventory and returns a closure
    over plain floats, so the per-frame hot loop runs no ``isinstance``
    chain and no attribute lookups.
    """
    if isinstance(detector, QCDDetector):
        base = float((1 << detector.strength) - 1)
        return lambda m: base ** (-(m.astype(np.float64) - 1.0))
    if isinstance(detector, CRCCDDetector):
        const = 2.0 ** (-detector.crc_bits)
        return lambda m: np.full(m.shape, const)
    if isinstance(detector, IdealDetector):
        return lambda m: np.zeros(m.shape)
    return lambda m: np.array([detector.miss_probability(int(x)) for x in m])


def _miss_lut(detector: CollisionDetector, n_max: int) -> np.ndarray | None:
    """Miss probabilities tabulated by collision size, or None.

    For the closed-form detectors the table is built with the *same*
    vectorized expression :func:`_miss_prob_fn` evaluates, so
    ``lut[m] == miss_fn(m)`` bit for bit and a table gather can replace
    the per-frame ``power`` evaluation (the batched engines' hot path).
    Unknown detector classes return None -- tabulating them would call a
    Python ``miss_probability`` once per possible size.
    """
    if isinstance(detector, (QCDDetector, CRCCDDetector, IdealDetector)):
        return _miss_prob_fn(detector)(np.arange(n_max + 1, dtype=np.int64))
    return None


def _miss_eval(detector: CollisionDetector, n_max: int):
    """Miss-probability evaluator for collision sizes in ``[0, n_max]``.

    A table gather when the detector tabulates (:func:`_miss_lut`),
    otherwise the vectorized closure -- bit-identical either way.
    """
    lut = _miss_lut(detector, n_max)
    if lut is not None:
        return lambda m: lut[m]
    return _miss_prob_fn(detector)


def _miss_prob_scalar(detector: CollisionDetector):
    """Scalar miss-probability closure (wireless estimators' hot path)."""
    if isinstance(detector, QCDDetector):
        base = float((1 << detector.strength) - 1)
        return lambda m: base ** (-(m - 1))
    if isinstance(detector, CRCCDDetector):
        const = 2.0 ** (-detector.crc_bits)
        return lambda m: const
    if isinstance(detector, IdealDetector):
        return lambda m: 0.0
    return detector.miss_probability


@profiled("fast.fsa_fast")
def fsa_fast(
    n_tags: int,
    frame_size: int,
    detector: CollisionDetector,
    timing: TimingModel,
    rng: np.random.Generator,
    collect_delays: bool = True,
    confirm_frame: bool = True,
) -> InventoryStats:
    """Fixed-frame FSA inventory, vectorized.

    Matches :class:`repro.protocols.fsa.FramedSlottedAloha` under the exact
    reader with the default ``"confirm"`` termination: constant frame size,
    collided tags re-contend next frame, every frame runs to completion,
    and the inventory ends with one all-idle confirmation frame (the reader
    cannot observe an empty backlog -- the paper's Table VII accounting).
    Pass ``confirm_frame=False`` for the known-n ``"frame"`` termination.
    """
    if n_tags < 0 or frame_size < 1:
        raise ValueError("need n_tags >= 0 and frame_size >= 1")
    lut = _duration_lut(detector, timing)
    miss_fn = _miss_eval(detector, n_tags)
    remaining = n_tags
    frames = 0
    t = 0.0
    n0 = n1 = nc = 0
    missed_total = 0
    delays: list[np.ndarray] = []
    while remaining > 0:
        frames += 1
        occ = np.bincount(
            rng.integers(0, frame_size, remaining), minlength=frame_size
        )
        coll = occ >= 2
        single = occ == 1
        idle = occ == 0
        m_vals = occ[coll]
        miss = np.zeros(m_vals.shape, dtype=bool)
        if m_vals.size:
            miss = rng.random(m_vals.size) < miss_fn(m_vals)
        dur = lut[np.minimum(occ, 2)]
        if miss.any():
            # A missed collision runs the ID phase: single-slot airtime.
            coll_idx = np.nonzero(coll)[0]
            dur[coll_idx[miss]] = lut[1]
        end_times = t + np.cumsum(dur)
        if collect_delays and single.any():
            delays.append(end_times[single])
        t = float(end_times[-1]) if dur.size else t
        n0 += int(idle.sum())
        n1 += int(single.sum())
        nc += int(coll.sum())
        missed_total += int(miss.sum())
        remaining = int(m_vals.sum())
    if confirm_frame:
        # The knowledge-free reader issues one final frame and reads it
        # all-idle before concluding the inventory is complete.
        frames += 1
        n0 += frame_size
        t += frame_size * float(lut[0])
    true_counts = SlotCounts(n0, n1, nc)
    detected_counts = SlotCounts(n0, n1 + missed_total, nc - missed_total)
    all_delays = (
        np.concatenate(delays) if delays else np.empty(0, dtype=np.float64)
    )
    stats = InventoryStats(
        n_tags=n_tags,
        frames=frames,
        true_counts=true_counts,
        detected_counts=detected_counts,
        total_time=t,
        accuracy=1.0 if nc == 0 else (nc - missed_total) / nc,
        delay=DelayStats.from_delays(all_delays.tolist()),
        utilization=(n1 * timing.id_bits * timing.tau / t) if t else 0.0,
        missed_collisions=missed_total,
        false_collisions=0,
        lost_tags=0,
    )
    if _OBS.enabled:
        record_kernel_stats("fast_fsa", stats)
    return stats


_U64_MAX = np.iinfo(np.uint64).max
_U64_ONES = ~np.uint64(0)


def _split_lefts(m: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Binomial(m, 1/2) split sizes for one tree level, via popcount.

    Each tag flips a fair coin, so the left-subset size of a group of m
    tags is the popcount of m random bits.  Groups draw whole 64-bit words
    (``ceil(m/64)`` each, one ``integers`` call per level) and the unused
    high bits of each group's last word are masked off -- an order of
    magnitude cheaper than ``Generator.binomial``, whose per-element
    rejection loop dominated the walk at case-IV populations.
    """
    if np.max(m) <= 64:
        # Common case away from the root: one word per group.
        raw = rng.integers(0, _U64_MAX, m.size, dtype=np.uint64, endpoint=True)
        masks = _U64_ONES >> (64 - m).astype(np.uint64)
        return np.bitwise_count(raw & masks).astype(np.int64)
    words_per = (m + 63) >> 6
    ends = np.cumsum(words_per)
    raw = rng.integers(
        0, _U64_MAX, int(ends[-1]), dtype=np.uint64, endpoint=True
    )
    popc = np.bitwise_count(raw).astype(np.int64)
    # Mask the partial last word of every group before counting its bits.
    tail_bits = ((m - 1) & 63) + 1
    last = ends - 1
    tail = raw[last] & (_U64_ONES >> (64 - tail_bits).astype(np.uint64))
    popc[last] = np.bitwise_count(tail)
    starts = ends - words_per
    return np.add.reduceat(popc, starts)


def _bt_walk(n_tags: int, rng: np.random.Generator) -> list[tuple]:
    """Level-synchronous draws for one binary-tree inventory.

    Returns one ``(sizes, coll, u, lefts, m)`` tuple per tree level, in
    level order; within a level nodes are ordered by their parents' order,
    left child first, and ``m = sizes[coll]`` are the collided group
    sizes.  Each level makes exactly two RNG calls -- ``random(k)``
    (misdetection uniforms) then one raw 64-bit ``integers`` block whose
    popcounts are the Binomial(m, 1/2) splits (:func:`_split_lefts`) --
    which is the draw order the batched kernel replays round by round.
    """
    levels: list[tuple] = []
    frontier = (
        np.array([n_tags], dtype=np.int64)
        if n_tags
        else np.empty(0, dtype=np.int64)
    )
    while frontier.size:
        coll = frontier >= 2
        m = frontier[coll]
        if m.size == 0:
            levels.append((frontier, coll, np.empty(0), None, m))
            break
        u = rng.random(m.size)
        lefts = _split_lefts(m, rng)
        levels.append((frontier, coll, u, lefts, m))
        children = np.empty(2 * m.size, dtype=np.int64)
        children[0::2] = lefts
        children[1::2] = m - lefts
        frontier = children
    return levels


def _bt_finalize(
    levels: list[tuple],
    miss_fn,
    lut: np.ndarray,
    collect_delays: bool,
) -> tuple[int, int, int, int, float, np.ndarray]:
    """Classify, time and order the slots of one level-synchronous walk.

    The exact reader visits the tree depth-first (drew-0 subset first);
    the walk produced nodes level by level.  Pre-order slot positions are
    reconstructed in two passes: subtree slot counts bottom-up, then each
    collided node at position p places its left child at p+1 and its right
    child at p+1+|left subtree|.  Durations scattered into that order and
    cumulative-summed reproduce the reader's running clock bit for bit.

    Returns ``(n0, n1, nc, missed, total_time, delays)`` with ``delays``
    in slot order (ascending identification time).
    """
    if not levels:
        return 0, 0, 0, 0, 0.0, np.empty(0, dtype=np.float64)
    n_levels = len(levels)
    sizes_flat = np.concatenate([lv[0] for lv in levels])
    total = sizes_flat.size
    u_flat = np.concatenate([lv[2] for lv in levels])
    mvals = np.concatenate([lv[4] for lv in levels])
    miss = u_flat < miss_fn(mvals)
    nc = mvals.size
    n0 = int((sizes_flat == 0).sum())
    n1 = total - n0 - nc
    n_miss = int(miss.sum())
    if not collect_delays:
        # Slot order affects neither the counts nor the (integer-valued)
        # total airtime, so skip the position reconstruction entirely.
        t = n0 * lut[0] + (n1 + n_miss) * lut[1] + (nc - n_miss) * lut[2]
        return n0, n1, nc, n_miss, float(t), np.empty(0, dtype=np.float64)
    # Subtree slot counts, bottom-up (leaves occupy one slot).
    subtree: list[np.ndarray] = [None] * n_levels  # type: ignore[list-item]
    for d in range(n_levels - 1, -1, -1):
        sizes, coll = levels[d][0], levels[d][1]
        s = np.ones(sizes.size, dtype=np.int64)
        if d + 1 < n_levels:
            s[coll] = 1 + subtree[d + 1].reshape(-1, 2).sum(axis=1)
        subtree[d] = s
    # Pre-order positions, top-down.
    pos: list[np.ndarray] = [None] * n_levels  # type: ignore[list-item]
    pos[0] = np.zeros(1, dtype=np.int64)
    for d in range(n_levels - 1):
        coll = levels[d][1]
        base = pos[d][coll] + 1
        child_s = subtree[d + 1]
        nxt = np.empty(2 * base.size, dtype=np.int64)
        nxt[0::2] = base
        nxt[1::2] = base + child_s[0::2]
        pos[d + 1] = nxt
    pos_flat = np.concatenate(pos)
    codes = np.minimum(sizes_flat, 2)
    if n_miss:
        # 2 -> 3 marks a missed collision (single-slot airtime).
        codes[np.flatnonzero(sizes_flat >= 2)[miss]] = 3
    # Scatter the codes into slot order: the durations become one gather
    # and the single-slot positions come out pre-sorted via flatnonzero
    # instead of an O(n log n) sort.
    code_seq = np.empty(total, dtype=np.int64)
    code_seq[pos_flat] = codes
    dur_seq = lut[code_seq]
    end = np.cumsum(dur_seq)
    delays = end[np.flatnonzero(code_seq == 1)]
    return n0, n1, nc, n_miss, float(end[-1]), delays


@profiled("fast.bt_fast")
def bt_fast(
    n_tags: int,
    detector: CollisionDetector,
    timing: TimingModel,
    rng: np.random.Generator,
    collect_delays: bool = True,
) -> InventoryStats:
    """Binary-tree inventory, level-synchronous group-size formulation.

    Matches :class:`repro.protocols.bt.BinaryTree` under the exact reader:
    the counter automaton is exactly a depth-first traversal where each
    collided group of size m splits into (Binomial(m, 1/2), rest), the
    drew-0 subset going first.  The walk draws level-synchronously (two
    vectorized RNG calls per tree level -- see :func:`_bt_walk`) and
    reconstructs the depth-first slot order afterwards, so the per-slot
    scalar loop of earlier revisions is gone; the split distribution and
    slot accounting are unchanged, but the RNG *consumption order* differs
    from the old depth-first draws (golden files were regenerated).
    """
    if n_tags < 0:
        raise ValueError("n_tags must be >= 0")
    lut = _duration_lut(detector, timing)
    miss_fn = _miss_eval(detector, n_tags)
    levels = _bt_walk(n_tags, rng)
    n0, n1, nc, missed_total, t, delays = _bt_finalize(
        levels, miss_fn, lut, collect_delays
    )
    true_counts = SlotCounts(n0, n1, nc)
    detected_counts = SlotCounts(n0, n1 + missed_total, nc - missed_total)
    stats = InventoryStats(
        n_tags=n_tags,
        frames=1,  # tree protocols run one continuous logical frame
        true_counts=true_counts,
        detected_counts=detected_counts,
        total_time=t,
        accuracy=1.0 if nc == 0 else (nc - missed_total) / nc,
        utilization=(n1 * timing.id_bits * timing.tau / t) if t else 0.0,
        delay=DelayStats.from_delays(delays.tolist()),
        missed_collisions=missed_total,
        false_collisions=0,
        lost_tags=0,
    )
    if _OBS.enabled:
        record_kernel_stats("fast_bt", stats)
    return stats


@profiled("fast.dfsa_fast")
def dfsa_fast(
    n_tags: int,
    initial_frame_size: int,
    estimator,
    detector: CollisionDetector,
    timing: TimingModel,
    rng: np.random.Generator,
    min_frame_size: int = 1,
    max_frame_size: int = 1 << 15,
    collect_delays: bool = True,
    max_frames: int = 100_000,
) -> InventoryStats:
    """Dynamic FSA inventory, vectorized.

    Matches :class:`repro.protocols.dfsa.DynamicFSA` under the exact
    reader: after each (complete) frame, the pluggable estimator sizes the
    next frame from the observed (N0, N1, Nc); the inventory ends with the
    frame in which the backlog empties.  The primary consumer is the
    estimator-quality ablation at populations the exact reader cannot
    reach (``benchmarks/test_ablation_estimators.py``).
    """
    from repro.protocols.estimators import FrameObservation

    if n_tags < 0 or initial_frame_size < 1:
        raise ValueError("need n_tags >= 0 and initial_frame_size >= 1")
    if not 1 <= min_frame_size <= max_frame_size:
        raise ValueError("need 1 <= min_frame_size <= max_frame_size")
    lut = _duration_lut(detector, timing)
    miss_fn = _miss_eval(detector, n_tags)
    remaining = n_tags
    frame_size = initial_frame_size
    frames = 0
    t = 0.0
    n0 = n1 = nc = 0
    missed_total = 0
    delays: list[np.ndarray] = []
    while remaining > 0:
        if frames >= max_frames:
            raise RuntimeError(f"dfsa_fast exceeded max_frames={max_frames}")
        frames += 1
        occ = np.bincount(
            rng.integers(0, frame_size, remaining), minlength=frame_size
        )
        coll = occ >= 2
        single = occ == 1
        idle = occ == 0
        m_vals = occ[coll]
        miss = np.zeros(m_vals.shape, dtype=bool)
        if m_vals.size:
            miss = rng.random(m_vals.size) < miss_fn(m_vals)
        dur = lut[np.minimum(occ, 2)]
        if miss.any():
            coll_idx = np.nonzero(coll)[0]
            dur[coll_idx[miss]] = lut[1]
        end_times = t + np.cumsum(dur)
        if collect_delays and single.any():
            delays.append(end_times[single])
        t = float(end_times[-1]) if dur.size else t
        f0, f1, fc = int(idle.sum()), int(single.sum()), int(coll.sum())
        n0 += f0
        n1 += f1
        nc += fc
        missed_total += int(miss.sum())
        remaining = int(m_vals.sum())
        if remaining > 0:
            obs = FrameObservation(
                frame_size=frame_size, idle=f0, single=f1, collided=fc
            )
            backlog = estimator.backlog(obs)
            frame_size = max(
                min_frame_size, min(max_frame_size, max(1, backlog))
            )
    true_counts = SlotCounts(n0, n1, nc)
    detected_counts = SlotCounts(n0, n1 + missed_total, nc - missed_total)
    all_delays = (
        np.concatenate(delays) if delays else np.empty(0, dtype=np.float64)
    )
    stats = InventoryStats(
        n_tags=n_tags,
        frames=frames,
        true_counts=true_counts,
        detected_counts=detected_counts,
        total_time=t,
        accuracy=1.0 if nc == 0 else (nc - missed_total) / nc,
        delay=DelayStats.from_delays(all_delays.tolist()),
        utilization=(n1 * timing.id_bits * timing.tau / t) if t else 0.0,
        missed_collisions=missed_total,
        false_collisions=0,
        lost_tags=0,
    )
    if _OBS.enabled:
        record_kernel_stats("fast_dfsa", stats)
    return stats
