"""Event-driven inventory with tag mobility.

The plain :class:`~repro.sim.reader.Reader` identifies a static population.
:class:`MobileInventoryEngine` adds the scenario Section VI-D motivates the
delay metric with: tags *arrive* in the interrogation range while the
inventory is running and *depart* after a dwell time -- identified or not.
Time is the airtime clock of the timing model, so a faster detector (QCD)
directly translates into more tags identified before they escape.

The engine interleaves a :class:`~repro.tags.mobility.MobilitySchedule`
with the reader's slot loop: before each slot, all due arrivals are
admitted into the protocol and all due departures are withdrawn; a tag that
departs unidentified is recorded as *escaped*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import instruments as _inst
from repro.obs.state import STATE as _OBS
from repro.sim.metrics import DelayStats, InventoryStats
from repro.sim.reader import Reader, record_effective
from repro.sim.trace import SlotRecord
from repro.tags.mobility import MobilitySchedule
from repro.tags.tag import Tag
from repro.verify.invariants import STATE as _INV
from repro.verify.invariants import check_inventory as _check_inventory

__all__ = ["MobileInventoryEngine", "MobileInventoryResult"]


@dataclass
class MobileInventoryResult:
    """Outcome of a mobile-population inventory."""

    trace: list[SlotRecord]
    stats: InventoryStats
    identified_ids: list[int]
    escaped_ids: list[int]
    #: Delay from each identified tag's *arrival* to its identification
    #: (the per-tag delay that matters for mobile tags).
    sojourn_delays: DelayStats
    end_time: float

    @property
    def escape_rate(self) -> float:
        total = len(self.identified_ids) + len(self.escaped_ids)
        return len(self.escaped_ids) / total if total else 0.0


@dataclass
class MobileInventoryEngine:
    """Runs a protocol over a mobility schedule.

    Parameters
    ----------
    reader:
        Configured reader (detector + timing + channel + policy).
    max_slots:
        Safety bound on total slots across the whole run.
    """

    reader: Reader
    max_slots: int = 10_000_000
    _arrivals: dict[int, float] = field(default_factory=dict, repr=False)

    def run(
        self,
        protocol,
        schedule: MobilitySchedule,
        initial_tags: list[Tag] | None = None,
    ) -> MobileInventoryResult:
        """Run until the schedule is exhausted and the backlog identified."""
        tags0 = list(initial_tags or [])
        trace: list[SlotRecord] = []
        identified: list[int] = []
        lost: list[int] = []
        escaped: list[int] = []
        sojourns: list[float] = []
        time = 0.0
        self._arrivals = {id(t): 0.0 for t in tags0}
        protocol.start(tags0)
        index = 0
        obs_on = _OBS.enabled
        inv_on = _INV.enabled
        seen_ids = [t.tag_id for t in tags0] if inv_on else []
        if obs_on:
            _OBS.tracer.start_span(
                "mobile_inventory",
                engine="mobile",
                protocol=protocol.name,
                initial_tags=len(tags0),
            )
        while True:
            # Deliver all mobility events due at the current airtime.
            for ev in schedule.events_until(time):
                if ev.kind == "arrive":
                    self._arrivals[id(ev.tag)] = max(ev.time, time)
                    if inv_on:
                        seen_ids.append(ev.tag.tag_id)
                    protocol.admit(ev.tag)
                    if obs_on:
                        _OBS.registry.counter(
                            _inst.MOBILITY_EVENTS,
                            "Mobility events applied",
                            labelnames=("kind",),
                        ).labels(kind="arrive").inc()
                else:
                    if not ev.tag.identified:
                        escaped.append(ev.tag.tag_id)
                        if obs_on:
                            _OBS.registry.counter(
                                _inst.ESCAPED,
                                "Tags that departed unidentified",
                            ).inc()
                    protocol.withdraw(ev.tag)
                    if obs_on:
                        _OBS.registry.counter(
                            _inst.MOBILITY_EVENTS,
                            "Mobility events applied",
                            labelnames=("kind",),
                        ).labels(kind="depart").inc()
            if protocol.finished:
                nxt = schedule.peek_next_time()
                if nxt is None:
                    break
                # Idle the reader until the next arrival; protocols restart
                # their schedule when contenders appear.
                time = max(time, nxt)
                continue
            if index >= self.max_slots:
                if obs_on:
                    _OBS.tracer.end_span(aborted=True)
                raise RuntimeError(f"exceeded max_slots={self.max_slots}")
            responders = protocol.responders()
            time, record = self.reader._run_slot(
                index, time, protocol, responders, identified, lost
            )
            if record.identified_tag is not None:
                tag = next(
                    t for t in responders if t.tag_id == record.identified_tag
                )
                arrived = self._arrivals.get(id(tag), 0.0)
                sojourns.append(record.end_time - arrived)
            trace.append(record)
            protocol.feedback(
                record_effective(record, self.reader.policy), responders
            )
            index += 1
        stats = InventoryStats.from_trace(
            trace,
            n_tags=len(self._arrivals),
            frames=protocol.frames_started,
            id_bits=self.reader.timing.id_bits,
            tau=self.reader.timing.tau,
        )
        if inv_on:
            # Tags may depart unidentified, so the run is never "complete"
            # in the static-inventory sense; subset/partition checks only.
            _check_inventory(trace, seen_ids, identified, lost)
        if obs_on:
            _OBS.tracer.end_span(
                slots=index,
                identified=len(identified),
                escaped=len(escaped),
                airtime=time,
            )
            _inst.record_inventory("mobile", stats.frames, stats.total_time)
        return MobileInventoryResult(
            trace=trace,
            stats=stats,
            identified_ids=identified,
            escaped_ids=escaped,
            sojourn_delays=DelayStats.from_delays(sojourns),
            end_time=time,
        )
