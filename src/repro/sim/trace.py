"""Per-slot trace records.

Every slot of an inventory produces one :class:`SlotRecord` holding both
the ground truth (how many tags actually transmitted) and the detector's
verdict, plus the airtime accounting.  All metrics in
:mod:`repro.sim.metrics` are pure functions of the trace, so any run can be
re-analyzed without re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detector import SlotType

__all__ = ["SlotRecord"]


@dataclass(frozen=True)
class SlotRecord:
    """One slot of an inventory.

    Attributes
    ----------
    index:
        0-based slot index within the inventory.
    frame:
        1-based frame number (FSA family) or 1 for tree protocols' single
        logical frame.
    n_responders:
        Ground-truth number of transmitting tags.
    true_type / detected_type:
        Ground truth vs. the detector's verdict.
    duration:
        Airtime charged to this slot (detected-type based; see
        :class:`repro.core.timing.TimingModel`).
    end_time:
        Simulation time when the slot (including any ID phase) completed.
    identified_tag:
        ID of the tag identified in this slot, or ``None``.
    lost_tags:
        Number of tags that retired unidentified in this slot (``"lost"``
        misdetection policy only).
    captured:
        True when the channel's capture effect resolved a physically
        collided slot into one tag's clean signal; the single verdict is
        then *legitimate*, not a detector miss.
    """

    index: int
    frame: int
    n_responders: int
    true_type: SlotType
    detected_type: SlotType
    duration: float
    end_time: float
    identified_tag: int | None = None
    lost_tags: int = 0
    captured: bool = False

    @property
    def misdetected(self) -> bool:
        return self.true_type != self.detected_type and not self.captured
