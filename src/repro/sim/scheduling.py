"""Reader activation scheduling (paper Section II, multi-reader collisions).

Two readers whose fields overlap cause *reader-reader* collisions (tags in
the overlap cannot separate the superposed queries), and a reader inside
another's field suffers *reader-tag* collisions (the tag's weak backscatter
is drowned by the other reader's carrier).  The paper handles both by
assumption: "we assume that there are no collisions of other two types".

We implement the standard constructive fix it cites -- schedule interfering
readers into different time slices.  The interference relation is a graph;
a proper vertex coloring yields activation rounds in which no two active
readers interfere.  We use networkx's greedy coloring with the
largest-first strategy (a (Δ+1)-coloring), which is near-optimal for the
disk graphs Table V produces.
"""

from __future__ import annotations

import networkx as nx

from repro.sim.deployment import Deployment

__all__ = ["interference_graph", "color_schedule"]


def interference_graph(
    deployment: Deployment, guard_factor: float = 1.0
) -> nx.Graph:
    """Build the reader interference graph.

    Readers ``a`` and ``b`` interfere when their disks, inflated by
    ``guard_factor``, intersect: ``d(a, b) <= guard_factor·(r_a + r_b)``.
    A guard factor above 1 models carrier interference reaching beyond the
    identification range (reader-tag collisions).
    """
    if guard_factor < 1.0:
        raise ValueError("guard_factor must be >= 1")
    graph = nx.Graph()
    graph.add_nodes_from(r.reader_id for r in deployment.readers)
    for i, a in enumerate(deployment.readers):
        for b in deployment.readers[i + 1 :]:
            if a.distance_to(b) <= guard_factor * (a.range_m + b.range_m):
                graph.add_edge(a.reader_id, b.reader_id)
    return graph


def color_schedule(
    deployment: Deployment, guard_factor: float = 1.0
) -> list[list[int]]:
    """Partition readers into activation rounds.

    Returns a list of rounds; each round is a list of reader ids that may
    interrogate simultaneously without reader-reader or reader-tag
    collisions.  Readers in round k wait for rounds 0..k-1 to finish, so
    the wall-clock cost of the whole sweep is the sum over rounds of the
    slowest reader in each round (see
    :func:`repro.sim.multireader.run_multireader_inventory`).
    """
    graph = interference_graph(deployment, guard_factor)
    coloring = nx.greedy_color(graph, strategy="largest_first")
    n_colors = 1 + max(coloring.values(), default=-1)
    rounds: list[list[int]] = [[] for _ in range(n_colors)]
    for reader_id, color in coloring.items():
        rounds[color].append(reader_id)
    for r in rounds:
        r.sort()
    return rounds
