"""Continuous monitoring: repeated inventories over a churning population.

Real deployments (asset management, retail shelves -- the paper's intro
scenarios) do not read a tag set once; they re-inventory it continuously
while tags trickle in and out.  This module runs multi-round monitoring
and is where the *adaptive* protocols earn their keep: ABS and AQS replay
the schedule learned last round, so an unchanged population re-reads
collision-free and churn only costs splitting where tags actually moved,
while memoryless protocols pay the full ~2.9·n slots every round.

The collision detector composes orthogonally, as everywhere else: QCD
makes whatever overhead slots remain cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bits.rng import RngStream
from repro.obs import instruments as _inst
from repro.obs.state import STATE as _OBS
from repro.protocols.abs_protocol import AdaptiveBinarySplitting
from repro.protocols.aqs import AdaptiveQuerySplitting
from repro.protocols.base import AntiCollisionProtocol
from repro.sim.reader import Reader
from repro.tags.population import TagPopulation
from repro.tags.tag import Tag

__all__ = ["MonitoringRound", "MonitoringResult", "ContinuousMonitor"]


@dataclass(frozen=True)
class MonitoringRound:
    """Per-round summary."""

    index: int
    present: int
    arrivals: int
    departures: int
    slots: int
    collided: int
    idle: int
    time: float
    identified: int

    @property
    def slots_per_tag(self) -> float:
        return self.slots / self.present if self.present else 0.0


@dataclass
class MonitoringResult:
    rounds: list[MonitoringRound]

    @property
    def total_time(self) -> float:
        return sum(r.time for r in self.rounds)

    @property
    def total_slots(self) -> int:
        return sum(r.slots for r in self.rounds)

    def steady_state(self, warmup: int = 1) -> list[MonitoringRound]:
        """Rounds after the initial acquisition round(s)."""
        return self.rounds[warmup:]


class ContinuousMonitor:
    """Drives repeated inventory rounds with population churn.

    Parameters
    ----------
    reader:
        Configured reader (detector + timing + policy).
    protocol:
        One protocol instance reused across rounds.  ABS/AQS keep their
        learned schedule between rounds (*readable rounds*); other
        protocols restart from scratch each round.
    rng:
        Stream for churn draws and new-tag creation.
    id_bits:
        ID length for tags created by churn.
    """

    def __init__(
        self,
        reader: Reader,
        protocol: AntiCollisionProtocol,
        rng: RngStream,
        id_bits: int = 64,
    ) -> None:
        self.reader = reader
        self.protocol = protocol
        self.rng = rng
        self.id_bits = id_bits
        self._next_spawn_id: set[int] = set()

    # ------------------------------------------------------------------

    def _spawn_tags(self, count: int, existing_ids: set[int]) -> list[Tag]:
        out: list[Tag] = []
        while len(out) < count:
            candidate = int(self.rng.integers(0, 1 << min(self.id_bits, 63)))
            if candidate in existing_ids:
                continue
            existing_ids.add(candidate)
            out.append(
                Tag(tag_id=candidate, id_bits=self.id_bits, rng=self.rng.child())
            )
        return out

    def _prepare_arrival(self, tag: Tag, present: Sequence[Tag]) -> None:
        """Blend a between-round arrival into an adaptive schedule."""
        if isinstance(self.protocol, AdaptiveBinarySplitting):
            # Myung & Lee: a joining tag picks a random allocated slot in
            # the current schedule range so it contends exactly once.
            hi = max((t.counter for t in present), default=0)
            tag.counter = int(tag.rng.integers(0, hi + 1))
        # AQS needs nothing: its warm-start queue covers the ID space.

    # ------------------------------------------------------------------

    def run(
        self,
        initial: TagPopulation | list[Tag],
        rounds: int,
        churn: int = 0,
    ) -> MonitoringResult:
        """Run ``rounds`` inventories with ``churn`` departures + ``churn``
        arrivals between consecutive rounds."""
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if churn < 0:
            raise ValueError("churn must be >= 0")
        present: list[Tag] = list(
            initial.tags if isinstance(initial, TagPopulation) else initial
        )
        existing_ids = {t.tag_id for t in present}
        adaptive = isinstance(
            self.protocol, (AdaptiveBinarySplitting, AdaptiveQuerySplitting)
        )
        out: list[MonitoringRound] = []
        obs_on = _OBS.enabled
        for index in range(rounds):
            if obs_on:
                _OBS.tracer.start_span(
                    "monitoring_round",
                    round=index,
                    protocol=self.protocol.name,
                    present=len(present),
                )
            arrivals = departures = 0
            if index > 0 and churn:
                departures = min(churn, len(present))
                for _ in range(departures):
                    victim = present.pop(
                        int(self.rng.integers(0, len(present)))
                    )
                    existing_ids.discard(victim.tag_id)
                newcomers = self._spawn_tags(churn, existing_ids)
                for tag in newcomers:
                    self._prepare_arrival(tag, present)
                present.extend(newcomers)
                arrivals = len(newcomers)
            for tag in present:
                tag.identified = False
                tag.identified_at = None
                tag.lost = False
            if adaptive and index > 0:
                result = self.reader.run_inventory_continue(
                    present, self.protocol
                )
            else:
                result = self.reader.run_inventory(present, self.protocol)
            counts = result.stats.true_counts
            out.append(
                MonitoringRound(
                    index=index,
                    present=len(present),
                    arrivals=arrivals,
                    departures=departures,
                    slots=counts.total,
                    collided=counts.collided,
                    idle=counts.idle,
                    time=result.stats.total_time,
                    identified=len(result.identified_ids),
                )
            )
            if obs_on:
                reg = _OBS.registry
                reg.counter(
                    _inst.MONITOR_ROUNDS, "Monitoring rounds completed"
                ).inc()
                if arrivals or departures:
                    churn_counter = reg.counter(
                        _inst.MONITOR_CHURN,
                        "Population churn applied between rounds",
                        labelnames=("kind",),
                    )
                    churn_counter.labels(kind="arrival").inc(arrivals)
                    churn_counter.labels(kind="departure").inc(departures)
                reg.gauge(
                    _inst.MONITOR_PRESENT,
                    "Tags present in the monitored population",
                ).set(len(present))
                _OBS.tracer.end_span(
                    slots=counts.total,
                    identified=len(result.identified_ids),
                    airtime=result.stats.total_time,
                )
        return MonitoringResult(rounds=out)
