"""Metrics derived from inventory traces.

Implements every quantity the paper's evaluation reports:

* slot counts N0 / N1 / Nc and **throughput** λ = N1 / (N0+N1+Nc)
  (Section III, Tables VII/VIII);
* **accuracy** = correctly-detected collided slots / true collided slots
  (Section VI-B, Figure 5);
* **utilization rate** UR = N1·l_id·τ / total airtime (Section VI-C,
  Table IX);
* **identification delay** per tag and its distribution (Section VI-D,
  Figure 6);
* **transmission time** (Section VI-E, Figure 7) and the
  **efficiency improvement** EI = (t_base − t_qcd) / t_base (Figure 8).

All functions are pure over the trace so they compose with both the exact
reader and the vectorized kernels (which synthesize equivalent traces).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.detector import SlotType
from repro.sim.trace import SlotRecord

__all__ = [
    "SlotCounts",
    "DelayStats",
    "InventoryStats",
    "slot_counts",
    "detection_accuracy",
    "delay_stats",
    "utilization_rate",
    "efficiency_improvement",
]


@dataclass(frozen=True)
class SlotCounts:
    """Idle / single / collided totals."""

    idle: int
    single: int
    collided: int

    @property
    def total(self) -> int:
        return self.idle + self.single + self.collided

    @property
    def throughput(self) -> float:
        """λ = N1 / (N0 + N1 + Nc); 0 for an empty trace."""
        return self.single / self.total if self.total else 0.0


@dataclass(frozen=True)
class DelayStats:
    """Summary of per-tag identification delays."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    @classmethod
    def from_delays(cls, delays: Sequence[float]) -> "DelayStats":
        if not delays:
            return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        n = len(delays)
        mean = sum(delays) / n
        var = sum((d - mean) ** 2 for d in delays) / n
        ordered = sorted(delays)
        mid = n // 2
        median = (
            ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])
        )
        return cls(n, mean, math.sqrt(var), ordered[0], ordered[-1], median)

    @classmethod
    def from_array(
        cls, delays: np.ndarray, assume_sorted: bool = False
    ) -> "DelayStats":
        """Vectorized :meth:`from_delays`, bit-identical to it.

        ``cumsum`` accumulates left to right exactly like ``sum()`` over a
        list, and the centered squares are the same elementwise IEEE
        operations, so every field matches ``from_delays(delays.tolist())``
        bit for bit -- which is what lets the batched kernels skip the
        Python-loop statistics without perturbing any pinned result.

        ``assume_sorted=True`` skips the order-statistics sort; the caller
        promises the array is already ascending (the inventory kernels emit
        identification delays in slot order, which is ascending airtime).
        """
        arr = np.asarray(delays, dtype=np.float64)
        n = int(arr.size)
        if n == 0:
            return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        mean = float(np.cumsum(arr)[-1]) / n
        var = float(np.cumsum((arr - mean) ** 2)[-1]) / n
        ordered = arr if assume_sorted else np.sort(arr)
        mid = n // 2
        median = (
            float(ordered[mid])
            if n % 2
            else 0.5 * (float(ordered[mid - 1]) + float(ordered[mid]))
        )
        return cls(
            n,
            mean,
            math.sqrt(var),
            float(ordered[0]),
            float(ordered[-1]),
            median,
        )


def slot_counts(
    trace: Sequence[SlotRecord], detected: bool = False
) -> SlotCounts:
    """Count slots by true type (default) or detected type."""
    idle = single = collided = 0
    for rec in trace:
        kind = rec.detected_type if detected else rec.true_type
        if kind is SlotType.IDLE:
            idle += 1
        elif kind is SlotType.SINGLE:
            single += 1
        else:
            collided += 1
    return SlotCounts(idle, single, collided)


def detection_accuracy(trace: Sequence[SlotRecord]) -> float:
    """Fraction of truly collided slots the detector caught (Section VI-B).

    Captured slots are excluded: the detector never saw a superposition
    there, so its single verdict is correct, not a miss.  Returns 1.0 when
    no (non-captured) collision occurred.
    """
    n_c = sum(
        1
        for r in trace
        if r.true_type is SlotType.COLLIDED and not r.captured
    )
    if n_c == 0:
        return 1.0
    caught = sum(
        1
        for r in trace
        if r.true_type is SlotType.COLLIDED
        and r.detected_type is SlotType.COLLIDED
    )
    return caught / n_c


def delay_stats(trace: Sequence[SlotRecord]) -> DelayStats:
    """Identification delay of each tag: elapsed airtime from the start of
    the inventory to the end of the slot that identified it."""
    delays = [r.end_time for r in trace if r.identified_tag is not None]
    return DelayStats.from_delays(delays)


def utilization_rate(
    trace: Sequence[SlotRecord], id_bits: int, tau: float = 1.0
) -> float:
    """UR = N1 · l_id · τ / total airtime (Section VI-C).

    The numerator is the time spent transmitting actual tag IDs; the
    denominator is everything, including preambles, CRCs and dead air.
    """
    total = sum(r.duration for r in trace)
    if total == 0:
        return 0.0
    n1 = sum(1 for r in trace if r.true_type is SlotType.SINGLE)
    return n1 * id_bits * tau / total


def efficiency_improvement(t_base: float, t_new: float) -> float:
    """EI = (t_base − t_new) / t_base (Section V)."""
    if t_base <= 0:
        raise ValueError("baseline time must be positive")
    return (t_base - t_new) / t_base


@dataclass(frozen=True)
class InventoryStats:
    """Everything the paper reports about one inventory run."""

    n_tags: int
    frames: int
    true_counts: SlotCounts
    detected_counts: SlotCounts
    total_time: float
    accuracy: float
    delay: DelayStats
    utilization: float
    missed_collisions: int
    false_collisions: int
    lost_tags: int
    captures: int = 0

    @property
    def throughput(self) -> float:
        return self.true_counts.throughput

    @classmethod
    def from_trace(
        cls,
        trace: Sequence[SlotRecord],
        n_tags: int,
        frames: int,
        id_bits: int,
        tau: float = 1.0,
    ) -> "InventoryStats":
        true = slot_counts(trace, detected=False)
        det = slot_counts(trace, detected=True)
        missed = sum(
            1
            for r in trace
            if r.true_type is SlotType.COLLIDED
            and r.detected_type is SlotType.SINGLE
            and not r.captured
        )
        false_col = sum(
            1
            for r in trace
            if r.true_type is SlotType.SINGLE
            and r.detected_type is SlotType.COLLIDED
        )
        return cls(
            n_tags=n_tags,
            frames=frames,
            true_counts=true,
            detected_counts=det,
            total_time=sum(r.duration for r in trace),
            accuracy=detection_accuracy(trace),
            delay=delay_stats(trace),
            utilization=utilization_rate(trace, id_bits, tau),
            missed_collisions=missed,
            false_collisions=false_col,
            lost_tags=sum(r.lost_tags for r in trace),
            captures=sum(1 for r in trace if r.captured),
        )
