"""The slotted discrete-event simulation layer.

* :mod:`repro.sim.trace` / :mod:`repro.sim.metrics` -- per-slot records and
  the derived statistics (throughput, UR, accuracy, delay, EI);
* :mod:`repro.sim.reader` -- composes a protocol, a detector, a channel and
  a timing model into one inventory run;
* :mod:`repro.sim.engine` -- event-driven wrapper adding tag mobility;
* :mod:`repro.sim.monitoring` -- repeated inventories over a churning
  population (the ABS/AQS use case);
* :mod:`repro.sim.energy` -- tag/reader energy accounting;
* :mod:`repro.sim.deployment` / :mod:`repro.sim.scheduling` /
  :mod:`repro.sim.multireader` -- the spatial scenario of Table V;
* :mod:`repro.sim.fast` -- vectorized kernels for the 50 000-tag cases,
  cross-validated against the exact reader;
* :mod:`repro.sim.batch` -- round-batched kernel engines: all R Monte-Carlo
  rounds of a grid point in one numpy program, bit-identical to looping
  the :mod:`repro.sim.fast` kernels (see ``docs/PERFORMANCE.md``);
* :mod:`repro.sim.export` -- CSV/JSON trace and stats export.
"""

from repro.sim.deployment import Deployment, Reader2D
from repro.sim.energy import EnergyBreakdown, EnergyModel, inventory_energy
from repro.sim.engine import MobileInventoryEngine
from repro.sim.export import (
    read_trace_csv,
    read_trace_json,
    stats_to_dict,
    trace_to_rows,
    write_stats_json,
    write_trace_csv,
    write_trace_json,
)
from repro.sim.batch import (
    BatchResult,
    bt_fast_batch,
    dfsa_fast_batch,
    fsa_fast_batch,
    stats_equal,
)
from repro.sim.fast import bt_fast, dfsa_fast, fsa_fast
from repro.sim.metrics import (
    DelayStats,
    InventoryStats,
    SlotCounts,
    efficiency_improvement,
)
from repro.sim.monitoring import ContinuousMonitor, MonitoringResult
from repro.sim.multireader import MultiReaderResult, run_multireader_inventory
from repro.sim.reader import InventoryResult, Reader
from repro.sim.scheduling import color_schedule, interference_graph
from repro.sim.trace import SlotRecord

__all__ = [
    "SlotRecord",
    "SlotCounts",
    "DelayStats",
    "InventoryStats",
    "efficiency_improvement",
    "Reader",
    "InventoryResult",
    "MobileInventoryEngine",
    "ContinuousMonitor",
    "MonitoringResult",
    "EnergyModel",
    "EnergyBreakdown",
    "inventory_energy",
    "Deployment",
    "Reader2D",
    "interference_graph",
    "color_schedule",
    "MultiReaderResult",
    "run_multireader_inventory",
    "fsa_fast",
    "bt_fast",
    "dfsa_fast",
    "BatchResult",
    "fsa_fast_batch",
    "bt_fast_batch",
    "dfsa_fast_batch",
    "stats_equal",
    "trace_to_rows",
    "stats_to_dict",
    "write_trace_csv",
    "write_trace_json",
    "read_trace_csv",
    "read_trace_json",
    "write_stats_json",
]
