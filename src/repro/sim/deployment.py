"""Spatial deployment of readers and tags (paper Table V).

The evaluation's simulation setup: a 100 m × 100 m area, 100 readers with a
3 m identification range, and tags with randomly selected 96-bit IDs.  The
paper assumes reader-reader and reader-tag collisions away; we make that
assumption *constructive* by building the deployment geometry, the reader
interference graph, and (in :mod:`repro.sim.scheduling`) a coloring-based
activation schedule under which no two interfering readers are ever active
simultaneously.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.bits.rng import RngStream
from repro.tags.population import TagPopulation
from repro.tags.tag import Tag

__all__ = ["Reader2D", "Deployment"]


@dataclass(frozen=True)
class Reader2D:
    """A reader placed in the plane."""

    reader_id: int
    x: float
    y: float
    range_m: float

    def covers(self, position: tuple[float, float]) -> bool:
        return math.hypot(position[0] - self.x, position[1] - self.y) <= self.range_m

    def distance_to(self, other: "Reader2D") -> float:
        return math.hypot(other.x - self.x, other.y - self.y)


@dataclass
class Deployment:
    """Readers + tags in a rectangular area.

    Attributes
    ----------
    width / height:
        Area dimensions in metres (Table V: 100 × 100).
    readers:
        The placed readers.
    population:
        The tag population; tags must carry positions.
    """

    width: float
    height: float
    readers: list[Reader2D]
    population: TagPopulation
    _assignment: dict[int, list[Tag]] | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def table5(
        cls,
        n_tags: int,
        rng: RngStream,
        n_readers: int = 100,
        width: float = 100.0,
        height: float = 100.0,
        reader_range: float = 3.0,
        placement: str = "grid",
        id_bits: int = 96,
    ) -> "Deployment":
        """The paper's Table V setup.

        ``placement`` is ``"grid"`` (a √n × √n lattice, the natural way to
        cover a warehouse floor) or ``"uniform"`` (random positions).
        """
        readers = cls._place_readers(
            n_readers, width, height, reader_range, placement, rng
        )
        population = TagPopulation(
            n_tags,
            id_bits=id_bits,
            rng=rng.child(),
            layout="uniform",
            area=(width, height),
        )
        return cls(width, height, readers, population)

    @staticmethod
    def _place_readers(
        n: int,
        width: float,
        height: float,
        reader_range: float,
        placement: str,
        rng: RngStream,
    ) -> list[Reader2D]:
        if placement == "grid":
            side = int(math.ceil(math.sqrt(n)))
            xs = (np.arange(side) + 0.5) * (width / side)
            ys = (np.arange(side) + 0.5) * (height / side)
            coords = [(x, y) for y in ys for x in xs][:n]
        elif placement == "uniform":
            coords = [
                (float(rng.uniform(0, width)), float(rng.uniform(0, height)))
                for _ in range(n)
            ]
        else:
            raise ValueError(f"unknown placement {placement!r}")
        return [
            Reader2D(i, x, y, reader_range) for i, (x, y) in enumerate(coords)
        ]

    # ------------------------------------------------------------------
    # Geometry queries
    # ------------------------------------------------------------------

    def assignment(self) -> dict[int, list[Tag]]:
        """Tags within each reader's range (a tag may appear under several
        readers, or under none if it sits in a coverage hole)."""
        if self._assignment is None:
            mapping: dict[int, list[Tag]] = {r.reader_id: [] for r in self.readers}
            for tag in self.population:
                if tag.position is None:
                    raise ValueError("deployment tags require positions")
                for reader in self.readers:
                    if reader.covers(tag.position):
                        mapping[reader.reader_id].append(tag)
            self._assignment = mapping
        return self._assignment

    def covered_tags(self) -> list[Tag]:
        """Tags inside at least one reader's range."""
        seen: dict[int, Tag] = {}
        for tags in self.assignment().values():
            for tag in tags:
                seen.setdefault(id(tag), tag)
        return list(seen.values())

    def coverage_fraction(self) -> float:
        """Fraction of the population inside some reader's range.

        With Table V parameters the 100 disks of radius 3 m cover only
        ~28 % of the 10^4 m² area -- reproducing the paper's setup reveals
        it identifies only the covered subset, which we report explicitly.
        """
        if len(self.population) == 0:
            return 1.0
        return len(self.covered_tags()) / len(self.population)

    def overlap_pairs(self) -> list[tuple[int, int]]:
        """Reader pairs whose interrogation disks overlap (potential
        reader-reader collisions)."""
        pairs = []
        for i, a in enumerate(self.readers):
            for b in self.readers[i + 1 :]:
                if a.distance_to(b) <= a.range_m + b.range_m:
                    pairs.append((a.reader_id, b.reader_id))
        return pairs
