"""Energy accounting for inventories.

Table IV argues QCD's value partly in *computation* (1 instruction vs
>100) and *transmission* (16 bits vs 96).  This module turns both into
joules so the trade-off can be reported in one number per scheme:

* each responding tag pays ``bits · τ · P_tag_tx`` for its transmission
  plus ``instructions · E_instr`` for the check-code computation
  (CRC-CD computes a CRC per response; QCD complements one register);
* a tag identified in a two-phase single slot additionally transmits its
  ID (plus CRC under the guard policy);
* the reader listens for the whole inventory: ``total_time · P_reader_rx``.

Default constants are representative of semi-passive tag front ends and
µW-class tag logic; they are parameters, not claims -- the *ratios*
between schemes are the reproducible output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.crc_cd import CRCCDDetector
from repro.core.detector import CollisionDetector, SlotType
from repro.core.timing import TimingModel
from repro.sim.trace import SlotRecord

__all__ = ["EnergyModel", "EnergyBreakdown", "inventory_energy"]


@dataclass(frozen=True)
class EnergyModel:
    """Power/energy constants (µW and µJ; times are µs).

    Attributes
    ----------
    tag_tx_uw:
        Tag backscatter/transmit power draw.
    tag_idle_uw:
        Tag logic draw while waiting in a slot it does not transmit in.
    reader_rx_uw:
        Reader receive-chain draw (on for the whole inventory).
    instr_nj:
        Energy per tag CPU instruction, in nanojoules.
    """

    tag_tx_uw: float = 20.0
    tag_idle_uw: float = 1.0
    reader_rx_uw: float = 100_000.0
    instr_nj: float = 0.5

    def __post_init__(self) -> None:
        if min(self.tag_tx_uw, self.tag_idle_uw, self.reader_rx_uw) < 0:
            raise ValueError("power draws must be non-negative")
        if self.instr_nj < 0:
            raise ValueError("instr_nj must be non-negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy totals for one inventory, in µJ."""

    tag_transmit: float
    tag_compute: float
    reader_receive: float

    @property
    def tag_total(self) -> float:
        return self.tag_transmit + self.tag_compute

    @property
    def total(self) -> float:
        return self.tag_total + self.reader_receive


def _instructions_per_response(detector: CollisionDetector) -> float:
    """Tag-side check-code computation cost per response."""
    if isinstance(detector, CRCCDDetector):
        # ~2.5 ops per message bit for the shift register (measured by
        # repro.core.cost); use the detector's own average when it has
        # been exercised, else the model.
        if detector.crc_computations:
            return detector.crc_ops_total / detector.crc_computations
        return 2.5 * detector.id_bits
    if detector.needs_id_phase:
        return 1.0  # one complement
    return 0.0  # the genie transmits a bare ID


def inventory_energy(
    trace: Sequence[SlotRecord],
    detector: CollisionDetector,
    timing: TimingModel,
    model: EnergyModel | None = None,
) -> EnergyBreakdown:
    """Compute the energy breakdown of a completed inventory trace."""
    model = model if model is not None else EnergyModel()
    instr = _instructions_per_response(detector)
    tx_time = 0.0
    responses = 0
    for rec in trace:
        if rec.n_responders == 0:
            continue
        responses += rec.n_responders
        tx_time += rec.n_responders * detector.contention_bits * timing.tau
        if (
            detector.needs_id_phase
            and rec.detected_type is SlotType.SINGLE
        ):
            id_bits = timing.id_bits + (
                timing.crc_bits if timing.guard_id_phase else 0
            )
            tx_time += id_bits * timing.tau
    total_time = sum(r.duration for r in trace)
    return EnergyBreakdown(
        tag_transmit=tx_time * model.tag_tx_uw * 1e-6,
        tag_compute=responses * instr * model.instr_nj * 1e-3,
        reader_receive=total_time * model.reader_rx_uw * 1e-6,
    )
