"""Trace and stats export utilities.

Downstream analysis (plotting, regression dashboards) wants flat records,
not object graphs.  This module converts traces and
:class:`~repro.sim.metrics.InventoryStats` into plain dicts and writes
CSV/JSON without any third-party dependency.  The readers
(:func:`read_trace_csv` / :func:`read_trace_json`) invert the writers
loss-free: parsed rows compare equal to :func:`trace_to_rows` of the
original trace (asserted by ``tests/sim/test_export.py``).
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Sequence

from repro.sim.metrics import InventoryStats
from repro.sim.trace import SlotRecord

__all__ = [
    "nan_to_none",
    "trace_to_rows",
    "stats_to_dict",
    "write_trace_csv",
    "write_trace_json",
    "read_trace_csv",
    "read_trace_json",
    "write_stats_json",
]


def nan_to_none(obj: object) -> object:
    """Recursively replace float NaN with ``None`` for strict JSON.

    RFC 8259 has no ``NaN`` literal, and Python's default
    ``json.dumps(..., allow_nan=True)`` emits one anyway -- output that
    ``jq``, ``JSON.parse`` and ``json.loads`` in strict mode all reject.
    Every JSON writer in this repo runs its payload through this helper
    and serializes with ``allow_nan=False``; readers that know a field is
    a float coerce ``None`` back to NaN.
    """
    if isinstance(obj, float) and math.isnan(obj):
        return None
    if isinstance(obj, dict):
        return {key: nan_to_none(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [nan_to_none(value) for value in obj]
    return obj

#: Column order of a flattened slot record (also the header of an empty
#: CSV, so downstream parsers always see the schema).
TRACE_FIELDS: tuple[str, ...] = (
    "index",
    "frame",
    "n_responders",
    "true_type",
    "detected_type",
    "duration",
    "end_time",
    "identified_tag",
    "lost_tags",
    "captured",
)

_INT_FIELDS = ("index", "frame", "n_responders", "lost_tags")
_FLOAT_FIELDS = ("duration", "end_time")


def trace_to_rows(trace: Sequence[SlotRecord]) -> list[dict[str, object]]:
    """Flatten slot records; enum fields become their names."""
    rows = []
    for rec in trace:
        row = asdict(rec)
        row["true_type"] = rec.true_type.name
        row["detected_type"] = rec.detected_type.name
        rows.append(row)
    return rows


def stats_to_dict(stats: InventoryStats) -> dict[str, object]:
    """Flatten an InventoryStats into JSON-ready primitives.

    Loss-free over the paper's reported quantities: both the legacy
    ``utilization`` key and its spelled-out alias ``utilization_rate``
    are emitted, plus ``lost_tags`` and ``captures``.
    """
    return {
        "n_tags": stats.n_tags,
        "frames": stats.frames,
        "idle": stats.true_counts.idle,
        "single": stats.true_counts.single,
        "collided": stats.true_counts.collided,
        "detected_idle": stats.detected_counts.idle,
        "detected_single": stats.detected_counts.single,
        "detected_collided": stats.detected_counts.collided,
        "throughput": stats.throughput,
        "total_time": stats.total_time,
        "accuracy": stats.accuracy,
        "delay_mean": stats.delay.mean,
        "delay_std": stats.delay.std,
        "delay_median": stats.delay.median,
        "utilization": stats.utilization,
        "utilization_rate": stats.utilization,
        "missed_collisions": stats.missed_collisions,
        "false_collisions": stats.false_collisions,
        "lost_tags": stats.lost_tags,
        "captures": stats.captures,
    }


def write_trace_csv(trace: Sequence[SlotRecord], path: str | Path) -> Path:
    """Write one CSV row per slot; returns the path written.

    An empty trace still produces the full header row, so consumers can
    rely on the schema being present.
    """
    path = Path(path)
    rows = trace_to_rows(trace)
    fields = list(rows[0]) if rows else list(TRACE_FIELDS)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_trace_json(trace: Sequence[SlotRecord], path: str | Path) -> Path:
    """Write the flattened trace as one RFC-8259-clean JSON array.

    NaN floats (``duration`` / ``end_time``) become ``null``;
    :func:`read_trace_json` restores them.
    """
    path = Path(path)
    path.write_text(
        json.dumps(
            nan_to_none(trace_to_rows(trace)), indent=2, allow_nan=False
        )
    )
    return path


def _coerce_row(row: dict[str, object]) -> dict[str, object]:
    """CSV gives back strings; restore the types ``trace_to_rows`` emits."""
    out: dict[str, object] = dict(row)
    for key in _INT_FIELDS:
        out[key] = int(out[key])  # type: ignore[arg-type]
    for key in _FLOAT_FIELDS:
        out[key] = float(out[key])  # type: ignore[arg-type]
    identified = out["identified_tag"]
    out["identified_tag"] = (
        None if identified in ("", None) else int(identified)  # type: ignore[arg-type]
    )
    out["captured"] = out["captured"] in (True, "True", "true", "1")
    return out


def read_trace_csv(path: str | Path) -> list[dict[str, object]]:
    """Parse a trace CSV back into typed rows (= ``trace_to_rows`` output)."""
    with Path(path).open(newline="") as fh:
        return [_coerce_row(row) for row in csv.DictReader(fh)]


def read_trace_json(path: str | Path) -> list[dict[str, object]]:
    """Parse a trace JSON file back into rows (= ``trace_to_rows`` output).

    ``null`` in a float column is the writer's encoding of NaN and is
    coerced back; ``identified_tag`` keeps ``None`` as ``None``.
    """
    rows = json.loads(Path(path).read_text())
    for row in rows:
        for key in _FLOAT_FIELDS:
            if row.get(key) is None:
                row[key] = math.nan
    return rows


def write_stats_json(
    stats: InventoryStats | Iterable[InventoryStats], path: str | Path
) -> Path:
    """Write one stats dict (or a list of them) as JSON."""
    path = Path(path)
    if isinstance(stats, InventoryStats):
        payload: object = stats_to_dict(stats)
    else:
        payload = [stats_to_dict(s) for s in stats]
    path.write_text(
        json.dumps(nan_to_none(payload), indent=2, allow_nan=False)
    )
    return path
